"""Example: cycle-level memory-system view of EDEN's DRAM parameter reductions.

The paper's CPU results (Figures 13-14) rest on two mechanisms: reduced VDD
cuts DRAM energy, and reduced tRCD shortens the latency of row-buffer misses.
This example makes both visible with the cycle-level substrate:

1. a DNN workload trace is synthesized and filtered through the paper's
   Table-4 cache hierarchy (32KB L1 / 512KB L2 / 8MB L3 + stream prefetchers);
2. the surviving LLC misses are scheduled by the FR-FCFS memory controller at
   nominal DDR4-2133 timings and at EDEN's reduced tRCD;
3. the resulting command traces are priced by the DRAMPower-style model at
   nominal and reduced VDD;
4. the same operating points are applied to the Eyeriss / TPU systolic
   simulator to show why accelerators save energy but see no speedup.

Run with:  python examples/memory_system_simulation.py
"""

from repro.analysis.reporting import format_table
from repro.arch.traffic import workload_for
from repro.dram.timing import NOMINAL_DDR4_TIMING
from repro.dram.voltage import VoltageDomain
from repro.memsys import (
    CacheHierarchy,
    CommandEnergyModel,
    CommandType,
    ControllerConfig,
    MemoryRequest,
    run_trace,
    trace_from_workload,
)
from repro.systolic import PAPER_ACCELERATOR_WORKLOADS, SYSTOLIC_PRESETS, SystolicSimulator

#: EDEN's Table-3 operating point for the YOLO family (int8): -0.30V, -5.5ns tRCD.
DELTA_VDD = 0.30
DELTA_TRCD_NS = 5.5


def cpu_view(model_name: str = "yolo-tiny", max_accesses: int = 5000) -> None:
    workload = workload_for(model_name)
    print(f"\n=== CPU memory system: {workload.name} "
          f"({workload.total_bytes / 1e6:.0f} MB per inference) ===")

    accesses = trace_from_workload(workload, max_accesses=max_accesses, seed=0)
    hierarchy = CacheHierarchy(cycles_per_access=4.0)
    filtered = hierarchy.filter_trace(accesses)
    print(f"cache hierarchy: {filtered.demand_accesses} demand accesses -> "
          f"{len(filtered.dram_requests)} DRAM requests "
          f"(LLC miss rate {filtered.llc_miss_rate:.2f})")

    config = ControllerConfig()
    reduced_config = config.with_timing(config.timing.with_reduced_trcd(DELTA_TRCD_NS))
    requests = [MemoryRequest(r.address, r.type, r.arrival_cycle)
                for r in filtered.dram_requests]
    nominal = run_trace(requests, config)
    requests = [MemoryRequest(r.address, r.type, r.arrival_cycle)
                for r in filtered.dram_requests]
    reduced = run_trace(requests, reduced_config)

    energy = CommandEnergyModel("DDR4-2133")
    nominal_energy = energy.energy_of_run(nominal)
    reduced_energy = energy.energy_of_run(reduced, vdd=1.35 - DELTA_VDD)

    rows = [
        ("row-buffer hit rate", f"{nominal.stats.row_hit_rate:.3f}",
         f"{reduced.stats.row_hit_rate:.3f}"),
        ("average read latency (cycles)", f"{nominal.stats.average_read_latency:.1f}",
         f"{reduced.stats.average_read_latency:.1f}"),
        ("execution cycles", nominal.total_cycles, reduced.total_cycles),
        ("row activations (ACT commands)",
         nominal.stats.command_counts[CommandType.ACT],
         reduced.stats.command_counts[CommandType.ACT]),
        ("DRAM energy (uJ)", f"{nominal_energy.total_nj / 1e3:.2f}",
         f"{reduced_energy.total_nj / 1e3:.2f}"),
    ]
    print(format_table(["metric", "nominal DDR4-2133",
                        f"EDEN (-{DELTA_VDD}V, -{DELTA_TRCD_NS}ns tRCD)"], rows))
    saving = 1.0 - reduced_energy.total_nj / nominal_energy.total_nj
    print(f"DRAM energy reduction: {saving * 100:.1f}%")


def accelerator_view() -> None:
    print("\n=== Accelerators (Section 7.2): energy falls, latency does not ===")
    rows = []
    reduced_timing = NOMINAL_DDR4_TIMING.with_reduced_trcd(4.5)
    for name, config in SYSTOLIC_PRESETS.items():
        simulator = SystolicSimulator(config)
        for workload, shapes in PAPER_ACCELERATOR_WORKLOADS.items():
            reduction = simulator.energy_reduction(shapes, VoltageDomain(vdd=1.05))
            speedup = simulator.speedup_from_trcd(shapes, reduced_timing)
            rows.append((name, workload, f"{reduction * 100:.1f}%", f"{speedup:.4f}"))
    print(format_table(["accelerator", "workload", "DRAM energy reduction",
                        "speedup from -4.5ns tRCD"], rows))


def main() -> None:
    cpu_view("yolo-tiny")
    cpu_view("squeezenet1.1", max_accesses=4000)
    accelerator_view()
    print("\nTakeaway: reduced VDD cuts DRAM energy everywhere; reduced tRCD only "
          "helps platforms whose access streams actually stall on row activations.")


if __name__ == "__main__":
    main()
