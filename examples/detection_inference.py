"""Example: detection-style inference (YOLO analogue) on approximate DRAM.

The paper's detection workloads (YOLO / YOLO-Tiny, Table 1) are scored with
mean average precision, and their post-processing — confidence thresholding,
IoU thresholding and non-maximum suppression — is exactly the code the paper
blames for their DRAM-latency sensitivity.  This example runs that pipeline
end to end on the synthetic detection dataset:

1. build ground truth and a "prediction grid" per image (the output a
   detection head would produce);
2. store the grids in approximate DRAM by injecting bit errors with EDEN's
   Error Model 0 at increasing BERs;
3. decode boxes, threshold, run NMS, and score mAP with and without EDEN's
   implausible-value correction.

The mAP-vs-BER curve shows the same shape as the accuracy curves of the
classification networks: flat until ~1e-3, then collapsing at ~1e-2.  It also
shows where implausible-value correction matters: the detection head's own
logistic squashing already neutralises exploded values at the very end of the
network, so zeroing there mostly removes detections — the correction earns its
keep on weights and feature maps *inside* the network (see the curricular
retraining examples and the ablation benchmarks), not on post-processed
outputs.

Run with:  python examples/detection_inference.py
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.dram.error_models import DramLayout, make_error_model
from repro.dram.injection import inject_bit_errors
from repro.nn.detection import (
    Box,
    decode_grid_predictions,
    mean_average_precision,
    non_maximum_suppression,
    synthetic_detection_dataset,
)

GRID_SIZE = 8
NUM_CLASSES = 3
BERS = (0.0, 1e-4, 1e-3, 1e-2, 5e-2)


def build_prediction_grids(annotations, noise=0.05, seed=0):
    """Produce a near-perfect prediction grid per image from its ground truth."""
    rng = np.random.default_rng(seed)
    grids = []
    for boxes in annotations:
        grid = np.full((5 + NUM_CLASSES, GRID_SIZE, GRID_SIZE), -8.0, dtype=np.float32)
        for box in boxes:
            cx = (box.x_min + box.x_max) / 2.0
            cy = (box.y_min + box.y_max) / 2.0
            col = min(GRID_SIZE - 1, int(cx * GRID_SIZE))
            row = min(GRID_SIZE - 1, int(cy * GRID_SIZE))
            grid[0, row, col] = 8.0                                  # objectness
            grid[1, row, col] = _logit(cx * GRID_SIZE - col, noise, rng)
            grid[2, row, col] = _logit(cy * GRID_SIZE - row, noise, rng)
            grid[3, row, col] = _logit(box.width, noise, rng)
            grid[4, row, col] = _logit(box.height, noise, rng)
            grid[5 + box.class_id, row, col] = 6.0
        grids.append(grid)
    return grids


def _logit(value, noise, rng):
    value = float(np.clip(value + rng.normal(0.0, noise), 1e-3, 1.0 - 1e-3))
    return float(np.log(value / (1.0 - value)))


def zero_implausible(grid, bound=50.0):
    """EDEN's correction: zero any loaded value outside the plausible range."""
    corrected = grid.copy()
    corrected[np.abs(corrected) > bound] = 0.0
    return corrected


def evaluate(grids, annotations, ber, correct=False, seed=0):
    error_model = make_error_model(0, ber, seed=seed) if ber > 0 else None
    layout = DramLayout()
    predictions = []
    for index, grid in enumerate(grids):
        noisy = grid
        if error_model is not None:
            rng = np.random.default_rng(seed * 1_000 + index)
            noisy = inject_bit_errors(grid.ravel(), 32, error_model, layout,
                                      rng).reshape(grid.shape)
        if correct:
            noisy = zero_implausible(noisy)
        boxes = decode_grid_predictions(noisy, confidence=0.4)
        predictions.append(non_maximum_suppression(boxes, iou_threshold=0.5))
    return mean_average_precision(predictions, annotations, iou_threshold=0.3)


def main() -> None:
    images, annotations = synthetic_detection_dataset(
        num_images=24, grid_size=GRID_SIZE, num_classes=NUM_CLASSES, seed=1)
    grids = build_prediction_grids(annotations)
    print(f"synthetic detection set: {images.shape[0]} images, "
          f"{sum(len(a) for a in annotations)} objects")

    rows = []
    for ber in BERS:
        plain = evaluate(grids, annotations, ber, correct=False)
        corrected = evaluate(grids, annotations, ber, correct=True)
        rows.append((f"{ber:.0e}" if ber else "0", f"{plain:.3f}", f"{corrected:.3f}"))
    print(format_table(
        ["bit error rate", "mAP (no correction)", "mAP (implausible values zeroed)"],
        rows, title="Detection quality vs DRAM bit error rate (Error Model 0)"))
    print("\nThe detector tolerates BERs up to ~1e-3 and collapses around 1e-2, the same "
          "shape as the classification accuracy curves.  Because the head's logistic "
          "squashing already bounds exploded values, zeroing at this late stage mostly "
          "deletes detections; EDEN applies the correction to weights and feature maps "
          "inside the network, where the ablation benchmarks show it raises the tolerable "
          "BER by orders of magnitude.")


if __name__ == "__main__":
    main()
