#!/usr/bin/env python3
"""Quickstart: run the full EDEN flow on one DNN and one approximate DRAM module.

This example walks through the three EDEN steps end to end:

1. train a baseline DNN (a LeNet analogue on the synthetic CIFAR-10 stand-in);
2. boost its error tolerance with curricular retraining against an error model
   fitted to the target approximate DRAM device;
3. characterize the maximum tolerable bit error rate and translate it into the
   DRAM voltage / tRCD reductions the device can run at;

and finally estimates the DRAM energy saving and speedup those reductions buy
on a CPU inference platform.

Run with:  python examples/quickstart.py
"""

from repro.arch.system import Platform, evaluate_platform
from repro.core.config import AccuracyTarget, EdenConfig
from repro.core.pipeline import Eden
from repro.dram.device import ApproximateDram
from repro.dram.geometry import DramGeometry
from repro.nn.models import build_model_with_dataset
from repro.nn.training import Trainer


def main() -> None:
    # ------------------------------------------------------------------ step 0
    # Train the baseline DNN on reliable DRAM.
    print("=== Training the baseline DNN (LeNet analogue) ===")
    network, dataset, spec = build_model_with_dataset("lenet", seed=0)
    history = Trainer(network, dataset, spec.training_config()).fit()
    print(f"baseline validation accuracy: {history.final_score:.3f}")

    # ------------------------------------------------------------------ step 1-3
    # Run EDEN against an approximate DRAM device from vendor A.  The pipeline
    # profiles the device, fits one of the four error models, runs curricular
    # retraining, characterizes the boosted DNN and picks DRAM parameters.
    print("\n=== Running the EDEN flow against approximate DRAM (vendor A) ===")
    device = ApproximateDram(
        "A", geometry=DramGeometry(row_size_bytes=512, subarrays_per_bank=4,
                                   rows_per_subarray=64), seed=1,
    )
    eden = Eden(
        accuracy_target=AccuracyTarget.within_one_percent(),
        config=EdenConfig(retrain_epochs=6, evaluation_repeats=1,
                          ber_search_steps=9, max_outer_iterations=1, seed=0),
    )
    result = eden.run(network, dataset, device)
    print(result.summary())

    # ------------------------------------------------------------------ system level
    # What do those DRAM parameter reductions buy on a CPU inference platform?
    print("\n=== System-level impact on a CPU inference platform ===")
    platform_result = evaluate_platform(
        Platform.CPU, "lenet", result.delta_vdd, result.delta_trcd_ns,
    )
    print(f"DRAM energy reduction : {platform_result.energy_reduction_percent:.1f}%")
    print(f"speedup               : {platform_result.speedup_percent:.1f}%")
    print(f"ideal-tRCD speedup    : {100 * (platform_result.ideal_trcd_speedup - 1):.1f}%")


if __name__ == "__main__":
    main()
