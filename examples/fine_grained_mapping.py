#!/usr/bin/env python3
"""Fine-grained characterization and DNN-to-DRAM mapping (Figures 11-12).

This example characterizes the per-tensor (per weight / per IFM) error
tolerance of a ResNet analogue, then runs Algorithm 1 to place every tensor on
one of the device's banks, each operated at its own supply voltage — the
fine-grained mapping that lets tolerant middle layers ride on aggressively
reduced partitions while the sensitive first/last layers stay on conservative
ones.

Run with:  python examples/fine_grained_mapping.py
"""

from collections import Counter

from repro.analysis.reporting import format_table
from repro.core.characterization import fine_grained_characterization
from repro.core.config import AccuracyTarget, EdenConfig
from repro.core.mapping import fine_grained_mapping, per_tensor_ber_from_mapping
from repro.dram.device import ApproximateDram, DramOperatingPoint
from repro.dram.geometry import DramGeometry, PartitionLevel
from repro.dram.partitions import PartitionTable
from repro.dram.error_models import make_error_model
from repro.nn.models import build_model_with_dataset
from repro.nn.training import Trainer


def main() -> None:
    print("=== Training the ResNet analogue ===")
    network, dataset, spec = build_model_with_dataset("resnet101", seed=0)
    history = Trainer(network, dataset, spec.training_config(epochs=4)).fit()
    print(f"baseline accuracy: {history.final_score:.3f}")

    print("\n=== Fine-grained error-tolerance characterization (Figure 11) ===")
    config = EdenConfig(evaluation_repeats=1, fine_max_rounds=3,
                        fine_validation_fraction=0.5, seed=0)
    fine = fine_grained_characterization(
        network, dataset, make_error_model(0, 1e-3, seed=0),
        AccuracyTarget.within_one_percent(), config=config, metric=spec.metric,
    )
    ordered = sorted(fine.specs, key=lambda s: s.layer_index)
    rows = [
        (s.layer_index, s.name, s.kind.value, f"{fine.per_tensor_ber[s.name]:.4f}")
        for s in ordered
    ]
    print(format_table(["layer", "data type", "kind", "tolerable BER"], rows))
    print(f"coarse (whole-DNN) BER: {fine.coarse_ber:.4f}; "
          f"best per-tensor headroom: {fine.max_gain_over_coarse:.1f}x")

    print("\n=== Algorithm 1: mapping tensors onto per-bank voltage domains (Figure 12) ===")
    device = ApproximateDram(
        "A", geometry=DramGeometry(row_size_bytes=512, subarrays_per_bank=4,
                                   rows_per_subarray=64), seed=1,
    )
    operating_points = [
        DramOperatingPoint.from_reductions(delta_vdd=reduction)
        for reduction in (0.05, 0.18, 0.26, 0.32)
    ]
    table = PartitionTable.from_device(device, operating_points,
                                       level=PartitionLevel.BANK, sample_bits=1 << 13)
    mapping = fine_grained_mapping(fine, table)

    rows = [
        (tensor, partition_id, f"{mapping.operating_points[partition_id].vdd:.3f}",
         f"{mapping.partition_ber[partition_id]:.2e}")
        for tensor, partition_id in sorted(mapping.assignments.items())
    ]
    print(format_table(["data type", "bank", "VDD (V)", "bank BER"], rows))
    voltage_histogram = Counter(
        round(mapping.operating_points[p].vdd, 3) for p in mapping.assignments.values()
    )
    print(f"partitions used: {mapping.num_partitions_used}, "
          f"voltage domains in use: {dict(voltage_histogram)}")
    if mapping.unmapped:
        print(f"unmapped data types (stay on nominal DRAM): {mapping.unmapped}")

    exposed = per_tensor_ber_from_mapping(mapping)
    print(f"highest per-tensor BER actually exposed by the mapping: {max(exposed.values()):.2e}")


if __name__ == "__main__":
    main()
