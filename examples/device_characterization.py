#!/usr/bin/env python3
"""Characterize an approximate DRAM device and fit EDEN's error models.

Reproduces the device-side half of the paper (Sections 4 and 6.2):

* sweep the supply voltage and tRCD of three vendors' modules with the
  SoftMC-style profiler and print the BER curves per stored data pattern
  (the data behind Figure 5);
* fit the four EDEN error models to one operating point of each vendor and
  show which model the MLE selection picks;
* validate the selected model by comparing the DNN accuracy it predicts with
  the accuracy measured when the DNN's tensors are actually served from the
  device (the Figure 7 experiment).

Run with:  python examples/device_characterization.py
"""

from repro.analysis.figures import PROFILING_GEOMETRY, fig07_model_validation
from repro.analysis.reporting import format_multi_series
from repro.core.offload import profile_and_fit
from repro.dram.device import ApproximateDram, DramOperatingPoint
from repro.dram.profiler import DEFAULT_PATTERNS, SoftMCProfiler


def sweep_vendor(vendor: str) -> None:
    device = ApproximateDram(vendor, geometry=PROFILING_GEOMETRY, seed=1)
    profiler = SoftMCProfiler(device, rows_to_profile=8, trials=4, seed=0)

    voltage_curves = {}
    for pattern in DEFAULT_PATTERNS:
        voltage_curves[f"0x{pattern:02X}"] = {}
    for vdd in (1.05, 1.10, 1.15, 1.20, 1.25):
        profile = profiler.profile(
            DramOperatingPoint.from_reductions(delta_vdd=device.nominal_vdd - vdd))
        for pattern in DEFAULT_PATTERNS:
            voltage_curves[f"0x{pattern:02X}"][vdd] = profile.ber_for_pattern(pattern)
    print(format_multi_series(voltage_curves, title=f"\nVendor {vendor}: BER vs VDD (V)",
                              x_label="VDD", float_format="{:.2e}"))

    trcd_curves = {f"0x{p:02X}": {} for p in DEFAULT_PATTERNS}
    for trcd in (2.5, 5.0, 7.5, 10.0):
        profile = profiler.profile(
            DramOperatingPoint.from_reductions(
                delta_trcd_ns=device.nominal_timing.trcd_ns - trcd))
        for pattern in DEFAULT_PATTERNS:
            trcd_curves[f"0x{pattern:02X}"][trcd] = profile.ber_for_pattern(pattern)
    print(format_multi_series(trcd_curves, title=f"Vendor {vendor}: BER vs tRCD (ns)",
                              x_label="tRCD", float_format="{:.2e}"))

    # Fit and select an error model at one aggressive operating point.
    op_point = DramOperatingPoint.from_reductions(delta_vdd=0.25)
    fitted = profile_and_fit(device, op_point, rows_to_profile=16, trials=5, seed=0)
    print(f"Vendor {vendor}: selected Error Model {fitted.model.model_id} "
          f"with parameters {fitted.model.parameters()}")


def main() -> None:
    print("=== SoftMC-style reduced-parameter characterization (Figure 5) ===")
    for vendor in ("A", "B", "C"):
        sweep_vendor(vendor)

    print("\n=== Error-model validation against the device (Figure 7) ===")
    validation = fig07_model_validation(model_name="lenet", vendors=("A",),
                                        voltages=(1.05, 1.15, 1.25, 1.35), epochs=4)
    for vendor, curves in validation.items():
        print(format_multi_series(
            {"device": curves["device"], "error model": curves["error_model"]},
            title=f"Vendor {vendor}: LeNet accuracy, device vs fitted Error Model "
                  f"{curves['model_id']}",
            x_label="VDD", float_format="{:.3f}"))


if __name__ == "__main__":
    main()
