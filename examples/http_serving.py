#!/usr/bin/env python3
"""HTTP serving front end: admission control, deadlines, generated load.

The network-facing end of the reproduction:

1. train a small DNN (the LeNet analogue) and compile it into a
   static-store serving plan at a characterized-style operating point;
2. stand a real asyncio HTTP/JSON server up around the gateway
   (ephemeral port, bounded admission queue);
3. drive it with the deterministic load-generation harness: a steady
   closed-loop scenario whose responses are checked bit-for-bit against
   serial in-process ``session.predict``, then a burst sized far above
   the queue depth to watch admission control shed;
4. show a per-request deadline expiring in the queue (dropped at
   dispatch, no forward pass burned);
5. print ``/metrics``: latency percentiles next to shed/expired counts,
   then drain the server gracefully.

Run with:  python examples/http_serving.py
"""

import numpy as np

from repro.dram.error_models import make_error_model
from repro.dram.injection import BitErrorInjector
from repro.nn.models import build_model_with_dataset
from repro.nn.tensor import DataKind
from repro.nn.training import Trainer
from repro.serve import ServeConfig, ServerConfig, ServingGateway, \
    serve_in_thread
from repro.serve import loadgen


def main() -> None:
    # ------------------------------------------------------------------ compile
    print("=== Training and compiling the model to serve ===")
    network, dataset, spec = build_model_with_dataset("lenet", seed=0)
    Trainer(network, dataset, spec.training_config(epochs=3)).fit()
    network.eval()
    injector = BitErrorInjector(make_error_model(0, 1e-3, seed=0), bits=32,
                                data_kinds={DataKind.WEIGHT}, seed=0)
    gateway = ServingGateway(ServeConfig(max_batch=8, max_wait_ms=2.0))
    session = gateway.register("lenet", network, dataset, injector=injector,
                               metric=spec.metric)

    # ------------------------------------------------------------------ serve
    handle = serve_in_thread(gateway, ServerConfig(max_queue_depth=4))
    print(f"\n=== HTTP server live on {handle.base_url} "
          f"(queue depth 4) ===")
    target = loadgen.HttpTarget(handle.base_url)
    print(f"healthz: {target.health()}")

    # ------------------------------------------------------- steady bit-identity
    samples = dataset.val_x[:48]
    steady = loadgen.run_steady(target, "lenet", samples, concurrency=3)
    reference = session.predict(samples, pad_to=8)
    identical = steady.stacked_rows().tobytes() == reference.tobytes()
    print(f"\nsteady: {steady.ok}/{steady.sent} served at "
          f"{steady.to_record()['achieved_rps']:.0f} req/s; "
          f"bit-identical to in-process predict: {identical}")

    # ------------------------------------------------------- burst + shedding
    burst = loadgen.run_burst(target, "lenet", dataset.val_x[:32])
    correct = all(row.tobytes() == reference[i].tobytes()
                  for i, row in burst.ok_rows().items())
    print(f"burst:  {burst.sent} at once -> {burst.ok} served, "
          f"{burst.shed} shed with 429; admitted rows correct: {correct}")

    # ------------------------------------------------------- deadline expiry
    before = session.stats["predictions"]
    expired = target.predict("lenet", dataset.val_x[0], deadline_ms=0.0)
    print(f"deadline 0 ms -> HTTP {expired.status} "
          f"(forward passes burned: "
          f"{session.stats['predictions'] - before})")

    # ------------------------------------------------------- metrics + drain
    print("\n=== /metrics ===")
    print(target._request("GET", "/metrics")["payload"])
    target.close()
    handle.stop()
    gateway.close()
    print("drained and stopped.")


if __name__ == "__main__":
    np.seterr(over="ignore", invalid="ignore")   # corrupted FP32 logits
    main()
