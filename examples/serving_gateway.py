#!/usr/bin/env python3
"""Serving gateway: two model endpoints, concurrent clients, telemetry.

This example walks through the deployment-shaped end of the reproduction:

1. train a small DNN (the LeNet analogue) on reliable DRAM;
2. register it with a :class:`~repro.serve.ServingGateway` at two different
   DRAM operating points — a conservative store (low BER) and an aggressive
   one (higher BER, bigger energy savings) — each compiled once into a
   static-store plan by the session registry;
3. fire concurrent single-sample requests from several client threads; the
   micro-batcher coalesces them into batched dispatches through the shared
   plans;
4. print the serving telemetry report: per-endpoint latency percentiles,
   throughput, batch occupancy, and the registry's cache counters.

Run with:  python examples/serving_gateway.py
"""

import threading

import numpy as np

from repro.dram.error_models import make_error_model
from repro.dram.injection import BitErrorInjector
from repro.nn.models import build_model_with_dataset
from repro.nn.tensor import DataKind
from repro.nn.training import Trainer
from repro.serve import ServeConfig, ServingGateway


def main() -> None:
    # ------------------------------------------------------------------ train
    print("=== Training the model to serve (LeNet analogue) ===")
    network, dataset, spec = build_model_with_dataset("lenet", seed=0)
    history = Trainer(network, dataset, spec.training_config(epochs=3)).fit()
    network.eval()
    print(f"baseline validation accuracy: {history.final_score:.3f}")

    # ------------------------------------------------------------------ register
    # Two operating points for the same DNN: a conservative weight store and
    # an aggressive one.  Each registration compiles (materializes) its plan
    # once; the registry would dedupe a re-registration of the same point.
    print("\n=== Registering two endpoints at different operating points ===")
    gateway = ServingGateway(ServeConfig(max_batch=16, max_wait_ms=2.0))
    conservative = BitErrorInjector(make_error_model(0, 1e-5, seed=0), bits=32,
                                    data_kinds={DataKind.WEIGHT}, seed=0)
    aggressive = BitErrorInjector(make_error_model(3, 1e-3, seed=0), bits=32,
                                  data_kinds={DataKind.WEIGHT}, seed=0)
    gateway.register("lenet@conservative", network, dataset,
                     injector=conservative, metric=spec.metric)
    gateway.register("lenet@aggressive", network, dataset,
                     injector=aggressive, metric=spec.metric)
    print(f"endpoints: {gateway.endpoints()}")

    # ------------------------------------------------------------------ traffic
    print("\n=== Serving concurrent single-sample traffic ===")
    samples = dataset.val_x[:256]
    labels = dataset.val_y[:256]
    # Each client thread counts into its own slot; summed after join() so no
    # two threads ever mutate shared state.
    tallies: list = []

    def client(endpoint: str, lo: int, hi: int, tally: dict) -> None:
        futures = [(gateway.submit(endpoint, samples[i]), i)
                   for i in range(lo, hi)]
        tally["correct"] = sum(
            int(np.argmax(future.result())) == labels[i]
            for future, i in futures)

    threads = []
    for endpoint in gateway.endpoints():
        for lo in range(0, len(samples), 64):
            tally = {"endpoint": endpoint, "correct": 0}
            tallies.append(tally)
            threads.append(threading.Thread(
                target=client,
                args=(endpoint, lo, min(lo + 64, len(samples)), tally)))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    for endpoint in gateway.endpoints():
        correct = sum(t["correct"] for t in tallies
                      if t["endpoint"] == endpoint)
        print(f"{endpoint:<20s} served accuracy: {correct / len(samples):.3f}")

    # ------------------------------------------------------------------ telemetry
    print("\n=== Telemetry ===")
    print(gateway.report())
    gateway.close()


if __name__ == "__main__":
    main()
