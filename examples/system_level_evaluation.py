#!/usr/bin/env python3
"""System-level evaluation: CPU, GPU, Eyeriss and TPU (Figures 13-14, Section 7.2).

Evaluates the DRAM-energy reduction and speedup EDEN's operating points buy on
the four inference platforms the paper studies, using the paper's Table-3
voltage/tRCD reductions and the analytical platform models.

Run with:  python examples/system_level_evaluation.py
"""

from repro.analysis.figures import fig13_fig14_cpu, sec72_accelerators, sec72_gpu
from repro.analysis.reporting import format_table
from repro.arch.system import geometric_mean


def print_cpu_results() -> None:
    print("=== CPU: DRAM energy reduction (Fig. 13) and speedup (Fig. 14) ===")
    results = fig13_fig14_cpu()
    rows = []
    for model, per_bits in results.items():
        for bits, metrics in per_bits.items():
            rows.append((
                model, "FP32" if bits == 32 else f"int{bits}",
                f"{100 * metrics['energy_reduction']:.1f}%",
                f"{100 * (metrics['speedup'] - 1):.1f}%",
                f"{100 * (metrics['ideal_trcd_speedup'] - 1):.1f}%",
            ))
    print(format_table(["model", "precision", "energy saved", "speedup", "ideal tRCD=0"], rows))

    fp32 = {m: v[32] for m, v in results.items()}
    gmean_energy = 1 - geometric_mean([1 - v["energy_reduction"] for v in fp32.values()])
    gmean_speedup = geometric_mean([v["speedup"] for v in fp32.values()]) - 1
    print(f"Gmean (FP32): energy saved {100 * gmean_energy:.1f}%, "
          f"speedup {100 * gmean_speedup:.1f}%")


def print_gpu_results() -> None:
    print("\n=== GPU (Titan-X class), Section 7.2 ===")
    results = sec72_gpu()
    rows = []
    for model, per_bits in results.items():
        for bits, metrics in per_bits.items():
            rows.append((
                model, "FP32" if bits == 32 else f"int{bits}",
                f"{100 * metrics['energy_reduction']:.1f}%",
                f"{100 * (metrics['speedup'] - 1):.1f}%",
            ))
    print(format_table(["model", "precision", "energy saved", "speedup"], rows))


def print_accelerator_results() -> None:
    print("\n=== Eyeriss / TPU accelerators, Section 7.2 ===")
    results = sec72_accelerators()
    rows = []
    for accelerator, per_memory in results.items():
        for memory_type, per_model in per_memory.items():
            for model, metrics in per_model.items():
                rows.append((
                    accelerator, memory_type, model,
                    f"{100 * metrics['energy_reduction']:.1f}%",
                    f"{100 * (metrics['speedup'] - 1):.1f}%",
                ))
    print(format_table(["accelerator", "memory", "model", "energy saved", "speedup"], rows))
    print("(the accelerators' deterministic, double-buffered access pattern hides "
          "DRAM latency entirely, so reduced tRCD gives no speedup — as in the paper)")


def main() -> None:
    print_cpu_results()
    print_gpu_results()
    print_accelerator_results()


if __name__ == "__main__":
    main()
