"""Model zoo: scaled-down architectural analogues of the paper's networks.

The paper evaluates nine networks (Table 1): ResNet101, MobileNetV2, VGG-16,
DenseNet201, SqueezeNet1.1, AlexNet, YOLO, YOLO-Tiny and LeNet.  Training the
originals is impossible in a CPU-only offline environment, so each entry here
is a small analogue that preserves the structural property the paper's error
analysis keys on:

===============  ===========================================================
paper model      analogue structure kept
===============  ===========================================================
ResNet101        residual (skip-connection) basic blocks, deep-ish stack
MobileNetV2      depthwise-separable convolutions, narrow channels
VGG-16           plain 3x3 conv stacks with the largest parameter count
DenseNet201      deep residual stack with wide feature reuse (concatenative
                 dense connections approximated by residual reuse)
SqueezeNet1.1    fire modules (1x1 squeeze, parallel 1x1/3x3 expand), the
                 smallest parameter budget
AlexNet          shallow conv stack feeding large fully-connected layers
YOLO / YOLO-Tiny conv backbone + classification-over-(class x quadrant) head
                 on the synthetic detection dataset, scored with a mAP-like
                 metric
LeNet            the classic conv-pool-conv-pool-fc-fc used for the real-DRAM
                 SoftMC experiments
===============  ===========================================================

Each :class:`ModelSpec` also records the paper's reported model size and
IFM+weight footprint so Table 1 can be regenerated side by side with the
analogue's measured footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.nn.datasets import Dataset, load_dataset
from repro.nn.layers import (
    AvgPool2D,
    Conv2D,
    DepthwiseSeparableConv,
    Dropout,
    FireModule,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2D,
    ReLU,
    ResidualBlock,
)
from repro.nn.network import Network


@dataclass(frozen=True)
class ModelSpec:
    """Metadata binding a paper model name to its analogue builder."""

    name: str
    paper_name: str
    dataset: str                  # key into repro.nn.datasets.DATASET_BUILDERS
    metric: str                   # "accuracy" or "map"
    paper_model_size_mb: float    # Table 1, FP32
    paper_ifm_weight_size_mb: float
    builder: Callable[[np.random.Generator, int, tuple], Network]
    supports_int4: bool = True    # YOLO's framework only supports int8/FP32
    supports_int16: bool = True
    default_epochs: int = 5       # enough for the synthetic task to converge
    default_learning_rate: float = 0.02
    notes: str = ""

    def training_config(self, epochs: Optional[int] = None, **overrides):
        """Build a TrainingConfig with this model's defaults (lazy import to
        avoid a cycle with repro.nn.training)."""
        from repro.nn.training import TrainingConfig

        kwargs = dict(
            epochs=self.default_epochs if epochs is None else epochs,
            learning_rate=self.default_learning_rate,
            metric=self.metric,
        )
        kwargs.update(overrides)
        return TrainingConfig(**kwargs)


# ---------------------------------------------------------------------------
# builders (input shape (3, 16, 16) classification, (3, 16, 16) detection)
# ---------------------------------------------------------------------------

def _build_lenet(rng, num_classes, input_shape) -> Network:
    c, h, w = input_shape
    layers = [
        Conv2D("conv1", c, 6, 5, padding=2, rng=rng),
        ReLU("relu1"),
        MaxPool2D("pool1", 2),
        Conv2D("conv2", 6, 16, 5, padding=0, rng=rng),
        ReLU("relu2"),
        MaxPool2D("pool2", 2),
        Flatten("flatten"),
    ]
    spatial = ((h // 2) - 4) // 2
    layers += [
        Linear("fc1", 16 * spatial * spatial, 64, rng=rng),
        ReLU("relu3"),
        Linear("fc2", 64, num_classes, rng=rng),
    ]
    return Network("lenet", layers, input_shape, num_classes)


def _build_resnet(rng, num_classes, input_shape, widths=(16, 32, 64), blocks_per_stage=2,
                  name="resnet101") -> Network:
    c, _, _ = input_shape
    layers = [
        Conv2D("stem", c, widths[0], 3, padding=1, bias=False, rng=rng),
        ReLU("stem_relu"),
    ]
    in_channels = widths[0]
    for stage, width in enumerate(widths):
        for block in range(blocks_per_stage):
            stride = 2 if (stage > 0 and block == 0) else 1
            layers.append(
                ResidualBlock(f"stage{stage}.block{block}", in_channels, width,
                              stride=stride, rng=rng)
            )
            in_channels = width
    layers += [
        GlobalAvgPool("gap"),
        Linear("fc", in_channels, num_classes, rng=rng),
    ]
    return Network(name, layers, input_shape, num_classes)


def _build_densenet(rng, num_classes, input_shape) -> Network:
    # DenseNet analogue: deeper, narrower residual stack (3 blocks/stage).
    return _build_resnet(rng, num_classes, input_shape, widths=(12, 24, 48),
                         blocks_per_stage=3, name="densenet201")


def _build_vgg(rng, num_classes, input_shape) -> Network:
    c, h, w = input_shape
    layers = [
        Conv2D("conv1_1", c, 24, 3, padding=1, rng=rng), ReLU("relu1_1"),
        Conv2D("conv1_2", 24, 24, 3, padding=1, rng=rng), ReLU("relu1_2"),
        MaxPool2D("pool1", 2),
        Conv2D("conv2_1", 24, 48, 3, padding=1, rng=rng), ReLU("relu2_1"),
        Conv2D("conv2_2", 48, 48, 3, padding=1, rng=rng), ReLU("relu2_2"),
        MaxPool2D("pool2", 2),
        Conv2D("conv3_1", 48, 96, 3, padding=1, rng=rng), ReLU("relu3_1"),
        Conv2D("conv3_2", 96, 96, 3, padding=1, rng=rng), ReLU("relu3_2"),
        MaxPool2D("pool3", 2),
        Flatten("flatten"),
        # The wide FC stage keeps the analogue's defining Table-1 property:
        # VGG-16 is the largest model in the zoo (the paper's 528 MB), ahead
        # of AlexNet's FC-heavy 233 MB analogue.
        Linear("fc1", 96 * (h // 8) * (w // 8), 448, rng=rng), ReLU("relu_fc1"),
        Dropout("drop1", 0.3, rng=rng),
        Linear("fc2", 448, 96, rng=rng), ReLU("relu_fc2"),
        Linear("fc3", 96, num_classes, rng=rng),
    ]
    return Network("vgg16", layers, input_shape, num_classes)


def _build_alexnet(rng, num_classes, input_shape) -> Network:
    c, h, w = input_shape
    layers = [
        Conv2D("conv1", c, 24, 5, padding=2, rng=rng), ReLU("relu1"),
        MaxPool2D("pool1", 2),
        Conv2D("conv2", 24, 48, 3, padding=1, rng=rng), ReLU("relu2"),
        MaxPool2D("pool2", 2),
        Conv2D("conv3", 48, 64, 3, padding=1, rng=rng), ReLU("relu3"),
        Flatten("flatten"),
        Linear("fc1", 64 * (h // 4) * (w // 4), 256, rng=rng), ReLU("relu_fc1"),
        Dropout("drop1", 0.3, rng=rng),
        Linear("fc2", 256, 128, rng=rng), ReLU("relu_fc2"),
        Linear("fc3", 128, num_classes, rng=rng),
    ]
    return Network("alexnet", layers, input_shape, num_classes)


def _build_squeezenet(rng, num_classes, input_shape) -> Network:
    c, _, _ = input_shape
    layers = [
        Conv2D("conv1", c, 16, 3, padding=1, rng=rng), ReLU("relu1"),
        MaxPool2D("pool1", 2),
        FireModule("fire2", 16, 8, 16, rng=rng),
        FireModule("fire3", 32, 8, 16, rng=rng),
        MaxPool2D("pool3", 2),
        FireModule("fire4", 32, 12, 24, rng=rng),
        Conv2D("conv_final", 48, num_classes, 1, rng=rng),
        GlobalAvgPool("gap"),
    ]
    return Network("squeezenet1.1", layers, input_shape, num_classes)


def _build_mobilenet(rng, num_classes, input_shape) -> Network:
    c, _, _ = input_shape
    layers = [
        Conv2D("stem", c, 8, 3, padding=1, stride=1, bias=False, rng=rng),
        ReLU("stem_relu"),
        DepthwiseSeparableConv("dsc1", 8, 16, stride=1, rng=rng),
        DepthwiseSeparableConv("dsc2", 16, 32, stride=2, rng=rng),
        DepthwiseSeparableConv("dsc3", 32, 32, stride=1, rng=rng),
        DepthwiseSeparableConv("dsc4", 32, 64, stride=2, rng=rng),
        GlobalAvgPool("gap"),
        Linear("fc", 64, num_classes, rng=rng),
    ]
    return Network("mobilenetv2", layers, input_shape, num_classes)


def _build_yolo(rng, num_classes, input_shape, tiny: bool = False) -> Network:
    c, h, w = input_shape
    widths = (16, 32) if tiny else (24, 48, 64)
    name = "yolo-tiny" if tiny else "yolo"
    layers: List = []
    in_channels = c
    for i, width in enumerate(widths):
        layers += [
            Conv2D(f"conv{i + 1}", in_channels, width, 3, padding=1, rng=rng),
            ReLU(f"relu{i + 1}"),
            MaxPool2D(f"pool{i + 1}", 2),
        ]
        in_channels = width
    spatial = h // (2 ** len(widths))
    layers += [
        Flatten("flatten"),
        Linear("det_fc1", in_channels * spatial * spatial, 128 if not tiny else 64, rng=rng),
        ReLU("det_relu"),
        Linear("det_head", 128 if not tiny else 64, num_classes, rng=rng),
    ]
    return Network(name, layers, input_shape, num_classes)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

MODEL_SPECS: Dict[str, ModelSpec] = {
    "resnet101": ModelSpec(
        name="resnet101", paper_name="ResNet101", dataset="cifar10", metric="accuracy",
        paper_model_size_mb=163.0, paper_ifm_weight_size_mb=100.0, builder=_build_resnet,
    ),
    "mobilenetv2": ModelSpec(
        name="mobilenetv2", paper_name="MobileNetV2", dataset="cifar10", metric="accuracy",
        paper_model_size_mb=22.7, paper_ifm_weight_size_mb=68.5, builder=_build_mobilenet,
    ),
    "vgg16": ModelSpec(
        name="vgg16", paper_name="VGG-16", dataset="ilsvrc2012", metric="accuracy",
        paper_model_size_mb=528.0, paper_ifm_weight_size_mb=218.0, builder=_build_vgg,
        default_epochs=6,
    ),
    "densenet201": ModelSpec(
        name="densenet201", paper_name="DenseNet201", dataset="ilsvrc2012", metric="accuracy",
        paper_model_size_mb=76.0, paper_ifm_weight_size_mb=439.0, builder=_build_densenet,
    ),
    "squeezenet1.1": ModelSpec(
        name="squeezenet1.1", paper_name="SqueezeNet1.1", dataset="ilsvrc2012", metric="accuracy",
        paper_model_size_mb=4.8, paper_ifm_weight_size_mb=53.8, builder=_build_squeezenet,
        default_epochs=8,
    ),
    "alexnet": ModelSpec(
        name="alexnet", paper_name="AlexNet", dataset="cifar10", metric="accuracy",
        paper_model_size_mb=233.0, paper_ifm_weight_size_mb=208.0, builder=_build_alexnet,
    ),
    "yolo": ModelSpec(
        name="yolo", paper_name="YOLO", dataset="mscoco", metric="map",
        paper_model_size_mb=237.0, paper_ifm_weight_size_mb=360.0,
        builder=lambda rng, n, s: _build_yolo(rng, n, s, tiny=False),
        supports_int4=False, supports_int16=False,
        notes="framework supports only int8 and FP32 (paper Table 2)",
    ),
    "yolo-tiny": ModelSpec(
        name="yolo-tiny", paper_name="YOLO-Tiny", dataset="mscoco", metric="map",
        paper_model_size_mb=33.8, paper_ifm_weight_size_mb=51.3,
        builder=lambda rng, n, s: _build_yolo(rng, n, s, tiny=True),
        supports_int4=False, supports_int16=False,
        notes="framework supports only int8 and FP32 (paper Table 2)",
    ),
    "lenet": ModelSpec(
        name="lenet", paper_name="LeNet", dataset="cifar10", metric="accuracy",
        paper_model_size_mb=1.65, paper_ifm_weight_size_mb=2.30, builder=_build_lenet,
        notes="used for the real-DRAM SoftMC experiments (Figs. 7 and 9)",
    ),
}


def list_models() -> List[str]:
    """Names of all paper-model analogues, in Table 1 order."""
    return list(MODEL_SPECS)


def get_spec(name: str) -> ModelSpec:
    key = name.lower()
    if key not in MODEL_SPECS:
        raise KeyError(f"unknown model {name!r}; expected one of {list_models()}")
    return MODEL_SPECS[key]


def build_model(name: str, dataset: Optional[Dataset] = None, seed: int = 0) -> Network:
    """Instantiate the analogue for paper model ``name``.

    If ``dataset`` is omitted the model's default synthetic dataset is built to
    determine the input shape and class count (the network itself carries no
    reference to the dataset).
    """
    spec = get_spec(name)
    if dataset is None:
        dataset = load_dataset(spec.dataset, seed=seed)
    rng = np.random.default_rng(seed)
    return spec.builder(rng, dataset.num_classes, dataset.input_shape)


def build_model_with_dataset(name: str, seed: int = 0):
    """Convenience: return (network, dataset, spec) for a paper model name."""
    spec = get_spec(name)
    dataset = load_dataset(spec.dataset, seed=seed)
    network = build_model(name, dataset=dataset, seed=seed)
    return network, dataset, spec
