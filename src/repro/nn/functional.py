"""Numerical primitives (forward and backward) used by the layer classes.

Everything here is implemented with numpy.  Convolutions use im2col/col2im so
that the forward and backward passes reduce to matrix multiplications, which
keeps scaled-down model training fast enough to run inside the test suite.
Shapes follow the NCHW convention throughout.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size "
            f"(input={size}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


def im2col(x: np.ndarray, kernel, stride, padding) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold ``x`` (N, C, H, W) into columns of shape (N*OH*OW, C*KH*KW)."""
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, c, h, w = x.shape
    oh = conv_output_size(h, kh, sh, ph)
    ow = conv_output_size(w, kw, sw, pw)

    padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant")
    cols = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
    for i in range(kh):
        i_end = i + sh * oh
        for j in range(kw):
            j_end = j + sw * ow
            cols[:, :, i, j, :, :] = padded[:, :, i:i_end:sh, j:j_end:sw]
    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, c * kh * kw)
    return cols, (oh, ow)


def col2im(cols: np.ndarray, x_shape, kernel, stride, padding) -> np.ndarray:
    """Inverse of :func:`im2col`: fold columns back into an (N, C, H, W) tensor."""
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, c, h, w = x_shape
    oh = conv_output_size(h, kh, sh, ph)
    ow = conv_output_size(w, kw, sw, pw)

    cols = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + sh * oh
        for j in range(kw):
            j_end = j + sw * ow
            padded[:, :, i:i_end:sh, j:j_end:sw] += cols[:, :, i, j, :, :]
    if ph == 0 and pw == 0:
        return padded
    return padded[:, :, ph:ph + h, pw:pw + w]


def conv2d_forward(x, weight, bias, stride, padding):
    """2D convolution forward pass.

    Returns the output and a cache used by :func:`conv2d_backward`.
    """
    out_channels, in_channels, kh, kw = weight.shape
    if x.shape[1] != in_channels:
        raise ValueError(
            f"input has {x.shape[1]} channels but weight expects {in_channels}"
        )
    cols, (oh, ow) = im2col(x, (kh, kw), stride, padding)
    w_flat = weight.reshape(out_channels, -1)
    out = cols @ w_flat.T
    if bias is not None:
        out = out + bias.reshape(1, -1)
    n = x.shape[0]
    out = out.reshape(n, oh, ow, out_channels).transpose(0, 3, 1, 2)
    cache = (x.shape, cols, weight, stride, padding)
    return out.astype(np.float32), cache


def conv2d_backward(grad_out, cache):
    """Backward pass of :func:`conv2d_forward`.

    Returns (grad_input, grad_weight, grad_bias).
    """
    x_shape, cols, weight, stride, padding = cache
    out_channels = weight.shape[0]
    n, _, oh, ow = grad_out.shape
    grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1, out_channels)

    grad_weight = (grad_flat.T @ cols).reshape(weight.shape)
    grad_bias = grad_flat.sum(axis=0)
    grad_cols = grad_flat @ weight.reshape(out_channels, -1)
    grad_input = col2im(grad_cols, x_shape, weight.shape[2:], stride, padding)
    return (
        grad_input.astype(np.float32),
        grad_weight.astype(np.float32),
        grad_bias.astype(np.float32),
    )


def linear_forward(x, weight, bias):
    """Fully-connected forward: x (N, in) @ weight.T (in, out) + bias."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias.reshape(1, -1)
    return out.astype(np.float32), (x, weight)


def linear_backward(grad_out, cache):
    x, weight = cache
    grad_input = grad_out @ weight
    grad_weight = grad_out.T @ x
    grad_bias = grad_out.sum(axis=0)
    return (
        grad_input.astype(np.float32),
        grad_weight.astype(np.float32),
        grad_bias.astype(np.float32),
    )


def relu_forward(x):
    mask = x > 0
    return (x * mask).astype(np.float32), mask


def relu_backward(grad_out, mask):
    return (grad_out * mask).astype(np.float32)


def max_pool2d_forward(x, kernel, stride):
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride)
    n, c, h, w = x.shape
    oh = conv_output_size(h, kh, sh, 0)
    ow = conv_output_size(w, kw, sw, 0)
    cols, _ = im2col(x.reshape(n * c, 1, h, w), (kh, kw), (sh, sw), 0)
    argmax = cols.argmax(axis=1)
    out = cols[np.arange(cols.shape[0]), argmax]
    out = out.reshape(n, c, oh, ow)
    cache = (x.shape, argmax, (kh, kw), (sh, sw), cols.shape)
    return out.astype(np.float32), cache


def max_pool2d_backward(grad_out, cache):
    x_shape, argmax, kernel, stride, cols_shape = cache
    n, c, h, w = x_shape
    grad_cols = np.zeros(cols_shape, dtype=np.float32)
    grad_flat = grad_out.reshape(-1)
    grad_cols[np.arange(cols_shape[0]), argmax] = grad_flat
    grad_input = col2im(grad_cols, (n * c, 1, h, w), kernel, stride, 0)
    return grad_input.reshape(x_shape).astype(np.float32)


def avg_pool2d_forward(x, kernel, stride):
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride)
    n, c, h, w = x.shape
    cols, (oh, ow) = im2col(x.reshape(n * c, 1, h, w), (kh, kw), (sh, sw), 0)
    out = cols.mean(axis=1).reshape(n, c, oh, ow)
    cache = (x.shape, (kh, kw), (sh, sw), cols.shape)
    return out.astype(np.float32), cache


def avg_pool2d_backward(grad_out, cache):
    x_shape, kernel, stride, cols_shape = cache
    n, c, h, w = x_shape
    kh, kw = kernel
    grad_cols = np.repeat(
        grad_out.reshape(-1, 1) / float(kh * kw), cols_shape[1], axis=1
    ).astype(np.float32)
    grad_input = col2im(grad_cols, (n * c, 1, h, w), kernel, stride, 0)
    return grad_input.reshape(x_shape).astype(np.float32)


def global_avg_pool_forward(x):
    out = x.mean(axis=(2, 3))
    return out.astype(np.float32), x.shape


def global_avg_pool_backward(grad_out, x_shape):
    n, c, h, w = x_shape
    grad = grad_out.reshape(n, c, 1, 1) / float(h * w)
    return np.broadcast_to(grad, x_shape).astype(np.float32)


def batchnorm_forward(x, gamma, beta, running_mean, running_var, training, momentum=0.1, eps=1e-5):
    """Batch normalization over (N, H, W) per channel for 4D inputs, or per
    feature for 2D inputs."""
    if x.ndim == 4:
        axes = (0, 2, 3)
        shape = (1, -1, 1, 1)
    elif x.ndim == 2:
        axes = (0,)
        shape = (1, -1)
    else:
        raise ValueError(f"batchnorm expects 2D or 4D input, got {x.ndim}D")

    if training:
        mean = x.mean(axis=axes)
        var = x.var(axis=axes)
        running_mean[:] = (1.0 - momentum) * running_mean + momentum * mean
        running_var[:] = (1.0 - momentum) * running_var + momentum * var
    else:
        mean = running_mean
        var = running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x - mean.reshape(shape)) * inv_std.reshape(shape)
    out = gamma.reshape(shape) * x_hat + beta.reshape(shape)
    cache = (x_hat, inv_std, gamma, axes, shape)
    return out.astype(np.float32), cache


def batchnorm_backward(grad_out, cache):
    x_hat, inv_std, gamma, axes, shape = cache
    m = 1
    for axis in axes:
        m *= grad_out.shape[axis]
    m = float(m)

    grad_gamma = (grad_out * x_hat).sum(axis=axes)
    grad_beta = grad_out.sum(axis=axes)

    grad_xhat = grad_out * gamma.reshape(shape)
    grad_input = (
        inv_std.reshape(shape)
        / m
        * (
            m * grad_xhat
            - grad_xhat.sum(axis=axes).reshape(shape)
            - x_hat * (grad_xhat * x_hat).sum(axis=axes).reshape(shape)
        )
    )
    return (
        grad_input.astype(np.float32),
        grad_gamma.astype(np.float32),
        grad_beta.astype(np.float32),
    )


def softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return (exp / exp.sum(axis=1, keepdims=True)).astype(np.float32)


def cross_entropy_loss(logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
    """Softmax cross-entropy loss and its gradient with respect to the logits."""
    n = logits.shape[0]
    probs = softmax(logits)
    clipped = np.clip(probs[np.arange(n), labels], 1e-12, None)
    loss = float(-np.log(clipped).mean())
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    grad /= float(n)
    return loss, grad.astype(np.float32)
