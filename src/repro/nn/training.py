"""SGD training loop used for baseline training and curricular retraining.

The trainer is deliberately simple (SGD with momentum, optional weight decay
and step LR schedule): EDEN explicitly avoids hyper-parameter tuning
(Section 6.1) and its retraining mechanism reuses the default training recipe
while layering error injection on top.  The trainer therefore exposes two
hooks the EDEN core uses:

* ``epoch_callback`` — called before each epoch with the epoch number, which
  curricular retraining uses to ramp the injected error rate; and
* the network's fault injector — the trainer leaves whatever injector is
  installed in place for the forward pass and disables it for the backward
  pass (the paper uses approximate DRAM only in the forward pass).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.nn.datasets import Dataset
from repro.nn.metrics import evaluate
from repro.nn.network import Network


@dataclass
class TrainingConfig:
    """Hyper-parameters for one training run."""

    epochs: int = 8
    batch_size: int = 32
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    lr_decay_epochs: int = 0        # 0 disables the step schedule
    lr_decay_factor: float = 0.1
    grad_clip: float = 5.0
    metric: str = "accuracy"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")


@dataclass
class TrainingHistory:
    """Per-epoch record of loss and validation metric."""

    losses: List[float] = field(default_factory=list)
    val_scores: List[float] = field(default_factory=list)

    @property
    def final_score(self) -> float:
        return self.val_scores[-1] if self.val_scores else float("nan")

    @property
    def best_score(self) -> float:
        return max(self.val_scores) if self.val_scores else float("nan")


class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(self, parameters, learning_rate: float, momentum: float = 0.9,
                 weight_decay: float = 0.0):
        self.parameters = list(parameters)
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)

    def step(self) -> None:
        for param in self.parameters:
            if not param.trainable or param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                if param.momentum_buffer is None:
                    param.momentum_buffer = np.zeros_like(param.data)
                param.momentum_buffer = self.momentum * param.momentum_buffer + grad
                grad = param.momentum_buffer
            param.data = (param.data - self.learning_rate * grad).astype(np.float32)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()


class Trainer:
    """Runs epochs of SGD over a :class:`~repro.nn.datasets.Dataset`."""

    def __init__(self, network: Network, dataset: Dataset, config: Optional[TrainingConfig] = None):
        self.network = network
        self.dataset = dataset
        self.config = config or TrainingConfig()
        self._rng = np.random.default_rng(self.config.seed)

    def _clip_gradients(self) -> None:
        limit = self.config.grad_clip
        if not limit:
            return
        for param in self.network.parameters():
            if param.grad is not None:
                np.clip(param.grad, -limit, limit, out=param.grad)

    def train_epoch(self, optimizer: SGD) -> float:
        """One pass over the training split; returns the mean batch loss."""
        self.network.train()
        losses = []
        injector = self.network.fault_injector
        for batch_x, batch_y in self.dataset.batches(self.config.batch_size, rng=self._rng):
            optimizer.zero_grad()
            # Forward pass may go through approximate DRAM (injector active).
            loss, grad, _ = self.network.loss(batch_x, batch_y)
            # Backward pass uses reliable DRAM (paper, Section 3.2).
            self.network.set_fault_injector(None)
            try:
                self.network.backward(grad)
            finally:
                self.network.set_fault_injector(injector)
            self._clip_gradients()
            optimizer.step()
            losses.append(loss)
        return float(np.mean(losses)) if losses else float("nan")

    def fit(self, epoch_callback: Optional[Callable[[int], None]] = None) -> TrainingHistory:
        """Train for ``config.epochs`` epochs and return the history."""
        config = self.config
        optimizer = SGD(
            self.network.parameters(),
            learning_rate=config.learning_rate,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        history = TrainingHistory()
        for epoch in range(config.epochs):
            if epoch_callback is not None:
                epoch_callback(epoch)
            if config.lr_decay_epochs and epoch and epoch % config.lr_decay_epochs == 0:
                optimizer.learning_rate *= config.lr_decay_factor
            loss = self.train_epoch(optimizer)
            score = self.evaluate()
            history.losses.append(loss)
            history.val_scores.append(score)
        self.network.eval()
        return history

    def evaluate(self) -> float:
        """Validation score with whatever fault injector is currently installed."""
        self.network.eval()
        return evaluate(
            self.network, self.dataset.val_x, self.dataset.val_y,
            metric=self.config.metric, batch_size=self.config.batch_size,
        )
