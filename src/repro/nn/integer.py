"""Integer-GEMM inference kernels for the fused quantized execution path.

These kernels execute ``Linear``/``Conv2D`` layers directly on symmetric
integer codes (:mod:`repro.nn.quantization`): activations are quantized once
at the layer input, the GEMM accumulates integer products exactly, and the
result is dequantized *once* at the layer output — instead of the
fake-quantize path's quantize→dequantize round trip on every load followed
by a float GEMM.

Exactness contract
------------------
NumPy's native integer matmul does not go through BLAS and is an order of
magnitude slower than ``float32`` GEMM, so the kernels hold code arrays in
float containers and let BLAS do the accumulation.  The result is still the
*exact* ``int8 x int8 -> int32`` (or ``int16 x int16 -> int64``) sum: every
product and partial sum is an integer, and as long as its magnitude stays
below the float mantissa (2^24 for float32, 2^53 for float64) no rounding
can occur at any step.  :func:`exact_matmul` enforces that bound by chunking
the reduction dimension (int8 codes: 1024 columns per chunk) and
accumulating chunk results in float64.  Because every intermediate value is
exact, the result is independent of summation order — which is what makes
the integer path *bit-identical across batch shapes*, a property the FP32
path only gets by padding to a static shape.

The parity suite (``tests/test_engine_quantized.py``) verifies the kernels
against an ``int64`` reference accumulation.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.quantization import QuantizationSpec


def gemm_dtype(bits: int) -> np.dtype:
    """Float container whose mantissa holds ``bits``-bit products exactly."""
    return np.dtype(np.float32 if bits <= 8 else np.float64)


def _product_bound(bits: int) -> int:
    # A corrupted b-bit code can be any two's-complement pattern, so the
    # per-element magnitude bound is 2^(b-1) (not qmax).
    return (1 << (bits - 1)) ** 2


def exact_matmul(a: np.ndarray, b: np.ndarray, bits: int) -> np.ndarray:
    """``a @ b`` with exact integer accumulation, via BLAS.

    ``a`` (M, K) and ``b`` (K, N) hold ``bits``-bit integer codes in the
    :func:`gemm_dtype` container.  Returns the exact integer-valued product
    as a float array (float32 when a single float32 GEMM is provably exact,
    float64 when chunked accumulation or 16-bit codes require it).
    """
    k = a.shape[1]
    bound = _product_bound(bits)
    if bits <= 8:
        chunk = (1 << 24) // bound
        if k <= chunk:
            return a @ b
        acc: Optional[np.ndarray] = None
        for start in range(0, k, chunk):
            part = a[:, start:start + chunk] @ b[start:start + chunk]
            acc = part.astype(np.float64) if acc is None else acc + part
        return acc
    if k * bound >= (1 << 53):  # pragma: no cover - no such model fits in RAM
        raise ValueError(f"{bits}-bit GEMM with K={k} exceeds exact float64 "
                         f"accumulation")
    return a @ b


def quantize_activations(x: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Quantize ``x`` to integer codes kept in the GEMM float container."""
    codes = np.rint(x * np.float32(1.0 / spec.scale))
    np.clip(codes, spec.qmin, spec.qmax, out=codes)
    dtype = gemm_dtype(spec.bits)
    return codes if codes.dtype == dtype else codes.astype(dtype)


def _pad_nchw(x: np.ndarray, ph: int, pw: int) -> np.ndarray:
    """Zero-pad H/W of an NCHW tensor (plain slice assignment: ``np.pad``'s
    generic machinery costs more than this whole kernel at serving shapes)."""
    if ph == 0 and pw == 0:
        return x
    n, c, h, w = x.shape
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=x.dtype)
    padded[:, :, ph:ph + h, pw:pw + w] = x
    return padded


#: cached (OH*OW, C*KH*KW) gather tables, keyed by the full unfold geometry.
#: Serving dispatches run at a static shape, so each conv layer resolves to
#: one table, built once.
_GATHER_CACHE: dict = {}


def _gather_table(c: int, ph: int, pw: int, kernel: Tuple[int, int],
                  stride: Tuple[int, int], oh: int, ow: int) -> np.ndarray:
    key = (c, ph, pw, kernel, stride, oh, ow)
    table = _GATHER_CACHE.get(key)
    if table is None:
        kh, kw = kernel
        sh, sw = stride
        rows_y = (np.arange(oh) * sh)[:, None, None, None, None] \
            + np.arange(kh)[None, None, None, :, None]
        cols_x = (np.arange(ow) * sw)[None, :, None, None, None] \
            + np.arange(kw)[None, None, None, None, :]
        chans = np.arange(c)[None, None, :, None, None]
        table = (chans * (ph * pw) + rows_y * pw + cols_x) \
            .reshape(oh * ow, c * kh * kw)
        _GATHER_CACHE[key] = table
    return table


def im2col_codes(x: np.ndarray, kernel: Tuple[int, int],
                 stride: Tuple[int, int], padding: Tuple[int, int]
                 ) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold NCHW ``x`` into (N*OH*OW, C*KH*KW) columns in one gather.

    Same layout contract as :func:`repro.nn.functional.im2col`, but the
    unfold is a single gather through a cached index table — the reference
    implementation pays KH*KW strided slice copies plus a full transpose
    copy, which dominates the serving profile at small layer shapes.
    ``np.take`` rather than ``flat[:, table]``: the subscript form returns
    a transposed-layout array (NumPy hoists the advanced axis), which would
    make the trailing reshape a second full copy.
    """
    kh, kw = kernel
    n, c, h, w = x.shape
    oh = F.conv_output_size(h, kh, stride[0], padding[0])
    ow = F.conv_output_size(w, kw, stride[1], padding[1])
    padded = _pad_nchw(x, padding[0], padding[1])
    ph, pw = padded.shape[2], padded.shape[3]
    table = _gather_table(c, ph, pw, kernel, stride, oh, ow)
    # mode="wrap" skips the per-element bounds-check path; the cached table
    # is in-bounds by construction, so the result is identical.
    cols = np.take(padded.reshape(n, c * ph * pw), table, axis=1, mode="wrap")
    return cols.reshape(n * oh * ow, c * kh * kw), (oh, ow)


def linear_integer_forward(x: np.ndarray, w_operand_t: np.ndarray,
                           w_scale: float, x_spec: QuantizationSpec,
                           bias: Optional[np.ndarray]) -> np.ndarray:
    """Fully-connected forward on integer codes, dequantized once at output.

    ``w_operand_t`` is the (in, out) transposed weight-code operand prepared
    by the plan compiler; ``w_scale``/``x_spec`` carry the symmetric scales.
    Returns float32 rows.
    """
    codes = quantize_activations(x, x_spec)
    acc = exact_matmul(codes, w_operand_t, x_spec.bits)
    acc *= acc.dtype.type(w_scale * x_spec.scale)   # fresh array: safe in place
    if bias is not None:
        acc += bias.reshape(1, -1)
    return acc if acc.dtype == np.float32 else acc.astype(np.float32)


def conv2d_integer_forward(x: np.ndarray, w_operand_t: np.ndarray,
                           w_scale: float, x_spec: QuantizationSpec,
                           bias: Optional[np.ndarray], kernel: Tuple[int, int],
                           stride: Tuple[int, int], padding: Tuple[int, int],
                           out_channels: int) -> np.ndarray:
    """2D convolution forward on integer codes (im2col + exact GEMM).

    ``w_operand_t`` is the (C*KH*KW, out_channels) flattened weight-code
    operand.  Dequantizes once at the layer output.  Returns float32 NCHW.
    """
    codes = quantize_activations(x, x_spec)
    cols, (oh, ow) = im2col_codes(codes, kernel, stride, padding)
    acc = exact_matmul(cols, w_operand_t, x_spec.bits)
    acc *= acc.dtype.type(w_scale * x_spec.scale)   # fresh array: safe in place
    if bias is not None:
        acc += bias.reshape(1, -1)
    n = x.shape[0]
    out = acc.reshape(n, oh, ow, out_channels).transpose(0, 3, 1, 2)
    return np.ascontiguousarray(out, dtype=np.float32)


def relu_infer(x: np.ndarray) -> np.ndarray:
    """Inference-only ReLU (no backward mask is built or kept)."""
    return np.maximum(x, np.float32(0.0))


def max_pool2d_infer(x: np.ndarray, kernel: Tuple[int, int],
                     stride: Tuple[int, int]) -> np.ndarray:
    """Inference-only max pooling over strided windows.

    The training kernel materializes im2col columns plus an argmax cache for
    the backward pass; serving needs neither — a strided window view plus
    one reduction does the same job in a fraction of the traffic.
    """
    kh, kw = kernel
    sh, sw = stride
    n, c, h, w = x.shape
    oh = F.conv_output_size(h, kh, sh, 0)
    ow = F.conv_output_size(w, kw, sw, 0)
    # KH*KW strided full-array maximums beat a windowed reduction here: the
    # reduction axes are tiny and non-contiguous, so ``windows.max(axis=..)``
    # degenerates into per-window scalar loops.
    out: Optional[np.ndarray] = None
    for i in range(kh):
        i_end = i + sh * oh
        for j in range(kw):
            j_end = j + sw * ow
            window = x[:, :, i:i_end:sh, j:j_end:sw]
            if out is None:
                out = np.ascontiguousarray(window)
            else:
                np.maximum(out, window, out=out)
    return out
