"""Symmetric linear quantization, as used by the paper (Section 2.1, Table 2).

The paper quantizes all models to int4, int8, int16 and FP32 with a symmetric
linear scheme: each tensor gets an affine scale mapping its values into
``[-2^(b-1), 2^(b-1) - 1]``.  Quantization matters to EDEN for two reasons:

* bit errors hit a *b*-bit integer representation rather than an IEEE-754
  float, so the magnitude of a single flip differs, and
* lower precision tensors pack more values per DRAM row, which changes how
  spatially-correlated error models (bitline / wordline locality) land.

This module provides per-tensor quantization parameters, fake-quantized
inference (quantize → dequantize around every load), and the integer codecs
the bit-error injector uses.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.network import Network
from repro.nn.tensor import TensorSpec

#: numeric precisions evaluated in the paper
SUPPORTED_BITS = (4, 8, 16, 32)

#: precisions the integer execution path can hold as code arrays
INTEGER_BITS = (4, 8, 16)


class ExecutionMode(enum.Enum):
    """How a compiled plan executes its GEMM layers.

    ``FP32`` is the historical float path: weights (possibly fake-quantized
    by a :class:`QuantizedLoadTransform`) are served as float32 arrays and
    every ``Linear``/``Conv2D`` runs a float GEMM.  ``INTEGER`` is the fused
    quantized hot path: weights stay *integer code arrays* (int8/int4/int16
    symmetric codes, bit errors applied to the codes) and GEMM layers run an
    exact integer-accumulate kernel, dequantizing once at the layer output.
    ``AUTO`` resolves to ``INTEGER`` when the session's injector and read
    semantics support it and falls back to ``FP32`` otherwise.
    """

    FP32 = "fp32"
    INTEGER = "integer"
    AUTO = "auto"

    @classmethod
    def resolve(cls, value) -> "ExecutionMode":
        """Coerce a mode name (or mode) into an :class:`ExecutionMode`."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ValueError(
                f"unknown execution mode {value!r}; expected one of "
                f"{[mode.value for mode in cls]}")


def code_dtype(bits: int) -> np.dtype:
    """Narrowest signed container for ``bits``-bit symmetric codes.

    int4 codes occupy one int8 byte each in working arrays — the 4-bit
    *packed* layout is what the DRAM bit-image (:func:`tensor_to_bits`, 4
    bits per element in uint64 words) and the injection engine operate on.
    """
    if bits not in INTEGER_BITS:
        raise ValueError(f"no integer container for {bits}-bit tensors")
    return np.dtype(np.int8 if bits <= 8 else np.int16)


def quantize_codes(values: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Quantize floats to codes in the narrowest signed container."""
    return quantize(values, spec).astype(code_dtype(spec.bits))


def recover_codes(stored: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Invert :func:`dequantize` on a stored (possibly corrupted) tensor.

    A bit-flipped b-bit code can land on any two's-complement pattern —
    including ``-2^(b-1)``, one below ``spec.qmin`` — so recovery must not
    clip the way :func:`quantize` does.  Exact for every b-bit pattern:
    ``|code| <= 2^(b-1) <= 32768`` keeps the float32 rounding error of
    ``code * scale`` far below half a step.  Returns the code array in the
    container :func:`code_dtype` picks.
    """
    codes = np.rint(np.asarray(stored, dtype=np.float64) / spec.scale)
    return codes.astype(code_dtype(spec.bits))


@dataclass(frozen=True)
class QuantizationSpec:
    """Per-tensor symmetric quantization parameters."""

    bits: int
    scale: float

    def __post_init__(self) -> None:
        if self.bits not in SUPPORTED_BITS:
            raise ValueError(f"unsupported precision {self.bits}; expected one of {SUPPORTED_BITS}")
        if self.bits != 32 and self.scale <= 0:
            raise ValueError("quantization scale must be positive")

    @property
    def qmin(self) -> int:
        return -(2 ** (self.bits - 1))

    @property
    def qmax(self) -> int:
        return 2 ** (self.bits - 1) - 1

    @property
    def is_float(self) -> bool:
        return self.bits == 32


def compute_scale(values: np.ndarray, bits: int) -> float:
    """Symmetric scale so that max(|values|) maps to the integer extreme."""
    if bits == 32:
        return 1.0
    max_abs = float(np.max(np.abs(values))) if values.size else 0.0
    if max_abs == 0.0:
        max_abs = 1.0
    return max_abs / float(2 ** (bits - 1) - 1)


def make_spec(values: np.ndarray, bits: int) -> QuantizationSpec:
    return QuantizationSpec(bits=bits, scale=compute_scale(values, bits))


def quantize(values: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Quantize float values to signed integers (int64 container).

    The division runs in float64 (matching :func:`recover_codes`): a
    float32 quotient would underflow for subnormal scales — ``scale``
    below ~1.4e-45 rounds to 0.0 in float32, turning every quotient into
    inf/nan and the cast into garbage codes.
    """
    if spec.is_float:
        raise ValueError("FP32 tensors are not integer-quantized")
    q = np.round(np.asarray(values, dtype=np.float64) / spec.scale)
    return np.clip(q, spec.qmin, spec.qmax).astype(np.int64)

def dequantize(codes: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    if spec.is_float:
        raise ValueError("FP32 tensors are not integer-quantized")
    return (codes.astype(np.float64) * spec.scale).astype(np.float32)


def fake_quantize(values: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Quantize then dequantize, simulating reduced-precision storage."""
    if spec.is_float:
        return values.astype(np.float32)
    return dequantize(quantize(values, spec), spec)


class QuantizedLoadTransform:
    """Fault-injector-compatible hook that fake-quantizes every load.

    Installing this on a :class:`~repro.nn.network.Network` makes every weight
    and IFM load behave as if the value was stored at ``bits`` precision, which
    is how Table 2's int4/int8/int16 baseline accuracies are measured.  It can
    also wrap an inner injector so bit errors are applied *on the quantized
    representation* (the realistic composition: DRAM stores the integer codes).
    """

    def __init__(self, bits: int, inner=None):
        if bits not in SUPPORTED_BITS:
            raise ValueError(f"unsupported precision {bits}")
        self.bits = bits
        self.inner = inner
        #: per-tensor scales, keyed by name and *data fingerprint*: a cache
        #: keyed on the name alone served stale scales after a parameter was
        #: retrained or mutated in place.  One entry per name bounds the
        #: cache (IFM tensors fingerprint differently on every batch).
        self._spec_cache: Dict[str, Tuple[tuple, QuantizationSpec]] = {}

    @staticmethod
    def _fingerprint(values: np.ndarray) -> tuple:
        """Cheap content fingerprint of ``values`` (shape + CRC of bytes)."""
        contiguous = np.ascontiguousarray(values)
        return (contiguous.shape, zlib.crc32(contiguous.view(np.uint8).data))

    def spec_for(self, name: str, values: np.ndarray) -> QuantizationSpec:
        fingerprint = self._fingerprint(values)
        cached = self._spec_cache.get(name)
        if cached is not None and cached[0] == fingerprint:
            return cached[1]
        spec = make_spec(values, self.bits)
        self._spec_cache[name] = (fingerprint, spec)
        return spec

    def apply(self, array: np.ndarray, spec: TensorSpec) -> np.ndarray:
        tensor_spec = spec.with_bits(self.bits)
        if self.bits == 32:
            out = array
        else:
            qspec = self.spec_for(spec.name, array)
            out = fake_quantize(array, qspec)
        if self.inner is not None:
            out = self.inner.apply(out, tensor_spec)
        return out


def quantize_network(network: Network, bits: int,
                     inner_injector=None) -> QuantizedLoadTransform:
    """Attach a fake-quantization load transform to ``network`` and return it."""
    transform = QuantizedLoadTransform(bits, inner=inner_injector)
    network.set_fault_injector(transform)
    return transform


def tensor_to_bits(values: np.ndarray, bits: int,
                   qspec: Optional[QuantizationSpec] = None):
    """Encode a float tensor as the raw unsigned integer words DRAM would hold.

    Returns (words, codec_state).  ``words`` is a uint64 array of per-element
    bit patterns (two's complement for integer precisions, IEEE-754 for FP32);
    ``codec_state`` is whatever :func:`bits_to_tensor` needs to decode.  Bit
    ``j`` of element ``e`` is flat DRAM bit ``e * bits + j`` (LSB-first) —
    the layout contract the packed injection engine
    (:mod:`repro.dram.packed`) and :func:`flip_bits_in_words` both assume.
    """
    values = np.asarray(values, dtype=np.float32)
    if bits == 32:
        words = values.view(np.uint32).astype(np.uint64)
        return words, None
    if qspec is None:
        qspec = make_spec(values, bits)
    codes = quantize(values, qspec)
    mask = (1 << bits) - 1
    words = (codes & mask).astype(np.uint64)
    return words, qspec


def bits_to_tensor(words: np.ndarray, bits: int, codec_state) -> np.ndarray:
    """Decode raw bit patterns produced by :func:`tensor_to_bits` back to floats.

    This sits on the injection hot path (every simulated weight/IFM load),
    so it must not add passes over the data beyond the container conversion:
    ``astype`` already copies, making the float32 view safe to return.
    """
    if bits == 32:
        return words.astype(np.uint32).view(np.float32)
    qspec: QuantizationSpec = codec_state
    mask = (1 << bits) - 1
    words = words.astype(np.int64) & mask
    sign_bit = 1 << (bits - 1)
    codes = np.where(words >= sign_bit, words - (1 << bits), words)
    return dequantize(codes, qspec)
