"""Magnitude-based pruning (paper Sections 2.1 and 3.3, "Effect of Pruning").

EDEN explicitly evaluates whether sparsifying a DNN changes its bit-error
tolerance (it does not, significantly) and observes that the zero values
introduced by pruning are themselves sensitive to bit errors.  This module
implements the magnitude pruning the paper uses and reports sparsity
statistics so the ablation benchmarks can reproduce that finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from repro.nn.network import Network
from repro.nn.tensor import Parameter


@dataclass(frozen=True)
class SparsityReport:
    """Per-network sparsity summary after pruning."""

    target_sparsity: float
    achieved_sparsity: float
    per_tensor: Dict[str, float]

    def tensor_sparsity(self, name: str) -> float:
        return self.per_tensor[name]


def _prunable(parameters: Iterable[Parameter]) -> List[Parameter]:
    """Weights (not biases / batch-norm scales) are the pruning targets."""
    return [
        p for p in parameters
        if p.kind.value == "weight" and p.data.ndim >= 2 and p.trainable
    ]


def magnitude_prune(network: Network, sparsity: float) -> SparsityReport:
    """Zero the globally smallest-magnitude fraction ``sparsity`` of weights.

    Uses a single global threshold across all prunable tensors, matching
    magnitude pruning as described in Deep Compression and used by the paper's
    energy-aware pruning comparison.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")

    prunable = _prunable(network.parameters())
    if not prunable:
        return SparsityReport(sparsity, 0.0, {})

    if sparsity == 0.0:
        per_tensor = {p.name: float(np.mean(p.data == 0.0)) for p in prunable}
        achieved = _overall_sparsity(prunable)
        return SparsityReport(sparsity, achieved, per_tensor)

    all_magnitudes = np.concatenate([np.abs(p.data).ravel() for p in prunable])
    threshold = float(np.quantile(all_magnitudes, sparsity))

    per_tensor: Dict[str, float] = {}
    for param in prunable:
        mask = np.abs(param.data) > threshold
        param.data = (param.data * mask).astype(np.float32)
        per_tensor[param.name] = float(np.mean(param.data == 0.0))

    return SparsityReport(sparsity, _overall_sparsity(prunable), per_tensor)


def _overall_sparsity(parameters: List[Parameter]) -> float:
    total = sum(p.num_elements for p in parameters)
    zeros = sum(int(np.count_nonzero(p.data == 0.0)) for p in parameters)
    return zeros / total if total else 0.0


def sparsity_of(network: Network) -> float:
    """Fraction of prunable weight elements that are exactly zero."""
    prunable = _prunable(network.parameters())
    if not prunable:
        return 0.0
    return _overall_sparsity(prunable)
