"""The Network container: a stack of layers plus EDEN-facing introspection.

Beyond ordinary forward/backward execution, a :class:`Network` can

* report the full inventory of DNN data types (weights and IFMs) that EDEN
  characterizes and maps to DRAM partitions (:meth:`data_type_specs`),
* install a *fault injector* so every simulated memory load of a weight or
  IFM passes through an approximate-DRAM error model
  (:meth:`set_fault_injector`), and
* snapshot/restore its parameters, which the retraining and characterization
  loops rely on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import (
    Layer,
    Sequential,
    set_layer_injector,
    set_layer_mode,
    set_layer_precision,
)
from repro.nn.tensor import DataKind, Parameter, TensorSpec


class _SpecRecorder:
    """Fault-injector stand-in that records every load's TensorSpec."""

    def __init__(self) -> None:
        self.specs: List[TensorSpec] = []
        self._seen: set = set()

    def apply(self, array: np.ndarray, spec: TensorSpec) -> np.ndarray:
        if spec.name not in self._seen:
            self._seen.add(spec.name)
            self.specs.append(spec)
        return array


class Network:
    """A feed-forward DNN assembled from :class:`~repro.nn.layers.Layer` objects."""

    def __init__(self, name: str, layers: Sequence[Layer], input_shape, num_classes: int):
        self.name = name
        self.layers: List[Layer] = list(layers)
        self.input_shape = tuple(int(d) for d in input_shape)  # (C, H, W) or (features,)
        self.num_classes = int(num_classes)
        self.training = False
        self._injector = None
        self._assign_layer_indices()

    # -- structure ----------------------------------------------------------------
    def _assign_layer_indices(self) -> None:
        for index, layer in enumerate(self.leaf_layers()):
            layer.layer_index = index
            for param in layer.parameters():
                param.layer_index = index

    def leaf_layers(self) -> List[Layer]:
        leaves: List[Layer] = []
        for layer in self.layers:
            if hasattr(layer, "iter_layers"):
                leaves.extend(layer.iter_layers())
            else:
                leaves.append(layer)
        return leaves

    @property
    def depth(self) -> int:
        """Number of parameterized leaf layers (conv + linear)."""
        return sum(1 for layer in self.leaf_layers() if layer.parameters())

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def named_parameters(self) -> Dict[str, Parameter]:
        return {param.name: param for param in self.parameters()}

    def num_parameters(self) -> int:
        return sum(param.num_elements for param in self.parameters())

    def parameter_bytes(self, dtype_bits: int = 32) -> int:
        return sum(param.num_elements * dtype_bits // 8 for param in self.parameters())

    # -- modes and hooks ----------------------------------------------------------
    def train(self) -> "Network":
        self.training = True
        set_layer_mode(self.layers, True)
        return self

    def eval(self) -> "Network":
        self.training = False
        set_layer_mode(self.layers, False)
        return self

    def set_fault_injector(self, injector) -> None:
        """Install ``injector`` (or clear it with ``None``) on every layer.

        The injector must expose ``apply(array, spec) -> array``; it is called
        on every simulated memory load of a weight or IFM.
        """
        self._injector = injector
        set_layer_injector(self.layers, injector)

    @property
    def fault_injector(self):
        return self._injector

    def set_data_precision(self, weight_bits: Optional[int] = None,
                           ifm_bits: Optional[int] = None) -> None:
        """Set the storage precision advertised by weight / IFM load specs.

        EDEN can map weights and IFMs to DRAM partitions of different
        precision; injectors and correctors that key off ``spec.dtype_bits``
        then see the right per-kind value.  ``None`` leaves a kind unchanged.
        """
        set_layer_precision(self.layers, weight_bits=weight_bits,
                            ifm_bits=ifm_bits)

    # -- execution ----------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def predict(self, x: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Class predictions for a batch of inputs (uses eval mode)."""
        was_training = self.training
        self.eval()
        predictions = []
        for start in range(0, len(x), batch_size):
            logits = self.forward(x[start:start + batch_size])
            predictions.append(np.argmax(logits, axis=1))
        if was_training:
            self.train()
        return np.concatenate(predictions) if predictions else np.empty(0, dtype=np.int64)

    def loss(self, x: np.ndarray, labels: np.ndarray):
        """Forward + cross-entropy; returns (loss, grad_wrt_logits, logits)."""
        logits = self.forward(x)
        loss, grad = F.cross_entropy_loss(logits, labels)
        return loss, grad, logits

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- EDEN-facing introspection --------------------------------------------------
    def data_type_specs(self, dtype_bits: Optional[int] = 32,
                        batch_size: int = 1) -> List[TensorSpec]:
        """Inventory of weight and IFM data types seen during one inference.

        Runs a single dummy forward pass with a recording hook, exactly like a
        real error-injection run, so composite layers (residual blocks, fire
        modules) report the same set of data types the injector would touch.
        ``dtype_bits=None`` keeps each spec at the precision its layer
        advertises (see :meth:`set_data_precision`) instead of stamping a
        uniform one.
        """
        recorder = _SpecRecorder()
        previous = self._injector
        was_training = self.training
        self.eval()
        self.set_fault_injector(recorder)
        dummy = np.zeros((batch_size,) + self.input_shape, dtype=np.float32)
        try:
            self.forward(dummy)
        finally:
            self.set_fault_injector(previous)
            if was_training:
                self.train()
        if dtype_bits is None:
            return list(recorder.specs)
        return [spec.with_bits(dtype_bits) for spec in recorder.specs]

    def weight_specs(self, dtype_bits: Optional[int] = 32) -> List[TensorSpec]:
        return [s for s in self.data_type_specs(dtype_bits) if s.kind is DataKind.WEIGHT]

    def ifm_specs(self, dtype_bits: Optional[int] = 32) -> List[TensorSpec]:
        return [s for s in self.data_type_specs(dtype_bits) if s.kind is DataKind.IFM]

    def footprint_bytes(self, dtype_bits: int = 32) -> int:
        """Total bytes of weights + IFMs touched by one inference (Table 1 metric)."""
        return sum(spec.size_bytes for spec in self.data_type_specs(dtype_bits))

    # -- state management ---------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {param.name: param.data.copy() for param in self.parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = self.named_parameters()
        missing = set(params) - set(state)
        if missing:
            raise KeyError(f"state dict is missing parameters: {sorted(missing)[:5]}")
        for name, param in params.items():
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()

    def clone(self) -> "Network":
        """Structural deep copy sharing no parameter storage (used by retraining)."""
        import copy

        clone = copy.deepcopy(self)
        clone.set_fault_injector(None)
        return clone

    def summary(self) -> str:
        lines = [f"Network {self.name!r}: input={self.input_shape}, classes={self.num_classes}"]
        for layer in self.leaf_layers():
            n_params = sum(p.num_elements for p in layer.parameters())
            lines.append(f"  [{layer.layer_index:3d}] {type(layer).__name__:<22s} "
                         f"{layer.name:<32s} params={n_params}")
        lines.append(f"  total parameters: {self.num_parameters()}")
        return "\n".join(lines)
