"""Accuracy metrics used throughout the evaluation.

Classification models report top-1 accuracy; the detection-style YOLO
analogues report a mAP-like score that separately credits recognizing the
object class and localizing its quadrant, mirroring the paper's use of mean
average precision for YOLO/YOLO-Tiny while every other model uses accuracy.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.nn.network import Network


def top1_accuracy(network: Network, inputs: np.ndarray, labels: np.ndarray,
                  batch_size: int = 64) -> float:
    """Fraction of validation samples whose argmax prediction matches the label."""
    if len(inputs) == 0:
        raise ValueError("cannot compute accuracy on an empty set")
    predictions = network.predict(inputs, batch_size=batch_size)
    return float(np.mean(predictions == labels))


def detection_map(network: Network, inputs: np.ndarray, labels: np.ndarray,
                  batch_size: int = 64) -> float:
    """mAP-like score for the synthetic detection task.

    Labels encode ``class * 4 + quadrant``.  A prediction earns full credit
    when both parts match and half credit when only the object class matches
    (detected but mis-localized), which is the coarse analogue of an IoU-based
    partial match in real mAP.
    """
    if len(inputs) == 0:
        raise ValueError("cannot compute mAP on an empty set")
    predictions = network.predict(inputs, batch_size=batch_size)
    exact = predictions == labels
    class_only = (predictions // 4) == (labels // 4)
    score = np.where(exact, 1.0, np.where(class_only, 0.5, 0.0))
    return float(np.mean(score))


#: metric registry keyed by the metric name used in model specs
METRICS: Dict[str, Callable[[Network, np.ndarray, np.ndarray], float]] = {
    "accuracy": top1_accuracy,
    "map": detection_map,
}


def evaluate(network: Network, inputs: np.ndarray, labels: np.ndarray,
             metric: str = "accuracy", batch_size: int = 64) -> float:
    """Evaluate ``network`` with the named metric."""
    if metric not in METRICS:
        raise KeyError(f"unknown metric {metric!r}; expected one of {sorted(METRICS)}")
    return METRICS[metric](network, inputs, labels, batch_size=batch_size)
