"""Layer classes with forward/backward passes and fault-injection hooks.

Every layer that reads weights or IFMs from "memory" routes those reads
through :meth:`Layer.load`.  During EDEN experiments the owning
:class:`~repro.nn.network.Network` installs a fault injector; the injector
sees the numeric array together with its :class:`~repro.nn.tensor.TensorSpec`
and may flip bits, exactly like loads served from an approximate DRAM
partition would.  During plain training and inference no injector is set and
``load`` is the identity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import DataKind, Parameter, TensorSpec, kaiming_normal, xavier_uniform


class Layer:
    """Base class for all layers.

    Subclasses implement :meth:`forward` and :meth:`backward`.  ``forward``
    must stash whatever it needs for ``backward`` on ``self`` (single-sample
    pipelining is sufficient for this reproduction: the training loop always
    calls forward immediately followed by backward).
    """

    def __init__(self, name: str):
        self.name = name
        self.layer_index: int = 0
        self.training: bool = False
        self.injector = None  # installed by Network during fault experiments
        self._ifm_bits: int = 32
        self._weight_bits: int = 32
        #: fused inference kernel installed by a compiled quantized plan
        #: (see repro.engine.quantized).  When set, forward() bypasses the
        #: load hooks entirely — the plan already owns the stored (possibly
        #: corrupted) representation.  Underscore-prefixed and closing over
        #: ndarrays, so plan export strips it from pickled skeletons.
        self._int_kernel = None

    # -- parameter / spec plumbing ------------------------------------------------
    def parameters(self) -> List[Parameter]:
        return []

    def ifm_spec(self, input_shape) -> Optional[TensorSpec]:
        """Spec describing this layer's input feature map (None if the layer
        does not read an IFM that EDEN would map, e.g. flatten)."""
        return TensorSpec(
            name=f"{self.name}.ifm",
            kind=DataKind.IFM,
            shape=tuple(input_shape),
            dtype_bits=self._ifm_bits,
            layer_index=self.layer_index,
        )

    # -- fault injection hook -----------------------------------------------------
    def load(self, array: np.ndarray, spec: TensorSpec) -> np.ndarray:
        """Simulate a load from (possibly approximate) DRAM."""
        if self.injector is None:
            return array
        return self.injector.apply(array, spec)

    def load_param(self, param: Parameter) -> np.ndarray:
        # Weight loads advertise the *weight* storage precision: EDEN maps
        # weights and IFMs to different DRAM partitions (possibly at
        # different precisions), so a weight spec must never inherit the IFM
        # bits the layer happens to read its activations at.
        return self.load(param.data, param.spec(dtype_bits=self._weight_bits))

    def load_ifm(self, x: np.ndarray) -> np.ndarray:
        spec = self.ifm_spec(x.shape)
        if spec is None:
            return x
        return self.load(x, spec)

    # -- interface -----------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def output_shape(self, input_shape):  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class Conv2D(Layer):
    """2D convolution with optional bias."""

    def __init__(self, name, in_channels, out_channels, kernel_size, stride=1,
                 padding=0, bias=True, rng: Optional[np.random.Generator] = None):
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        kh, kw = F._pair(kernel_size)
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = (kh, kw)
        self.stride = F._pair(stride)
        self.padding = F._pair(padding)
        fan_in = in_channels * kh * kw
        self.weight = Parameter(
            name=f"{name}.weight",
            data=kaiming_normal((out_channels, in_channels, kh, kw), fan_in, rng),
            kind=DataKind.WEIGHT,
        )
        self.bias = None
        if bias:
            self.bias = Parameter(
                name=f"{name}.bias",
                data=np.zeros(out_channels, dtype=np.float32),
                kind=DataKind.WEIGHT,
            )
        self._cache = None

    def parameters(self) -> List[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self._int_kernel is not None and not self.training:
            return self._int_kernel(x)
        x = self.load_ifm(x)
        weight = self.load_param(self.weight)
        bias = self.bias.data if self.bias is not None else None
        out, self._cache = F.conv2d_forward(x, weight, bias, self.stride, self.padding)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_in, grad_w, grad_b = F.conv2d_backward(grad_out, self._cache)
        self.weight.accumulate_grad(grad_w)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_b)
        return grad_in

    def output_shape(self, input_shape):
        n, c, h, w = input_shape
        oh = F.conv_output_size(h, self.kernel_size[0], self.stride[0], self.padding[0])
        ow = F.conv_output_size(w, self.kernel_size[1], self.stride[1], self.padding[1])
        return (n, self.out_channels, oh, ow)


class Linear(Layer):
    """Fully connected layer."""

    def __init__(self, name, in_features, out_features, bias=True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(
            name=f"{name}.weight",
            data=xavier_uniform((out_features, in_features), in_features, out_features, rng),
            kind=DataKind.WEIGHT,
        )
        self.bias = None
        if bias:
            self.bias = Parameter(
                name=f"{name}.bias",
                data=np.zeros(out_features, dtype=np.float32),
                kind=DataKind.WEIGHT,
            )
        self._cache = None

    def parameters(self) -> List[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self._int_kernel is not None and not self.training:
            return self._int_kernel(x)
        x = self.load_ifm(x)
        weight = self.load_param(self.weight)
        bias = self.bias.data if self.bias is not None else None
        out, self._cache = F.linear_forward(x, weight, bias)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_in, grad_w, grad_b = F.linear_backward(grad_out, self._cache)
        self.weight.accumulate_grad(grad_w)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_b)
        return grad_in

    def output_shape(self, input_shape):
        return (input_shape[0], self.out_features)


class ReLU(Layer):
    def __init__(self, name):
        super().__init__(name)
        self._mask = None

    def ifm_spec(self, input_shape):
        return None  # activations feeding a ReLU were already loaded by the producer

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self._int_kernel is not None and not self.training:
            return self._int_kernel(x)
        out, self._mask = F.relu_forward(x)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return F.relu_backward(grad_out, self._mask)

    def output_shape(self, input_shape):
        return tuple(input_shape)


class MaxPool2D(Layer):
    def __init__(self, name, kernel_size, stride=None):
        super().__init__(name)
        self.kernel_size = F._pair(kernel_size)
        self.stride = F._pair(stride if stride is not None else kernel_size)
        self._cache = None

    def ifm_spec(self, input_shape):
        return None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self._int_kernel is not None and not self.training:
            return self._int_kernel(x)
        out, self._cache = F.max_pool2d_forward(x, self.kernel_size, self.stride)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return F.max_pool2d_backward(grad_out, self._cache)

    def output_shape(self, input_shape):
        n, c, h, w = input_shape
        oh = F.conv_output_size(h, self.kernel_size[0], self.stride[0], 0)
        ow = F.conv_output_size(w, self.kernel_size[1], self.stride[1], 0)
        return (n, c, oh, ow)


class AvgPool2D(Layer):
    def __init__(self, name, kernel_size, stride=None):
        super().__init__(name)
        self.kernel_size = F._pair(kernel_size)
        self.stride = F._pair(stride if stride is not None else kernel_size)
        self._cache = None

    def ifm_spec(self, input_shape):
        return None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, self._cache = F.avg_pool2d_forward(x, self.kernel_size, self.stride)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return F.avg_pool2d_backward(grad_out, self._cache)

    def output_shape(self, input_shape):
        n, c, h, w = input_shape
        oh = F.conv_output_size(h, self.kernel_size[0], self.stride[0], 0)
        ow = F.conv_output_size(w, self.kernel_size[1], self.stride[1], 0)
        return (n, c, oh, ow)


class GlobalAvgPool(Layer):
    def __init__(self, name):
        super().__init__(name)
        self._shape = None

    def ifm_spec(self, input_shape):
        return None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, self._shape = F.global_avg_pool_forward(x)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return F.global_avg_pool_backward(grad_out, self._shape)

    def output_shape(self, input_shape):
        return (input_shape[0], input_shape[1])


class Flatten(Layer):
    def __init__(self, name):
        super().__init__(name)
        self._shape = None

    def ifm_spec(self, input_shape):
        return None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._shape)

    def output_shape(self, input_shape):
        flat = 1
        for dim in input_shape[1:]:
            flat *= dim
        return (input_shape[0], flat)


class BatchNorm2D(Layer):
    def __init__(self, name, num_features, momentum=0.1, eps=1e-5):
        super().__init__(name)
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = Parameter(
            name=f"{name}.gamma",
            data=np.ones(num_features, dtype=np.float32),
            kind=DataKind.WEIGHT,
        )
        self.beta = Parameter(
            name=f"{name}.beta",
            data=np.zeros(num_features, dtype=np.float32),
            kind=DataKind.WEIGHT,
        )
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)
        self._cache = None

    def parameters(self) -> List[Parameter]:
        return [self.gamma, self.beta]

    def ifm_spec(self, input_shape):
        return None

    def forward(self, x: np.ndarray) -> np.ndarray:
        gamma = self.load_param(self.gamma)
        out, self._cache = F.batchnorm_forward(
            x, gamma, self.beta.data, self.running_mean, self.running_var,
            training=self.training, momentum=self.momentum, eps=self.eps,
        )
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_in, grad_gamma, grad_beta = F.batchnorm_backward(grad_out, self._cache)
        self.gamma.accumulate_grad(grad_gamma)
        self.beta.accumulate_grad(grad_beta)
        return grad_in

    def output_shape(self, input_shape):
        return tuple(input_shape)


class Dropout(Layer):
    """Standard inverted dropout (active only while training)."""

    def __init__(self, name, rate=0.5, rng: Optional[np.random.Generator] = None):
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = rng or np.random.default_rng(0)
        self._mask = None

    def ifm_spec(self, input_shape):
        return None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return (x * self._mask).astype(np.float32)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return (grad_out * self._mask).astype(np.float32)

    def output_shape(self, input_shape):
        return tuple(input_shape)


class Sequential(Layer):
    """A composite layer made of sub-layers applied in order."""

    def __init__(self, name, layers: Sequence[Layer]):
        super().__init__(name)
        self.layers = list(layers)

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def ifm_spec(self, input_shape):
        return None  # sub-layers report their own IFMs

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def output_shape(self, input_shape):
        shape = input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def iter_layers(self):
        for layer in self.layers:
            if isinstance(layer, Sequential):
                yield from layer.iter_layers()
            else:
                yield layer


class ResidualBlock(Layer):
    """Two 3x3 convolutions with a skip connection (ResNet basic block)."""

    def __init__(self, name, in_channels, out_channels, stride=1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        self.body = Sequential(f"{name}.body", [
            Conv2D(f"{name}.conv1", in_channels, out_channels, 3, stride=stride,
                   padding=1, bias=False, rng=rng),
            BatchNorm2D(f"{name}.bn1", out_channels),
            ReLU(f"{name}.relu1"),
            Conv2D(f"{name}.conv2", out_channels, out_channels, 3, stride=1,
                   padding=1, bias=False, rng=rng),
            BatchNorm2D(f"{name}.bn2", out_channels),
        ])
        self.shortcut = None
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(f"{name}.shortcut", [
                Conv2D(f"{name}.downsample", in_channels, out_channels, 1,
                       stride=stride, padding=0, bias=False, rng=rng),
                BatchNorm2D(f"{name}.bn_down", out_channels),
            ])
        self._relu_mask = None

    def parameters(self) -> List[Parameter]:
        params = self.body.parameters()
        if self.shortcut is not None:
            params.extend(self.shortcut.parameters())
        return params

    def ifm_spec(self, input_shape):
        return None

    def forward(self, x: np.ndarray) -> np.ndarray:
        body_out = self.body.forward(x)
        skip = self.shortcut.forward(x) if self.shortcut is not None else x
        summed = body_out + skip
        out, self._relu_mask = F.relu_forward(summed)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_sum = F.relu_backward(grad_out, self._relu_mask)
        grad_body = self.body.backward(grad_sum)
        if self.shortcut is not None:
            grad_skip = self.shortcut.backward(grad_sum)
        else:
            grad_skip = grad_sum
        return grad_body + grad_skip

    def output_shape(self, input_shape):
        return self.body.output_shape(input_shape)

    def iter_layers(self):
        yield from self.body.iter_layers()
        if self.shortcut is not None:
            yield from self.shortcut.iter_layers()


class FireModule(Layer):
    """SqueezeNet fire module: squeeze 1x1 conv, then parallel 1x1/3x3 expands."""

    def __init__(self, name, in_channels, squeeze_channels, expand_channels,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        self.squeeze = Sequential(f"{name}.squeeze", [
            Conv2D(f"{name}.squeeze1x1", in_channels, squeeze_channels, 1, rng=rng),
            ReLU(f"{name}.squeeze_relu"),
        ])
        self.expand1 = Conv2D(f"{name}.expand1x1", squeeze_channels, expand_channels, 1, rng=rng)
        self.expand3 = Conv2D(f"{name}.expand3x3", squeeze_channels, expand_channels, 3,
                              padding=1, rng=rng)
        self._mask1 = None
        self._mask3 = None
        self.out_channels = 2 * expand_channels

    def parameters(self) -> List[Parameter]:
        return self.squeeze.parameters() + self.expand1.parameters() + self.expand3.parameters()

    def ifm_spec(self, input_shape):
        return None

    def forward(self, x: np.ndarray) -> np.ndarray:
        squeezed = self.squeeze.forward(x)
        e1 = self.expand1.forward(squeezed)
        e3 = self.expand3.forward(squeezed)
        e1, self._mask1 = F.relu_forward(e1)
        e3, self._mask3 = F.relu_forward(e3)
        return np.concatenate([e1, e3], axis=1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        half = grad_out.shape[1] // 2
        grad_e1 = F.relu_backward(grad_out[:, :half], self._mask1)
        grad_e3 = F.relu_backward(grad_out[:, half:], self._mask3)
        grad_squeezed = self.expand1.backward(grad_e1) + self.expand3.backward(grad_e3)
        return self.squeeze.backward(grad_squeezed)

    def output_shape(self, input_shape):
        n, _, h, w = input_shape
        return (n, self.out_channels, h, w)

    def iter_layers(self):
        yield from self.squeeze.iter_layers()
        yield self.expand1
        yield self.expand3


class DepthwiseSeparableConv(Layer):
    """MobileNet-style depthwise (grouped per-channel) + pointwise convolution.

    The depthwise stage is implemented as per-channel 2D convolutions; this is
    slow compared to a fused kernel but the scaled-down models keep channel
    counts small enough for the test suite.
    """

    def __init__(self, name, in_channels, out_channels, stride=1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        self.in_channels = int(in_channels)
        self.depthwise = [
            Conv2D(f"{name}.dw{c}", 1, 1, 3, stride=stride, padding=1, bias=False, rng=rng)
            for c in range(in_channels)
        ]
        self.pointwise = Conv2D(f"{name}.pw", in_channels, out_channels, 1, bias=False, rng=rng)
        self.bn = BatchNorm2D(f"{name}.bn", out_channels)
        self._relu_mask = None

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for conv in self.depthwise:
            params.extend(conv.parameters())
        params.extend(self.pointwise.parameters())
        params.extend(self.bn.parameters())
        return params

    def ifm_spec(self, input_shape):
        return None

    def forward(self, x: np.ndarray) -> np.ndarray:
        channels = [
            self.depthwise[c].forward(x[:, c:c + 1]) for c in range(self.in_channels)
        ]
        dw_out = np.concatenate(channels, axis=1)
        out = self.pointwise.forward(dw_out)
        out = self.bn.forward(out)
        out, self._relu_mask = F.relu_forward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = F.relu_backward(grad_out, self._relu_mask)
        grad = self.bn.backward(grad)
        grad_dw = self.pointwise.backward(grad)
        grads = [
            self.depthwise[c].backward(grad_dw[:, c:c + 1])
            for c in range(self.in_channels)
        ]
        return np.concatenate(grads, axis=1)

    def output_shape(self, input_shape):
        shape = input_shape
        dw_shape = self.depthwise[0].output_shape((shape[0], 1, shape[2], shape[3]))
        shape = (shape[0], self.in_channels, dw_shape[2], dw_shape[3])
        return self.bn.output_shape(self.pointwise.output_shape(shape))

    def iter_layers(self):
        yield from self.depthwise
        yield self.pointwise
        yield self.bn


def set_layer_mode(layers: Sequence[Layer], training: bool) -> None:
    """Recursively propagate train/eval mode to composite layers."""
    def assign(layer: Layer) -> None:
        layer.training = training

    _apply_to_layers(layers, assign)


#: composite-layer child attributes, shared by every recursive setter below:
#: lists of sub-layers, single composite children (recursed into), and leaf
#: children that only need the attribute assigned.  A new composite layer
#: only has to be registered here once.
_CHILD_LIST_ATTRS = ("layers", "depthwise")
_CHILD_COMPOSITE_ATTRS = ("body", "shortcut", "squeeze")
_CHILD_LEAF_ATTRS = ("expand1", "expand3", "pointwise", "bn")


def _apply_to_layers(layers: Sequence[Layer], assign) -> None:
    """Apply ``assign(layer)`` to every layer and (recursively) its children."""
    for layer in layers:
        assign(layer)
        for attr in _CHILD_LIST_ATTRS:
            children = getattr(layer, attr, None)
            if children:
                _apply_to_layers(children, assign)
        for attr in _CHILD_COMPOSITE_ATTRS:
            child = getattr(layer, attr, None)
            if isinstance(child, Layer):
                _apply_to_layers([child], assign)
        for attr in _CHILD_LEAF_ATTRS:
            child = getattr(layer, attr, None)
            if isinstance(child, Layer):
                assign(child)


def set_layer_precision(layers: Sequence[Layer], weight_bits: Optional[int] = None,
                        ifm_bits: Optional[int] = None) -> None:
    """Recursively set the storage precision advertised by load specs.

    ``None`` leaves the respective precision unchanged, so weight and IFM
    bits can be set independently (EDEN's fine-grained mapping may store
    them in partitions of different precision).
    """
    def assign(layer: Layer) -> None:
        if weight_bits is not None:
            layer._weight_bits = int(weight_bits)
        if ifm_bits is not None:
            layer._ifm_bits = int(ifm_bits)

    _apply_to_layers(layers, assign)


def set_layer_injector(layers: Sequence[Layer], injector) -> None:
    """Recursively install (or clear, with None) a fault injector."""
    def assign(layer: Layer) -> None:
        layer.injector = injector

    _apply_to_layers(layers, assign)
