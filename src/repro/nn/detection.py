"""Object-detection post-processing: boxes, IoU, NMS, thresholding and mAP.

The paper evaluates two detection networks (YOLO and YOLO-Tiny on MS-COCO,
Table 1) whose quality metric is mean average precision rather than top-1
accuracy, and it attributes their DRAM-latency sensitivity to the arbitrary
indexing performed by the post-processing steps: non-maximum suppression,
confidence thresholding and IoU thresholding (Section 7.1).  This module
implements those steps from scratch so the detection analogues in the model
zoo can be evaluated end to end:

* :class:`Box` arithmetic and :func:`iou`;
* :func:`confidence_threshold`, :func:`non_maximum_suppression`;
* :func:`decode_grid_predictions` — turn a YOLO-style grid output into boxes;
* :func:`average_precision` / :func:`mean_average_precision`;
* :func:`synthetic_detection_dataset` — a deterministic toy detection set used
  by the examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Box:
    """An axis-aligned box in normalized [0, 1] image coordinates."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float
    class_id: int = 0
    score: float = 1.0

    def __post_init__(self) -> None:
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise ValueError("box must have x_max >= x_min and y_max >= y_min")

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        return self.width * self.height

    @classmethod
    def from_center(cls, cx: float, cy: float, width: float, height: float,
                    class_id: int = 0, score: float = 1.0) -> "Box":
        half_w, half_h = width / 2.0, height / 2.0
        return cls(cx - half_w, cy - half_h, cx + half_w, cy + half_h,
                   class_id=class_id, score=score)


def iou(first: Box, second: Box) -> float:
    """Intersection-over-union of two boxes (0 when disjoint)."""
    inter_x_min = max(first.x_min, second.x_min)
    inter_y_min = max(first.y_min, second.y_min)
    inter_x_max = min(first.x_max, second.x_max)
    inter_y_max = min(first.y_max, second.y_max)
    inter_w = max(0.0, inter_x_max - inter_x_min)
    inter_h = max(0.0, inter_y_max - inter_y_min)
    intersection = inter_w * inter_h
    union = first.area + second.area - intersection
    if union <= 0.0:
        return 0.0
    return intersection / union


def confidence_threshold(boxes: Sequence[Box], threshold: float) -> List[Box]:
    """Drop detections whose score is below ``threshold`` (paper's first YOLO step)."""
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be in [0, 1]")
    return [box for box in boxes if box.score >= threshold]


def non_maximum_suppression(boxes: Sequence[Box], iou_threshold: float = 0.5,
                            class_aware: bool = True) -> List[Box]:
    """Greedy NMS: keep the highest-scoring box, drop overlapping lower ones.

    This is the arbitrarily-indexed, data-dependent step that defeats the
    CPU's prefetchers in the paper's analysis; algorithmically it is the
    classic greedy suppression.
    """
    if not 0.0 <= iou_threshold <= 1.0:
        raise ValueError("iou_threshold must be in [0, 1]")
    remaining = sorted(boxes, key=lambda box: box.score, reverse=True)
    kept: List[Box] = []
    while remaining:
        best = remaining.pop(0)
        kept.append(best)
        survivors = []
        for box in remaining:
            if class_aware and box.class_id != best.class_id:
                survivors.append(box)
            elif iou(best, box) <= iou_threshold:
                survivors.append(box)
        remaining = survivors
    return kept


def decode_grid_predictions(grid: np.ndarray, confidence: float = 0.25,
                            num_classes: Optional[int] = None) -> List[Box]:
    """Decode a YOLO-style ``(5 + C, H, W)`` prediction grid into boxes.

    Channel layout per cell: objectness, cx, cy, w, h (all squashed to [0,1]
    via a logistic), followed by ``C`` class logits.  Cell offsets are added
    to the center so each cell predicts a box near itself.
    """
    if grid.ndim != 3 or grid.shape[0] < 5:
        raise ValueError("grid must have shape (5 + num_classes, H, W)")
    channels, height, width = grid.shape
    num_classes = num_classes if num_classes is not None else channels - 5

    def sigmoid(x):
        # Bit errors in the prediction grid can produce NaN/inf logits; treat
        # them as saturated values rather than letting NaN poison the decode.
        x = np.nan_to_num(x, nan=0.0, posinf=30.0, neginf=-30.0)
        return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))

    boxes: List[Box] = []
    for row in range(height):
        for col in range(width):
            objectness = float(sigmoid(grid[0, row, col]))
            if objectness < confidence:
                continue
            cx = (col + float(sigmoid(grid[1, row, col]))) / width
            cy = (row + float(sigmoid(grid[2, row, col]))) / height
            box_w = float(sigmoid(grid[3, row, col]))
            box_h = float(sigmoid(grid[4, row, col]))
            if num_classes > 0:
                class_scores = grid[5:5 + num_classes, row, col]
                class_id = int(np.argmax(class_scores))
            else:
                class_id = 0
            boxes.append(Box.from_center(cx, cy, max(box_w, 1e-3), max(box_h, 1e-3),
                                         class_id=class_id, score=objectness))
    return boxes


def average_precision(predictions: Sequence[Box], ground_truth: Sequence[Box],
                      iou_threshold: float = 0.5) -> float:
    """11-point-interpolated average precision for one class on one image set."""
    if not ground_truth:
        return 0.0 if predictions else 1.0
    ordered = sorted(predictions, key=lambda box: box.score, reverse=True)
    matched = [False] * len(ground_truth)
    true_positive = np.zeros(len(ordered))
    false_positive = np.zeros(len(ordered))
    for index, prediction in enumerate(ordered):
        best_iou, best_gt = 0.0, -1
        for gt_index, gt_box in enumerate(ground_truth):
            overlap = iou(prediction, gt_box)
            if overlap > best_iou:
                best_iou, best_gt = overlap, gt_index
        if best_iou >= iou_threshold and best_gt >= 0 and not matched[best_gt]:
            true_positive[index] = 1
            matched[best_gt] = True
        else:
            false_positive[index] = 1
    cum_tp = np.cumsum(true_positive)
    cum_fp = np.cumsum(false_positive)
    recall = cum_tp / len(ground_truth)
    precision = cum_tp / np.maximum(cum_tp + cum_fp, 1e-9)
    ap = 0.0
    for level in np.linspace(0.0, 1.0, 11):
        above = precision[recall >= level]
        ap += float(above.max()) if above.size else 0.0
    return ap / 11.0


def mean_average_precision(predictions_per_image: Sequence[Sequence[Box]],
                           ground_truth_per_image: Sequence[Sequence[Box]],
                           iou_threshold: float = 0.5) -> float:
    """mAP across classes, pooling detections image by image."""
    if len(predictions_per_image) != len(ground_truth_per_image):
        raise ValueError("predictions and ground truth must cover the same images")
    class_ids = {box.class_id
                 for image in ground_truth_per_image for box in image}
    if not class_ids:
        return 0.0
    per_class: List[float] = []
    for class_id in sorted(class_ids):
        aps = []
        for predictions, truths in zip(predictions_per_image, ground_truth_per_image):
            class_truths = [box for box in truths if box.class_id == class_id]
            class_predictions = [box for box in predictions if box.class_id == class_id]
            if not class_truths and not class_predictions:
                continue
            aps.append(average_precision(class_predictions, class_truths, iou_threshold))
        per_class.append(float(np.mean(aps)) if aps else 0.0)
    return float(np.mean(per_class))


def synthetic_detection_dataset(num_images: int = 16, grid_size: int = 8,
                                num_classes: int = 3, max_objects: int = 3,
                                seed: int = 0) -> Tuple[np.ndarray, List[List[Box]]]:
    """A deterministic toy detection dataset.

    Each image is a ``grid_size x grid_size`` single-channel canvas with up to
    ``max_objects`` bright rectangles; the ground truth is the list of their
    bounding boxes.  The images are small enough that the in-repo detection
    analogues can be trained and evaluated in seconds.
    """
    if num_images <= 0 or grid_size <= 1 or num_classes <= 0 or max_objects <= 0:
        raise ValueError("dataset parameters must be positive (grid_size > 1)")
    rng = np.random.default_rng(seed)
    images = np.zeros((num_images, 1, grid_size, grid_size), dtype=np.float32)
    annotations: List[List[Box]] = []
    for image_index in range(num_images):
        boxes: List[Box] = []
        for _ in range(int(rng.integers(1, max_objects + 1))):
            x0, y0 = rng.integers(0, grid_size - 1, size=2)
            w = int(rng.integers(1, max(2, grid_size // 2)))
            h = int(rng.integers(1, max(2, grid_size // 2)))
            x1, y1 = min(grid_size, x0 + w), min(grid_size, y0 + h)
            class_id = int(rng.integers(0, num_classes))
            intensity = 0.5 + 0.5 * (class_id + 1) / num_classes
            images[image_index, 0, y0:y1, x0:x1] = intensity
            boxes.append(Box(x0 / grid_size, y0 / grid_size, x1 / grid_size,
                             y1 / grid_size, class_id=class_id))
        annotations.append(boxes)
    return images, annotations


def detection_memory_accesses(num_boxes: int, kept_fraction: float = 0.3) -> int:
    """Rough count of the data-dependent accesses NMS performs on ``num_boxes``.

    Greedy NMS touches every surviving candidate once per kept box; the paper
    uses this irregular access pattern to explain why the YOLO family benefits
    from reduced DRAM latency on CPUs.  The estimate is used by the trace
    generator's random-access fraction for detection workloads.
    """
    if num_boxes < 0 or not 0.0 <= kept_fraction <= 1.0:
        raise ValueError("invalid NMS access estimate parameters")
    kept = int(num_boxes * kept_fraction)
    return kept * max(num_boxes - kept, 0) + num_boxes
