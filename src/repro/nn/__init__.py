"""From-scratch numpy DNN substrate used by the EDEN reproduction.

The paper injects DRAM bit errors into three DNN data types (weights, input
feature maps, output feature maps) while running inference and retraining.
This package provides everything needed for that: tensors tagged with their
data type, layers with forward and backward passes, a training loop,
quantization, pruning, a model zoo of scaled-down architectural analogues of
the paper's networks, and synthetic datasets that train in seconds on CPU.
"""

from repro.nn.tensor import DataKind, Parameter, TensorSpec
from repro.nn.network import Network
from repro.nn.training import Trainer, TrainingConfig
from repro.nn.quantization import QuantizationSpec, quantize_network
from repro.nn.models import ModelSpec, build_model, list_models
from repro.nn.datasets import Dataset, make_classification_dataset
from repro.nn.metrics import top1_accuracy

__all__ = [
    "DataKind",
    "Parameter",
    "TensorSpec",
    "Network",
    "Trainer",
    "TrainingConfig",
    "QuantizationSpec",
    "quantize_network",
    "ModelSpec",
    "build_model",
    "list_models",
    "Dataset",
    "make_classification_dataset",
    "top1_accuracy",
]
