"""Tensor containers tagged with the DNN data types EDEN reasons about.

EDEN distinguishes three data types per layer: the layer weights, its input
feature maps (IFMs) and its output feature maps (OFMs).  Error injection,
error-tolerance characterization and the DNN-to-DRAM mapping all operate on
these named data types, so every parameter and activation in this framework
carries a :class:`DataKind` and a stable name (e.g. ``"conv1.weight"``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np


class DataKind(enum.Enum):
    """The three DNN data types that EDEN maps onto DRAM partitions."""

    WEIGHT = "weight"
    IFM = "ifm"
    OFM = "ofm"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TensorSpec:
    """Static description of one DNN data type instance.

    EDEN's fine-grained characterization and Algorithm-1 mapping need, for
    every weight tensor and IFM, its identity (name), its kind, its size in
    bytes at the chosen numeric precision and the layer depth it belongs to
    (the paper observes first/last layers tolerate fewer errors).
    """

    name: str
    kind: DataKind
    shape: tuple
    dtype_bits: int
    layer_index: int

    @property
    def num_elements(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count

    @property
    def size_bits(self) -> int:
        return self.num_elements * self.dtype_bits

    @property
    def size_bytes(self) -> int:
        return (self.size_bits + 7) // 8

    def with_bits(self, dtype_bits: int) -> "TensorSpec":
        """Return a copy of this spec at a different numeric precision."""
        return TensorSpec(
            name=self.name,
            kind=self.kind,
            shape=self.shape,
            dtype_bits=dtype_bits,
            layer_index=self.layer_index,
        )


@dataclass
class Parameter:
    """A trainable tensor together with its gradient and accumulated state.

    Parameters know their own name and kind so the fault-injection hooks can
    decide, per load, which DRAM partition (and therefore which bit error
    rate) applies to them.
    """

    name: str
    data: np.ndarray
    kind: DataKind = DataKind.WEIGHT
    trainable: bool = True
    grad: Optional[np.ndarray] = None
    layer_index: int = 0
    momentum_buffer: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.float32)

    @property
    def shape(self) -> tuple:
        return tuple(self.data.shape)

    @property
    def num_elements(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=np.float32)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"{self.name!r} shape {self.data.shape}"
            )
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def spec(self, dtype_bits: int = 32) -> TensorSpec:
        return TensorSpec(
            name=self.name,
            kind=self.kind,
            shape=self.shape,
            dtype_bits=dtype_bits,
            layer_index=self.layer_index,
        )

    def copy(self) -> "Parameter":
        clone = Parameter(
            name=self.name,
            data=self.data.copy(),
            kind=self.kind,
            trainable=self.trainable,
            layer_index=self.layer_index,
        )
        return clone


def xavier_uniform(shape: tuple, fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Xavier/Glorot uniform initialization, the default for conv/linear layers."""
    limit = float(np.sqrt(6.0 / max(fan_in + fan_out, 1)))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def kaiming_normal(shape: tuple, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """Kaiming/He normal initialization, used for ReLU-heavy stacks."""
    std = float(np.sqrt(2.0 / max(fan_in, 1)))
    return (rng.standard_normal(size=shape) * std).astype(np.float32)
