"""Synthetic datasets standing in for CIFAR-10 / ImageNet / MS-COCO.

The paper's datasets cannot be redistributed and full-size training is far
outside a CPU-only test budget, so we generate deterministic synthetic tasks
that keep the properties EDEN's evaluation relies on:

* images are multi-channel 2D arrays with spatially-structured class signal
  (each class is a distinct low-frequency template plus noise), so
  convolutional models genuinely out-learn linear ones and accuracy degrades
  smoothly as bit errors corrupt weights/IFMs;
* a held-out validation split is used for error-tolerance characterization,
  mirroring the paper's use of the validation set; and
* a small detection-style dataset (class + coarse localization quadrant)
  stands in for MS-COCO so the YOLO analogues exercise a different output
  head and loss from plain classification.

Every generator is seeded; the same call always returns the same arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np


@dataclass
class Dataset:
    """A train/validation split of (inputs, labels)."""

    name: str
    train_x: np.ndarray
    train_y: np.ndarray
    val_x: np.ndarray
    val_y: np.ndarray
    num_classes: int

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return tuple(self.train_x.shape[1:])

    def __post_init__(self) -> None:
        if len(self.train_x) != len(self.train_y):
            raise ValueError("training inputs and labels have different lengths")
        if len(self.val_x) != len(self.val_y):
            raise ValueError("validation inputs and labels have different lengths")

    def batches(self, batch_size: int, rng: np.random.Generator = None,
                shuffle: bool = True) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Iterate one epoch of training batches."""
        indices = np.arange(len(self.train_x))
        if shuffle:
            rng = rng or np.random.default_rng(0)
            rng.shuffle(indices)
        for start in range(0, len(indices), batch_size):
            batch = indices[start:start + batch_size]
            yield self.train_x[batch], self.train_y[batch]

    def subsample_validation(self, fraction: float, seed: int = 0) -> "Dataset":
        """Return a copy whose validation split is a random subsample.

        EDEN's fine-grained characterization samples 10% of the validation set
        per inference run to keep the sweep tractable (Section 6.6).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        rng = np.random.default_rng(seed)
        count = max(1, int(round(len(self.val_x) * fraction)))
        chosen = rng.choice(len(self.val_x), size=count, replace=False)
        return Dataset(
            name=f"{self.name}-val{fraction:g}",
            train_x=self.train_x,
            train_y=self.train_y,
            val_x=self.val_x[chosen],
            val_y=self.val_y[chosen],
            num_classes=self.num_classes,
        )


def _class_templates(num_classes: int, channels: int, size: int,
                     rng: np.random.Generator) -> np.ndarray:
    """Low-frequency per-class templates: smooth random fields per channel."""
    coarse = rng.standard_normal((num_classes, channels, 4, 4))
    templates = np.empty((num_classes, channels, size, size), dtype=np.float32)
    # Bilinear-ish upsampling via repeated kron + smoothing keeps the signal
    # low-frequency, so conv layers with small kernels can pick it up.
    for c in range(num_classes):
        for ch in range(channels):
            up = np.kron(coarse[c, ch], np.ones((size // 4 + 1, size // 4 + 1)))
            up = up[:size, :size]
            smoothed = (
                up
                + np.roll(up, 1, axis=0) + np.roll(up, -1, axis=0)
                + np.roll(up, 1, axis=1) + np.roll(up, -1, axis=1)
            ) / 5.0
            templates[c, ch] = smoothed
    # Normalize template energy so classes are equally separable.
    templates /= np.sqrt(np.mean(templates ** 2, axis=(1, 2, 3), keepdims=True))
    return templates.astype(np.float32)


def make_classification_dataset(name: str = "synthetic-cifar",
                                num_classes: int = 10,
                                channels: int = 3,
                                size: int = 16,
                                train_samples: int = 640,
                                val_samples: int = 256,
                                noise: float = 1.5,
                                seed: int = 7) -> Dataset:
    """Synthetic CIFAR-10 stand-in: class template + Gaussian noise images."""
    if num_classes < 2:
        raise ValueError("need at least two classes")
    rng = np.random.default_rng(seed)
    templates = _class_templates(num_classes, channels, size, rng)

    def _split(count: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        images = templates[labels] + noise * rng.standard_normal(
            (count, channels, size, size)
        ).astype(np.float32)
        return images.astype(np.float32), labels.astype(np.int64)

    train_x, train_y = _split(train_samples)
    val_x, val_y = _split(val_samples)
    return Dataset(name, train_x, train_y, val_x, val_y, num_classes)


def make_imagenet_like_dataset(name: str = "synthetic-imagenet",
                               num_classes: int = 20,
                               seed: int = 11) -> Dataset:
    """Larger-class-count stand-in for ILSVRC2012 (still small spatially)."""
    return make_classification_dataset(
        name=name, num_classes=num_classes, channels=3, size=16,
        train_samples=800, val_samples=320, noise=1.0, seed=seed,
    )


def make_detection_dataset(name: str = "synthetic-coco",
                           num_object_classes: int = 5,
                           seed: int = 13) -> Dataset:
    """Detection stand-in for MS-COCO used by the YOLO analogues.

    Each image contains one object template placed in one of four quadrants;
    the label encodes ``class * 4 + quadrant``, so a correct prediction
    requires both recognition and coarse localization.  The mAP-like metric in
    :mod:`repro.nn.metrics` scores these jointly.
    """
    rng = np.random.default_rng(seed)
    channels, size = 3, 16
    half = size // 2
    templates = _class_templates(num_object_classes, channels, half, rng)
    num_classes = num_object_classes * 4

    def _split(count: int) -> Tuple[np.ndarray, np.ndarray]:
        images = 0.5 * rng.standard_normal((count, channels, size, size)).astype(np.float32)
        labels = np.empty(count, dtype=np.int64)
        for i in range(count):
            cls = int(rng.integers(0, num_object_classes))
            quadrant = int(rng.integers(0, 4))
            row, col = divmod(quadrant, 2)
            images[i, :, row * half:(row + 1) * half, col * half:(col + 1) * half] += templates[cls]
            labels[i] = cls * 4 + quadrant
        return images, labels

    train_x, train_y = _split(640)
    val_x, val_y = _split(256)
    return Dataset(name, train_x, train_y, val_x, val_y, num_classes)


#: registry mapping the paper's dataset names onto the synthetic generators
DATASET_BUILDERS = {
    "cifar10": make_classification_dataset,
    "ilsvrc2012": make_imagenet_like_dataset,
    "mscoco": make_detection_dataset,
}


def load_dataset(paper_name: str, seed: int = 7) -> Dataset:
    """Build the synthetic stand-in for one of the paper's dataset names."""
    key = paper_name.lower()
    if key not in DATASET_BUILDERS:
        raise KeyError(f"unknown dataset {paper_name!r}; expected one of {sorted(DATASET_BUILDERS)}")
    return DATASET_BUILDERS[key](seed=seed)
