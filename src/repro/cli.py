"""Command-line interface to the EDEN reproduction.

Run with ``python -m repro.cli <command>`` (or the ``eden-repro`` console
script).  Every command wraps a public library entry point with small default
budgets so a laptop-class CPU finishes in seconds to a couple of minutes; the
benchmark harness under ``benchmarks/`` regenerates the paper's tables and
figures with the full settings.

Commands
--------
list-models        the model zoo and its footprints (paper Table 1)
profile-dram       sweep VDD / tRCD on a simulated module and report BERs (Fig. 5)
fit-error-model    profile a device and fit/select EDEN's error models (Sec. 4)
characterize       coarse-grained max tolerable BER of one model (Table 3)
boost              run the full EDEN pipeline on one model (Sec. 3)
evaluate-cpu       DRAM energy savings / speedup on the CPU platform (Figs. 13-14)
evaluate-accel     DRAM energy savings on Eyeriss / TPU (Sec. 7.2)
memsys             cycle-level memory-controller run at nominal vs reduced tRCD/VDD
bench              inference-engine throughput: static-store vs per-read semantics
parallel-bench     shared-memory executor: serial vs N-worker sweeps, bit-identity
serve-bench        serving gateway: micro-batched vs batch-1 serial, registry, telemetry
serve              HTTP/JSON inference server with admission control (Ctrl-C drains)
loadgen            deterministic traffic scenarios against a serve URL (or self-hosted)
ecc-sweep          raw vs ECC-corrected accuracy over a BER grid, with decode counts
perf               performance history: trend report, CI gate check, run listing
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.reporting import format_table


# ---------------------------------------------------------------------------------
# command implementations
# ---------------------------------------------------------------------------------

def cmd_list_models(args: argparse.Namespace) -> int:
    from repro.analysis.tables import table1_model_zoo

    rows = table1_model_zoo()
    headers = list(rows[0].keys()) if rows else []
    print(format_table(headers, [[row[h] for h in headers] for row in rows],
                       title="Model zoo (paper Table 1 analogues)"))
    return 0


def cmd_profile_dram(args: argparse.Namespace) -> int:
    from repro.dram.device import ApproximateDram
    from repro.dram.profiler import SoftMCProfiler

    device = ApproximateDram(vendor=args.vendor, seed=args.seed)
    profiler = SoftMCProfiler(device, rows_to_profile=args.rows, trials=args.trials,
                              seed=args.seed)
    voltages = [round(device.nominal_vdd - 0.05 * step, 3) for step in range(args.points)]
    trcds = [round(device.nominal_timing.trcd_ns - 1.5 * step, 2)
             for step in range(args.points) if device.nominal_timing.trcd_ns - 1.5 * step > 1.0]
    voltage_rows = [(vdd, profile.overall_ber())
                    for vdd, profile in profiler.sweep_voltage(voltages).items()]
    trcd_rows = [(trcd, profile.overall_ber())
                 for trcd, profile in profiler.sweep_trcd(trcds).items()]
    print(format_table(["VDD (V)", "BER"], voltage_rows,
                       title=f"Vendor {args.vendor}: BER vs supply voltage",
                       float_format="{:.3e}"))
    print()
    print(format_table(["tRCD (ns)", "BER"], trcd_rows,
                       title=f"Vendor {args.vendor}: BER vs tRCD",
                       float_format="{:.3e}"))
    return 0


def cmd_fit_error_model(args: argparse.Namespace) -> int:
    from repro.dram.device import ApproximateDram, DramOperatingPoint
    from repro.dram.fitting import fit_error_models, select_error_model
    from repro.dram.profiler import SoftMCProfiler

    device = ApproximateDram(vendor=args.vendor, seed=args.seed)
    op_point = DramOperatingPoint.from_reductions(
        delta_vdd=args.delta_vdd, delta_trcd_ns=args.delta_trcd,
        nominal_vdd=device.nominal_vdd, nominal_timing=device.nominal_timing)
    profile = SoftMCProfiler(device, rows_to_profile=args.rows, trials=args.trials,
                             seed=args.seed).profile(op_point)
    fitted = fit_error_models(profile, seed=args.seed)
    selected = select_error_model(profile, seed=args.seed)
    rows = [(f.model_id, type(f.model).__name__, f.log_likelihood) for f in fitted]
    print(format_table(["Error model", "Class", "Log-likelihood"], rows,
                       title=f"Vendor {args.vendor} at {op_point.describe()}",
                       float_format="{:.1f}"))
    print(f"\nSelected: Error Model {selected.model_id} "
          f"({type(selected.model).__name__}), observed BER {profile.overall_ber():.2e}")
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    from repro.analysis.tables import table3_coarse_characterization

    rows = table3_coarse_characterization(models=[args.model], epochs=args.epochs,
                                          processes=args.processes)
    headers = list(rows[0].keys()) if rows else []
    print(format_table(headers, [[row[h] for h in headers] for row in rows],
                       title="Coarse-grained characterization (paper Table 3)"))
    return 0


def cmd_boost(args: argparse.Namespace) -> int:
    from repro.core.config import AccuracyTarget, EdenConfig
    from repro.core.pipeline import Eden
    from repro.dram.device import ApproximateDram, DramOperatingPoint
    from repro.nn.models import build_model_with_dataset
    from repro.nn.training import Trainer

    network, dataset, spec = build_model_with_dataset(args.model, seed=args.seed)
    Trainer(network, dataset, spec.training_config(epochs=args.epochs)).fit()
    device = ApproximateDram(vendor=args.vendor, seed=args.seed)
    op_point = DramOperatingPoint.from_reductions(
        delta_vdd=args.delta_vdd, delta_trcd_ns=args.delta_trcd,
        nominal_vdd=device.nominal_vdd, nominal_timing=device.nominal_timing)
    target = (AccuracyTarget.no_degradation() if args.no_degradation
              else AccuracyTarget.within_one_percent())
    eden = Eden(accuracy_target=target,
                config=EdenConfig(retrain_epochs=args.epochs, seed=args.seed))
    result = eden.run(network, dataset, device, op_point=op_point)
    print(result.summary())
    return 0


def cmd_evaluate_cpu(args: argparse.Namespace) -> int:
    from repro.analysis.figures import fig13_fig14_cpu

    results = fig13_fig14_cpu(precisions=tuple(args.precisions))
    rows = []
    for model, per_precision in results.items():
        for bits, metrics in per_precision.items():
            rows.append((model, f"int{bits}" if bits != 32 else "FP32",
                         f"{metrics['energy_reduction'] * 100:.1f}%",
                         f"{metrics['speedup']:.3f}",
                         f"{metrics['ideal_trcd_speedup']:.3f}"))
    print(format_table(
        ["Model", "Precision", "DRAM energy reduction", "Speedup", "Ideal (tRCD=0)"],
        rows, title="CPU platform (paper Figures 13-14)"))
    return 0


def cmd_evaluate_accel(args: argparse.Namespace) -> int:
    from repro.analysis.figures import sec72_accelerators

    results = sec72_accelerators()
    rows = []
    for accelerator, per_memory in results.items():
        for memory_type, per_model in per_memory.items():
            for model, metrics in per_model.items():
                rows.append((accelerator, memory_type, model,
                             f"{metrics['energy_reduction'] * 100:.1f}%",
                             f"{metrics['speedup']:.3f}"))
    print(format_table(
        ["Accelerator", "Memory", "Model", "DRAM energy reduction", "Speedup"],
        rows, title="Accelerator platforms (paper Section 7.2)"))
    return 0


def cmd_memsys(args: argparse.Namespace) -> int:
    from repro.arch.traffic import workload_for
    from repro.memsys import (
        CacheHierarchy, CommandEnergyModel, ControllerConfig, MemoryRequest,
        run_trace, trace_from_workload,
    )

    workload = workload_for(args.model, bits=args.bits)
    accesses = trace_from_workload(workload, max_accesses=args.max_accesses, seed=args.seed)
    hierarchy = CacheHierarchy(cycles_per_access=4.0)
    filtered = hierarchy.filter_trace(accesses)

    config = ControllerConfig()
    nominal = run_trace([MemoryRequest(r.address, r.type, r.arrival_cycle)
                         for r in filtered.dram_requests], config)
    reduced_config = config.with_timing(config.timing.with_reduced_trcd(args.delta_trcd))
    reduced = run_trace([MemoryRequest(r.address, r.type, r.arrival_cycle)
                         for r in filtered.dram_requests], reduced_config)

    energy = CommandEnergyModel("DDR4-2133")
    nominal_energy = energy.energy_of_run(nominal).total_nj
    reduced_energy = energy.energy_of_run(reduced, vdd=1.35 - args.delta_vdd).total_nj
    rows = [
        ("requests", nominal.stats.requests, reduced.stats.requests),
        ("row-buffer hit rate", f"{nominal.stats.row_hit_rate:.3f}",
         f"{reduced.stats.row_hit_rate:.3f}"),
        ("avg read latency (cycles)", f"{nominal.stats.average_read_latency:.1f}",
         f"{reduced.stats.average_read_latency:.1f}"),
        ("total cycles", nominal.total_cycles, reduced.total_cycles),
        ("DRAM energy (uJ)", f"{nominal_energy / 1e3:.2f}", f"{reduced_energy / 1e3:.2f}"),
    ]
    print(format_table(["metric", "nominal", "reduced"], rows,
                       title=(f"{workload.name} ({args.bits}-bit): cycle-level memory system, "
                              f"dVDD={args.delta_vdd}V dtRCD={args.delta_trcd}ns")))
    return 0


def cmd_ecc_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.runner import ExperimentRunner
    from repro.dram.error_models import make_error_model
    from repro.engine.session import ReadSemantics
    from repro.nn.models import build_model_with_dataset
    from repro.nn.training import Trainer

    network, dataset, spec = build_model_with_dataset(args.model, seed=args.seed)
    Trainer(network, dataset, spec.training_config(epochs=args.epochs)).fit()
    bers = sorted(args.bers)
    error_model = make_error_model(args.error_model, bers[0], seed=args.seed)
    with ExperimentRunner(network, dataset, metric=spec.metric, seed=args.seed,
                          semantics=ReadSemantics.STATIC_STORE) as runner:
        sweep = runner.ecc_sweep(error_model, bers, bits=args.bits,
                                 correction=args.correction)
    rows = [(f"{ber:.1e}", f"{point['raw']:.3f}", f"{point['corrected']:.3f}",
             int(point["corrected_codewords"]),
             int(point["uncorrectable_codewords"]))
            for ber, point in sweep.items()]
    print(format_table(
        ["BER", "raw", "corrected", "corrected cw", "uncorrectable cw"],
        rows,
        title=(f"{args.model}: Error Model {args.error_model} weight store, "
               f"{args.correction} correction in the loop")))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.engine.bench import (
        measure_characterization_sweep,
        measure_inference_throughput,
        measure_quantized_throughput,
    )

    rows = measure_inference_throughput(
        args.model, ber=args.ber, batch_sizes=tuple(args.batch_sizes),
        seed=args.seed,
    )
    print(format_table(
        ["batch", "nominal img/s", "static-store img/s", "per-read img/s",
         "static/per-read"],
        [(r["batch_size"], f"{r['nominal_images_per_sec']:.0f}",
          f"{r['static_store_images_per_sec']:.0f}",
          f"{r['per_read_images_per_sec']:.0f}",
          f"{r['semantics_speedup']:.2f}x") for r in rows],
        title=(f"{args.model}: inference throughput at BER {args.ber:g} "
               "(weights in approximate DRAM)"),
    ))
    if args.dtype != "fp32":
        record = measure_quantized_throughput(
            args.model, ber=args.ber, dtype=args.dtype, seed=args.seed)
        print()
        print(format_table(
            ["execution path", "rows/s"],
            [("fp32 static store", f"{record['fp32_rows_per_sec']:.0f}"),
             (f"{args.dtype} fused integer plan",
              f"{record['quantized_rows_per_sec']:.0f}"),
             ("speedup", f"{record['speedup']:.2f}x")],
            title=(f"{args.model}: {record['pad_to']}-row serving dispatches, "
                   f"{args.dtype} store at BER {args.ber:g}"),
        ))
    if args.sweep:
        sweep = measure_characterization_sweep(
            args.model, batch_size=args.sweep_batch_size, seed=args.seed,
        )
        print()
        print(format_table(
            ["semantics", "sweep seconds"],
            [("per-read (legacy)", f"{sweep['per_read_seconds']:.2f}"),
             ("static-store", f"{sweep['static_store_seconds']:.2f}"),
             ("speedup", f"{sweep['speedup']:.1f}x")],
            title=f"weight-store BER sweep over {sweep['bers']}",
        ))
    return 0


def cmd_parallel_bench(args: argparse.Namespace) -> int:
    from repro.parallel.bench import measure_parallel

    record = measure_parallel(args.model, processes=args.processes,
                              epochs=args.epochs, seed=args.seed)
    rows = [
        ("characterization sweep",
         f"{record['characterization_sweep_serial_seconds']:.2f}",
         f"{record['characterization_sweep_parallel_seconds']:.2f}",
         record["characterization_sweep_identical"]),
        ("device sweep",
         f"{record['device_sweep_serial_seconds']:.2f}",
         f"{record['device_sweep_parallel_seconds']:.2f}",
         record["device_sweep_identical"]),
        ("coarse characterization",
         f"{record['coarse_characterization_serial_seconds']:.2f}",
         f"{record['coarse_characterization_parallel_seconds']:.2f}",
         record["coarse_characterization_identical"]),
    ]
    print(format_table(
        ["experiment", "serial (s)", f"{record['processes']} workers (s)",
         "bit-identical"],
        rows,
        title=(f"{args.model}: shared-memory executor vs serial "
               f"({record['cpu_count']} CPUs visible)")))
    print(f"\ncharacterization sweep speedup: "
          f"{record['characterization_sweep_speedup']:.2f}x")
    print(f"multi-process serving bit-identical: {record['serving_identical']}")
    identical = (record["characterization_sweep_identical"]
                 and record["device_sweep_identical"]
                 and record["coarse_characterization_identical"]
                 and record["serving_identical"])
    return 0 if identical else 1


def cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import format_serving_report
    from repro.serve.bench import measure_serving

    record = measure_serving(args.model, ber=args.ber,
                             n_requests=args.requests,
                             max_batch=args.max_batch,
                             client_threads=args.client_threads,
                             seed=args.seed, dtype=args.dtype)
    print(format_table(
        ["serving mode", "seconds", "req/s"],
        [("batch-1 serial", f"{record['serial_batch1_seconds']:.3f}",
          f"{record['serial_rps']:.0f}"),
         (f"micro-batched (≤{record['max_batch']})",
          f"{record['microbatched_seconds']:.3f}",
          f"{record['microbatched_rps']:.0f}"),
         (f"async ({record['client_threads']} client threads)",
          f"{record['async_seconds']:.3f}", f"{record['async_rps']:.0f}")],
        title=(f"{args.model}: {record['n_requests']} single-sample requests, "
               f"{args.dtype} weight store at BER {args.ber:g}")))
    print(f"\nmicro-batch speedup over batch-1 serial: "
          f"{record['microbatch_speedup']:.2f}x")
    print(f"batched == serial (bit-identical)      : {record['bit_identical']}")
    print(f"registry compile: cold {record['cold_register_seconds'] * 1e3:.1f} ms, "
          f"warm (cache hit) {record['warm_register_seconds'] * 1e3:.2f} ms")
    print()
    print(format_serving_report(record["telemetry"]))
    return 0 if record["bit_identical"] else 1


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.bench import build_serving_gateway
    from repro.serve.server import InferenceServer, ServerConfig

    gateway, _session, _dataset = build_serving_gateway(
        args.model, ber=args.ber, seed=args.seed, epochs=args.epochs,
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
        dtype=args.dtype)
    server = InferenceServer(gateway, ServerConfig(
        host=args.host, port=args.port, max_queue_depth=args.queue_depth,
        default_deadline_ms=args.deadline_ms))

    async def main() -> None:
        await server.start()
        print(f"serving {args.model!r} on {server.base_url} "
              f"(queue depth {args.queue_depth}, Ctrl-C drains)")
        print(f"  curl {server.base_url}/healthz")
        print(f"  curl {server.base_url}/metrics")
        print(f"  curl -X POST {server.base_url}/v1/models/{args.model}:predict"
              f" -d '{{\"sample\": ...}}'")
        try:
            await asyncio.Event().wait()
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("\ndrained and stopped")
    finally:
        gateway.close()
    return 0


def cmd_route(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.bench import build_serving_gateway
    from repro.serve.gateway import ServeConfig
    from repro.serve.replica import ReplicaManager
    from repro.serve.router import RouterConfig, RouterServer
    from repro.serve.server import ServerConfig

    gateway, session, _dataset = build_serving_gateway(
        args.model, ber=args.ber, seed=args.seed, epochs=args.epochs,
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
        dtype=args.dtype)
    manager = ReplicaManager(
        {args.model: session},
        serve_config=ServeConfig(max_batch=args.max_batch,
                                 max_wait_ms=args.max_wait_ms),
        server_config=ServerConfig(max_queue_depth=args.queue_depth,
                                   default_deadline_ms=args.deadline_ms))
    try:
        replicas = manager.spawn_many(args.replicas)
    except RuntimeError as error:
        print(f"failed to spawn replicas: {error}", file=sys.stderr)
        manager.close()
        gateway.close()
        return 1
    router = RouterServer(list(replicas) + list(args.replica_url or []),
                          manager,
                          RouterConfig(host=args.host, port=args.port))

    async def main() -> None:
        await router.start()
        print(f"routing {args.model!r} on {router.base_url} across "
              f"{len(replicas)} local replica(s)"
              + (f" + {len(args.replica_url)} remote"
                 if args.replica_url else "")
              + " (Ctrl-C drains)")
        for replica in replicas:
            print(f"  {replica.name}: {replica.url}")
        print(f"  curl {router.base_url}/healthz")
        print(f"  curl {router.base_url}/metrics")
        print(f"  curl -X POST {router.base_url}/v1/models/{args.model}:predict"
              f" -d '{{\"sample\": ...}}'")
        try:
            await asyncio.Event().wait()
        finally:
            await router.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("\ndrained and stopped")
    finally:
        manager.close()
        gateway.close()
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.serve import loadgen
    from repro.serve.bench import build_serving_gateway, request_set

    handle = None
    gateway = session = None
    if args.url:
        base_url, endpoint = args.url, (args.endpoint or args.model)
    else:
        from repro.serve.server import ServerConfig, serve_in_thread

        gateway, session, dataset = build_serving_gateway(
            args.model, ber=args.ber, seed=args.seed,
            max_batch=args.max_batch, max_wait_ms=args.max_wait_ms)
        handle = serve_in_thread(gateway, ServerConfig(
            max_queue_depth=args.queue_depth))
        base_url, endpoint = handle.base_url, args.model

    target = loadgen.HttpTarget(base_url)
    try:
        if handle is not None:
            samples = request_set(dataset, args.requests)
        else:
            # Remote server: seeded random inputs at the advertised shape.
            advertised = target.models().get("models", {})
            if endpoint not in advertised:
                print(f"no endpoint {endpoint!r} on {base_url}; server "
                      f"offers: {sorted(advertised)}", file=sys.stderr)
                return 1
            shape = advertised[endpoint]["input_shape"]
            samples = np.random.default_rng(args.seed).standard_normal(
                (args.requests, *shape)).astype(np.float32)
        if args.scenario == "steady":
            result = loadgen.run_steady(target, endpoint, samples,
                                        concurrency=args.concurrency,
                                        deadline_ms=args.deadline_ms)
        elif args.scenario == "burst":
            result = loadgen.run_burst(target, endpoint, samples,
                                       deadline_ms=args.deadline_ms)
        elif args.scenario == "ramp":
            result = loadgen.run_ramp(target, endpoint, samples,
                                      start_rps=args.rate / 4,
                                      end_rps=args.rate, seed=args.seed,
                                      deadline_ms=args.deadline_ms)
        else:
            result = loadgen.run_open_loop(target, endpoint, samples,
                                           rate_rps=args.rate,
                                           seed=args.seed,
                                           deadline_ms=args.deadline_ms)
        record = result.to_record()
        print(format_table(
            ["metric", "value"],
            [("scenario", record["scenario"]),
             ("requests", record["sent"]),
             ("ok", record["ok"]), ("shed", record["shed"]),
             ("expired", record["expired"]), ("errors", record["errors"]),
             ("achieved req/s", f"{record['achieved_rps']:.0f}"),
             ("p50 ms", f"{record['latency_ms']['p50']:.2f}"),
             ("p99 ms", f"{record['latency_ms']['p99']:.2f}")],
            title=f"loadgen {args.scenario} against {base_url}"))
        bit_identical = None
        if session is not None and record["ok"] == record["sent"]:
            reference = session.predict(samples, pad_to=args.max_batch)
            bit_identical = (result.stacked_rows().tobytes()
                             == reference.tobytes())
            print(f"\nbit-identical to in-process predict: {bit_identical}")
        if handle is not None:
            print()
            print(gateway.report())
        return 0 if record["errors"] == 0 and bit_identical in (None, True) \
            else 1
    finally:
        target.close()
        if handle is not None:
            handle.stop()
        if gateway is not None:
            gateway.close()


def cmd_perf(args: argparse.Namespace) -> int:
    from repro.analysis import perfhistory

    if args.perf_command == "check":
        results, code = perfhistory.check_benchmarks(args.history,
                                                     args.benchmark)
        for name, gate_results in results.items():
            print(perfhistory.format_gate_results(name, gate_results))
            print()
        if not results:
            print(f"no benchmark records found in {args.history}")
        print(f"perf check: {'FAIL' if code else 'OK'}")
        return code

    store = perfhistory.HistoryStore(args.history)
    entries = store.load()
    selected = set(args.benchmark) if args.benchmark else None

    if args.perf_command == "list":
        rows = [(entry.timestamp, entry.benchmark, entry.env.git_commit,
                 entry.env.cpu_count, entry.env.python, entry.env.numpy,
                 len(entry.metrics))
                for entry in entries
                if selected is None or entry.benchmark in selected]
        print(format_table(
            ["timestamp", "benchmark", "commit", "cpus", "python", "numpy",
             "metrics"],
            rows[-args.limit:],
            title=f"perf history: {store.path} ({len(rows)} run(s))"))
        return 0

    # report: per-benchmark metric trends from compatible-environment runs.
    any_rows = False
    for name, spec in perfhistory.BENCHMARKS.items():
        if selected is not None and name not in selected:
            continue
        mine = [entry for entry in entries if entry.benchmark == name]
        if not mine:
            continue
        latest = mine[-1]
        comparable = [entry for entry in mine
                      if entry.env.compatible_with(latest.env)]
        rows = []
        for metric, value in latest.metrics.items():
            values = [float(entry.metrics[metric]) for entry in comparable
                      if metric in entry.metrics]
            trend = " -> ".join(f"{v:.4g}" for v in values[-5:])
            baseline = values[:-1][-perfhistory.DEFAULT_WINDOW:]
            if baseline:
                median = sorted(baseline)[len(baseline) // 2]
                delta = ("n/a" if median == 0 else
                         f"{(float(value) - median) / abs(median):+.1%}")
            else:
                delta = "seed"
            rows.append((metric, latest.units.get(metric, ""),
                         f"{float(value):.4g}", delta, trend))
        print(format_table(
            ["metric", "unit", "latest", "vs median", "trend (compatible runs)"],
            rows,
            title=(f"{name}: {spec.title} - {len(mine)} run(s), "
                   f"{len(comparable)} env-compatible, "
                   f"latest commit {latest.env.git_commit}")))
        print()
        any_rows = True
    if not any_rows:
        print(f"no benchmark records found in {args.history}")
    return 0


# ---------------------------------------------------------------------------------
# argument parsing
# ---------------------------------------------------------------------------------

def _add_common_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="lenet", help="model zoo entry to use")
    parser.add_argument("--epochs", type=int, default=3, help="training epochs")
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def _add_device_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--vendor", default="A", choices=("A", "B", "C"),
                        help="simulated DRAM vendor profile")
    parser.add_argument("--delta-vdd", type=float, default=0.25,
                        help="supply-voltage reduction in volts")
    parser.add_argument("--delta-trcd", type=float, default=5.5,
                        help="tRCD reduction in nanoseconds")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="eden-repro",
        description="Reproduction of EDEN (MICRO 2019): DNN inference on approximate DRAM.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-models", help="print the model zoo (Table 1)"
                          ).set_defaults(handler=cmd_list_models)

    profile = subparsers.add_parser("profile-dram",
                                    help="BER vs VDD/tRCD sweeps on a simulated module")
    profile.add_argument("--vendor", default="A", choices=("A", "B", "C"))
    profile.add_argument("--rows", type=int, default=2)
    profile.add_argument("--trials", type=int, default=4)
    profile.add_argument("--points", type=int, default=6)
    profile.add_argument("--seed", type=int, default=0)
    profile.set_defaults(handler=cmd_profile_dram)

    fit = subparsers.add_parser("fit-error-model",
                                help="fit and select EDEN's error models for a device")
    _add_device_arguments(fit)
    fit.add_argument("--rows", type=int, default=2)
    fit.add_argument("--trials", type=int, default=4)
    fit.add_argument("--seed", type=int, default=0)
    fit.set_defaults(handler=cmd_fit_error_model)

    characterize = subparsers.add_parser(
        "characterize", help="coarse-grained DNN characterization (Table 3)")
    _add_common_model_arguments(characterize)
    characterize.add_argument("--processes", type=int, default=0,
                              help="worker processes for the BER grid "
                                   "(bit-identical to serial)")
    characterize.set_defaults(handler=cmd_characterize)

    boost = subparsers.add_parser("boost", help="run the full EDEN pipeline on one model")
    _add_common_model_arguments(boost)
    _add_device_arguments(boost)
    boost.add_argument("--no-degradation", action="store_true",
                       help="target the original accuracy instead of within-1%%")
    boost.set_defaults(handler=cmd_boost)

    cpu = subparsers.add_parser("evaluate-cpu", help="CPU energy/speedup (Figures 13-14)")
    cpu.add_argument("--precisions", nargs="+", type=int, default=[32, 8],
                     choices=[4, 8, 16, 32])
    cpu.set_defaults(handler=cmd_evaluate_cpu)

    accel = subparsers.add_parser("evaluate-accel",
                                  help="Eyeriss/TPU energy reductions (Section 7.2)")
    accel.set_defaults(handler=cmd_evaluate_accel)

    memsys = subparsers.add_parser(
        "memsys", help="cycle-level memory controller run at nominal vs reduced parameters")
    memsys.add_argument("--model", default="yolo-tiny")
    memsys.add_argument("--bits", type=int, default=32, choices=[4, 8, 16, 32])
    memsys.add_argument("--max-accesses", type=int, default=4000)
    memsys.add_argument("--delta-vdd", type=float, default=0.30)
    memsys.add_argument("--delta-trcd", type=float, default=5.5)
    memsys.add_argument("--seed", type=int, default=0)
    memsys.set_defaults(handler=cmd_memsys)

    ecc = subparsers.add_parser(
        "ecc-sweep",
        help="raw vs ECC-corrected accuracy over a BER grid (decode counts)")
    _add_common_model_arguments(ecc)
    ecc.add_argument("--bers", nargs="+", type=float,
                     default=[1e-4, 1e-3, 1e-2],
                     help="weight-store bit error rates to sweep")
    ecc.add_argument("--error-model", type=int, default=4,
                     choices=[0, 1, 2, 3, 4],
                     help="EDEN error model id (4 = burst mixture)")
    ecc.add_argument("--bits", type=int, default=32, choices=[4, 8, 16, 32],
                     help="stored precision in bits")
    ecc.add_argument("--correction", default="rs72_64",
                     help="registered ECC codec name")
    ecc.set_defaults(handler=cmd_ecc_sweep)

    bench = subparsers.add_parser(
        "bench", help="inference-engine throughput (static-store vs per-read)")
    bench.add_argument("--model", default="lenet", help="model zoo entry to time")
    bench.add_argument("--ber", type=float, default=1e-3,
                       help="weight-store bit error rate")
    bench.add_argument("--batch-sizes", nargs="+", type=int, default=[1, 16, 64])
    bench.add_argument("--sweep", action="store_true",
                       help="also time a characterization-style BER sweep")
    bench.add_argument("--sweep-batch-size", type=int, default=4)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--dtype", default="fp32",
                       choices=("fp32", "int8", "int4"),
                       help="also time the fused integer plan at this "
                            "stored precision (fp32 = skip)")
    bench.set_defaults(handler=cmd_bench)

    parallel_bench = subparsers.add_parser(
        "parallel-bench",
        help="shared-memory parallel executor benchmark (serial vs N workers)")
    parallel_bench.add_argument("--model", default="lenet",
                                help="model zoo entry to sweep")
    parallel_bench.add_argument("--processes", type=int, default=4,
                                help="executor worker count")
    parallel_bench.add_argument("--epochs", type=int, default=2,
                                help="training epochs before characterizing")
    parallel_bench.add_argument("--seed", type=int, default=0)
    parallel_bench.set_defaults(handler=cmd_parallel_bench)

    serve_bench = subparsers.add_parser(
        "serve-bench",
        help="serving-gateway benchmark (micro-batched vs batch-1 serial)")
    serve_bench.add_argument("--model", default="lenet",
                             help="model zoo entry to serve")
    serve_bench.add_argument("--ber", type=float, default=1e-3,
                             help="weight-store bit error rate")
    serve_bench.add_argument("--requests", type=int, default=256,
                             help="number of single-sample requests")
    serve_bench.add_argument("--max-batch", type=int, default=32,
                             help="micro-batcher coalescing bound")
    serve_bench.add_argument("--client-threads", type=int, default=4,
                             help="concurrent clients for the async measurement")
    serve_bench.add_argument("--dtype", default="fp32",
                             choices=("fp32", "int8", "int4"),
                             help="stored precision / execution path of the "
                                  "endpoints under test")
    serve_bench.add_argument("--seed", type=int, default=0)
    serve_bench.set_defaults(handler=cmd_serve_bench)

    serve = subparsers.add_parser(
        "serve",
        help="HTTP/JSON inference server with admission control (Ctrl-C drains)")
    serve.add_argument("--model", default="lenet", help="model zoo entry to serve")
    serve.add_argument("--ber", type=float, default=1e-3,
                       help="weight-store bit error rate")
    serve.add_argument("--epochs", type=int, default=0,
                       help="training epochs before serving (0 = untrained)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="listening port (0 = ephemeral)")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="micro-batcher coalescing bound")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="micro-batcher straggler wait")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="admission control: max in-flight requests before 429")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       help="default per-request deadline (504 past it)")
    serve.add_argument("--dtype", default="fp32",
                       choices=("fp32", "int8", "int4"),
                       help="stored precision: integer dtypes serve through "
                            "the fused integer-GEMM plan")
    serve.add_argument("--seed", type=int, default=0)
    serve.set_defaults(handler=cmd_serve)

    route = subparsers.add_parser(
        "route",
        help="multi-replica router: N server processes sharing one plan "
             "export behind a balancing front end (Ctrl-C drains)")
    route.add_argument("--model", default="lenet",
                       help="model zoo entry to serve")
    route.add_argument("--replicas", type=int, default=2,
                       help="local replica processes to spawn")
    route.add_argument("--replica-url", action="append", default=None,
                       help="additional remote replica base URL (repeatable)")
    route.add_argument("--ber", type=float, default=1e-3,
                       help="weight-store bit error rate")
    route.add_argument("--epochs", type=int, default=0,
                       help="training epochs before serving (0 = untrained)")
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument("--port", type=int, default=8080,
                       help="router listening port (0 = ephemeral)")
    route.add_argument("--max-batch", type=int, default=32,
                       help="per-replica micro-batcher coalescing bound")
    route.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="per-replica micro-batcher straggler wait")
    route.add_argument("--queue-depth", type=int, default=64,
                       help="per-replica admission bound (the router spills "
                            "around full queues)")
    route.add_argument("--deadline-ms", type=float, default=None,
                       help="default per-request deadline (504 past it)")
    route.add_argument("--dtype", default="fp32",
                       choices=("fp32", "int8", "int4"),
                       help="stored precision: integer dtypes serve through "
                            "the fused integer-GEMM plan")
    route.add_argument("--seed", type=int, default=0)
    route.set_defaults(handler=cmd_route)

    loadgen_parser = subparsers.add_parser(
        "loadgen",
        help="deterministic traffic scenarios against a serve URL (or self-hosted)")
    loadgen_parser.add_argument("--scenario", default="steady",
                                choices=("steady", "burst", "open-loop", "ramp"),
                                help="traffic pattern to generate")
    loadgen_parser.add_argument("--url", default=None,
                                help="server base URL; omitted = stand one up in-process")
    loadgen_parser.add_argument("--endpoint", default=None,
                                help="endpoint name on a --url server (default: --model)")
    loadgen_parser.add_argument("--model", default="lenet",
                                help="model zoo entry for the self-hosted server")
    loadgen_parser.add_argument("--ber", type=float, default=1e-3,
                                help="weight-store bit error rate (self-hosted)")
    loadgen_parser.add_argument("--requests", type=int, default=96,
                                help="number of requests to generate")
    loadgen_parser.add_argument("--concurrency", type=int, default=4,
                                help="closed-loop worker count (steady)")
    loadgen_parser.add_argument("--rate", type=float, default=200.0,
                                help="arrival rate for open-loop/ramp (req/s)")
    loadgen_parser.add_argument("--queue-depth", type=int, default=64,
                                help="admission bound of the self-hosted server")
    loadgen_parser.add_argument("--max-batch", type=int, default=8,
                                help="self-hosted micro-batcher bound")
    loadgen_parser.add_argument("--max-wait-ms", type=float, default=2.0,
                                help="self-hosted straggler wait")
    loadgen_parser.add_argument("--deadline-ms", type=float, default=None,
                                help="per-request deadline")
    loadgen_parser.add_argument("--seed", type=int, default=0)
    loadgen_parser.set_defaults(handler=cmd_loadgen)

    perf = subparsers.add_parser(
        "perf",
        help="performance history: trend report, CI gate check, run listing")
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)

    def _perf_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--history", default="BENCH_history.jsonl",
                         help="append-only perf history file (JSONL)")
        sub.add_argument("--benchmark", nargs="*", default=None,
                         help="restrict to these benchmarks (default: all "
                              "with history entries)")
        sub.set_defaults(handler=cmd_perf)

    perf_report = perf_sub.add_parser(
        "report", help="metric trends across the benchmark history")
    _perf_common(perf_report)
    perf_check = perf_sub.add_parser(
        "check", help="evaluate every regression gate on the latest runs "
                      "(the CI gate step; exits non-zero on failure)")
    _perf_common(perf_check)
    perf_list = perf_sub.add_parser("list", help="list recorded runs")
    _perf_common(perf_list)
    perf_list.add_argument("--limit", type=int, default=40,
                           help="show at most this many most-recent runs")

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":      # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
