"""Deterministic load generation against the serving stack.

The serving front end is only trustworthy under traffic, so this module is
the traffic rig: seeded, reproducible clients that drive either the HTTP
server (:class:`HttpTarget`) or a gateway directly in process
(:class:`GatewayTarget`), plus the canonical traffic scenarios every
serving PR can reuse:

* **steady** — closed-loop: ``concurrency`` workers each keep exactly one
  request in flight, covering every sample once.  The bit-identity
  scenario: all requests are admitted (load never exceeds the worker
  count), so the full response set can be compared byte-for-byte against
  serial in-process ``session.predict``.
* **burst** — ``burst_size`` requests released simultaneously (barrier
  start).  Sized above the server's ``max_queue_depth`` it demonstrates
  admission control: some requests are shed with ``429`` while every
  admitted response stays bit-correct.
* **ramp** — open-loop Poisson arrivals whose rate climbs across segments.
* **open-loop** — Poisson arrivals at a fixed rate.
* **mix** — closed-loop traffic spread over several endpoints by a seeded
  categorical draw.

Determinism policy: all randomness (arrival schedules, endpoint mixes)
comes from a seeded :class:`numpy.random.Generator`, so a scenario's
*request plan* is a pure function of its arguments.  What the *server*
does under that plan (which exact burst requests shed) depends on real
concurrency, so assertions built on these results must only use
schedule-determined facts (the plan) and outcome aggregates with
deterministic bounds (e.g. ``shed > 0`` when a burst exceeds the queue
depth by a wide margin, bit-identity of every admitted row).
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Callable, Dict, List, Optional
from urllib.parse import urlsplit

import numpy as np

from repro.engine.session import DeadlineExceeded
from repro.serve.server import decode_rows
from repro.serve.telemetry import percentile


class RequestRecord:
    """Outcome of one generated request.

    ``index`` is the request's position in the scenario plan, ``endpoint``
    the model it targeted, ``status`` the (HTTP or synthesized) status code,
    ``latency_s`` the client-observed latency, ``row`` the decoded output
    row for successful requests (``None`` otherwise), ``error`` a short
    diagnostic for failures and ``replica`` the serving replica's name when
    the response came through the router tier (``X-Repro-Replica``).
    """

    __slots__ = ("index", "endpoint", "status", "latency_s", "row", "error",
                 "replica")

    def __init__(self, index: int, endpoint: str, status: int,
                 latency_s: float, row: Optional[np.ndarray] = None,
                 error: str = "", replica: Optional[str] = None):
        self.index = index
        self.endpoint = endpoint
        self.status = status
        self.latency_s = latency_s
        self.row = row
        self.error = error
        self.replica = replica

    @property
    def ok(self) -> bool:
        """Whether the request was served successfully (status 200)."""
        return self.status == 200

    @property
    def shed(self) -> bool:
        """Whether admission control refused the request (429 or 503)."""
        return self.status in (429, 503)

    @property
    def expired(self) -> bool:
        """Whether the request missed its deadline (504)."""
        return self.status == 504


class LoadResult:
    """A scenario's complete, machine-readable outcome.

    ``scenario`` names the traffic pattern, ``records`` holds one
    :class:`RequestRecord` per generated request (in plan order),
    ``duration_s`` is the wall clock of the whole run and ``meta`` carries
    the scenario parameters (all JSON-safe).
    """

    def __init__(self, scenario: str, records: List[RequestRecord],
                 duration_s: float, meta: Optional[Dict] = None):
        self.scenario = scenario
        self.records = sorted(records, key=lambda r: r.index)
        self.duration_s = float(duration_s)
        self.meta = dict(meta or {})

    # -- aggregates ---------------------------------------------------------------
    @property
    def sent(self) -> int:
        """Total requests the scenario generated."""
        return len(self.records)

    @property
    def ok(self) -> int:
        """Requests answered 200."""
        return sum(1 for r in self.records if r.ok)

    @property
    def shed(self) -> int:
        """Requests refused by admission control (429/503)."""
        return sum(1 for r in self.records if r.shed)

    @property
    def expired(self) -> int:
        """Requests that missed their deadline (504)."""
        return sum(1 for r in self.records if r.expired)

    @property
    def errors(self) -> int:
        """Requests that failed any other way."""
        return sum(1 for r in self.records
                   if not (r.ok or r.shed or r.expired))

    def ok_rows(self) -> Dict[int, np.ndarray]:
        """Decoded output rows of the successful requests, keyed by index.

        Returns a dict mapping plan index to the float32 output row — the
        raw material of the bit-identity checks.
        """
        return {r.index: r.row for r in self.records if r.ok}

    def stacked_rows(self) -> np.ndarray:
        """Stack every successful row in plan order.

        Only meaningful when *all* requests succeeded (steady scenario);
        raises ``ValueError`` otherwise so a silent partial comparison can
        never masquerade as a passing bit-identity check.  Returns the
        ``(sent, num_classes)`` float32 array.
        """
        if self.ok != self.sent:
            raise ValueError(
                f"stacked_rows() needs every request served; "
                f"{self.sent - self.ok} of {self.sent} were not")
        return np.stack([r.row for r in self.records])

    def status_counts(self) -> Dict[str, int]:
        """Histogram of response statuses, keyed by the status code as text.

        Returns e.g. ``{"200": 250, "429": 6}`` — what :meth:`to_record`
        persists instead of the raw per-request list (hundreds of repeated
        ``200`` entries bloating every ``BENCH_*.json``); assertions that
        need plan-order statuses read ``records`` directly.
        """
        counts: Dict[str, int] = {}
        for record in self.records:
            key = str(record.status)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def replica_counts(self) -> Dict[str, int]:
        """Requests served per replica (router runs; empty otherwise).

        Returns a histogram of :attr:`RequestRecord.replica` over the
        records that carried one — how ``bench_router`` shows the balancer
        actually spread traffic.
        """
        counts: Dict[str, int] = {}
        for record in self.records:
            if record.replica is not None:
                counts[record.replica] = counts.get(record.replica, 0) + 1
        return counts

    def to_record(self) -> Dict:
        """Summarize the run as a JSON-serializable dict.

        Returns scenario name and parameters, outcome counters, duration,
        achieved request rate, client-side latency percentiles over the
        successful requests, and the status histogram (raw per-request
        statuses stay on :attr:`records`) — everything
        ``benchmarks/bench_server.py`` persists.
        """
        latencies = [r.latency_s for r in self.records if r.ok]
        return {
            "scenario": self.scenario,
            "meta": self.meta,
            "sent": self.sent,
            "ok": self.ok,
            "shed": self.shed,
            "expired": self.expired,
            "errors": self.errors,
            "duration_s": self.duration_s,
            "achieved_rps": (self.sent / self.duration_s
                             if self.duration_s > 0 else float("nan")),
            "latency_ms": {
                "p50": percentile(latencies, 50) * 1e3,
                "p95": percentile(latencies, 95) * 1e3,
                "p99": percentile(latencies, 99) * 1e3,
                "mean": (sum(latencies) / len(latencies) * 1e3
                         if latencies else float("nan")),
            },
            "status_counts": self.status_counts(),
        }


# -----------------------------------------------------------------------------------
# targets
# -----------------------------------------------------------------------------------

class HttpTarget:
    """Client of an :class:`~repro.serve.server.InferenceServer`.

    One keep-alive :class:`http.client.HTTPConnection` per calling thread
    (thread-local, so closed-loop workers never share a socket).
    ``base_url`` is the server root, e.g. ``handle.base_url``.
    """

    def __init__(self, base_url: str):
        parts = urlsplit(base_url)
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self._local = threading.local()
        self._connections: List[http.client.HTTPConnection] = []
        self._lock = threading.Lock()

    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(self.host, self.port,
                                                    timeout=30.0)
            self._local.connection = connection
            with self._lock:
                self._connections.append(connection)
        return connection

    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None,
                 headers: Optional[Dict[str, str]] = None) -> Dict:
        """One HTTP exchange; reconnects once on a dropped keep-alive.

        ``method``/``path``/``body`` describe the request; ``headers`` are
        extra request headers.  Returns ``{"status": int, "payload": parsed
        JSON or text, "headers": response header dict (lower-cased names)}``.
        """
        sent = dict(headers or {})
        if body:
            sent.setdefault("Content-Type", "application/json")
        for attempt in (0, 1):
            connection = self._connection()
            try:
                connection.request(method, path, body=body, headers=sent)
                response = connection.getresponse()
                data = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                connection.close()
                self._local.connection = None
                if attempt:
                    raise
        try:
            payload = json.loads(data.decode("utf-8"))
        except ValueError:
            payload = data.decode("utf-8", errors="replace")
        return {"status": response.status, "payload": payload,
                "headers": {name.lower(): value
                            for name, value in response.getheaders()}}

    def predict(self, endpoint: str, sample: np.ndarray,
                deadline_ms: Optional[float] = None,
                affinity: Optional[str] = None) -> RequestRecord:
        """Issue one predict request for ``sample`` against ``endpoint``.

        ``deadline_ms`` rides in the request body when given; ``affinity``
        is sent as ``X-Affinity-Key`` so a router pins the request to the
        key's replica.  Returns a :class:`RequestRecord` (index 0 —
        scenarios re-index) carrying the status, client latency, the
        serving replica when a router reported one and, on success, the
        decoded output row.
        """
        body = {"sample": np.asarray(sample, dtype=np.float32).tolist()}
        if deadline_ms is not None:
            body["deadline_ms"] = float(deadline_ms)
        encoded = json.dumps(body).encode("utf-8")
        headers = {"X-Affinity-Key": affinity} if affinity is not None else None
        started = time.perf_counter()
        try:
            result = self._request(
                "POST", f"/v1/models/{endpoint}:predict", encoded, headers)
        except (http.client.HTTPException, ConnectionError, OSError) as error:
            return RequestRecord(0, endpoint, -1,
                                 time.perf_counter() - started,
                                 error=repr(error))
        latency = time.perf_counter() - started
        payload = result["payload"]
        row = None
        error = ""
        if result["status"] == 200:
            row = decode_rows(payload["outputs_b64"])[0]
        elif isinstance(payload, dict):
            error = str(payload.get("error", ""))
        return RequestRecord(0, endpoint, result["status"], latency, row,
                             error,
                             replica=result["headers"].get("x-repro-replica"))

    def health(self) -> Dict:
        """Fetch ``/healthz``; returns the parsed JSON payload."""
        return self._request("GET", "/healthz")["payload"]

    def models(self) -> Dict:
        """Fetch ``/v1/models``; returns endpoint names and input shapes."""
        return self._request("GET", "/v1/models")["payload"]

    def metrics(self) -> Dict:
        """Fetch ``/metrics?format=json``; returns the telemetry snapshot."""
        return self._request("GET", "/metrics?format=json")["payload"]

    def close(self) -> None:
        """Close every connection this target ever opened."""
        with self._lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            connection.close()

    def __enter__(self) -> "HttpTarget":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class GatewayTarget:
    """In-process target: requests go straight into a gateway's batcher.

    No HTTP, no admission control — used by stress tests that want maximum
    pressure on the :class:`~repro.serve.MicroBatcher` /
    :class:`~repro.parallel.PlanDispatcher` dispatch path itself.
    ``gateway`` is the :class:`~repro.serve.ServingGateway` under test.
    Statuses are synthesized to match the HTTP vocabulary (200 ok, 504
    deadline, 500 other failures).
    """

    def __init__(self, gateway):
        self.gateway = gateway

    def predict(self, endpoint: str, sample: np.ndarray,
                deadline_ms: Optional[float] = None,
                affinity: Optional[str] = None) -> RequestRecord:
        """Submit ``sample`` to ``endpoint`` and wait for its row.

        ``deadline_ms`` converts to an absolute dispatch deadline;
        ``affinity`` is accepted for interface parity with
        :class:`HttpTarget` and ignored (there is no replica set in
        process).  Returns a :class:`RequestRecord` with a synthesized
        status.
        """
        deadline = (time.perf_counter() + deadline_ms / 1e3
                    if deadline_ms is not None else None)
        started = time.perf_counter()
        try:
            future = self.gateway.submit(endpoint, sample, deadline=deadline)
            row = future.result()
        except DeadlineExceeded as error:
            return RequestRecord(0, endpoint, 504,
                                 time.perf_counter() - started,
                                 error=str(error))
        except Exception as error:
            return RequestRecord(0, endpoint, 500,
                                 time.perf_counter() - started,
                                 error=repr(error))
        return RequestRecord(0, endpoint, 200,
                             time.perf_counter() - started, row)

    def close(self) -> None:
        """Nothing to release (the caller owns the gateway)."""


# -----------------------------------------------------------------------------------
# clients
# -----------------------------------------------------------------------------------

def _run_plan(target, plan: List[Dict], *, concurrency: int,
              start_barrier: bool = False) -> List[RequestRecord]:
    """Execute a request ``plan`` with ``concurrency`` worker threads.

    Each plan entry is ``{"index", "endpoint", "sample", "deadline_ms",
    "offset_s"?, "affinity"?}``; entries with an ``offset_s`` fire no
    earlier than that offset from the run start (open-loop pacing), others
    fire as soon as a worker is free (closed-loop); an ``affinity`` key
    rides on the request (router traffic pinning).  ``start_barrier=True`` lines every
    worker up on a barrier first (burst traffic).  Returns one
    :class:`RequestRecord` per entry.
    """
    queue_lock = threading.Lock()
    cursor = {"next": 0}
    records: List[Optional[RequestRecord]] = [None] * len(plan)
    barrier = (threading.Barrier(concurrency + 1) if start_barrier else None)
    epoch = {"t": time.perf_counter()}

    def worker() -> None:
        if barrier is not None:
            barrier.wait()
        while True:
            with queue_lock:
                position = cursor["next"]
                if position >= len(plan):
                    return
                cursor["next"] = position + 1
            entry = plan[position]
            offset = entry.get("offset_s")
            if offset is not None:
                delay = epoch["t"] + offset - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            record = target.predict(entry["endpoint"], entry["sample"],
                                    entry.get("deadline_ms"),
                                    affinity=entry.get("affinity"))
            record.index = entry["index"]
            records[position] = record

    threads = [threading.Thread(target=worker, daemon=True)
               for _ in range(concurrency)]
    for thread in threads:
        thread.start()
    if barrier is not None:
        epoch["t"] = time.perf_counter()
        barrier.wait()               # release every worker at once
    for thread in threads:
        thread.join()
    return [record for record in records if record is not None]


def _plan_entries(endpoint: str, samples: np.ndarray,
                  deadline_ms: Optional[float]) -> List[Dict]:
    """One plan entry per row of ``samples`` against ``endpoint``.

    ``deadline_ms`` is attached to every entry.  Returns the plan list.
    """
    return [{"index": i, "endpoint": endpoint, "sample": sample,
             "deadline_ms": deadline_ms}
            for i, sample in enumerate(samples)]


# -----------------------------------------------------------------------------------
# scenarios
# -----------------------------------------------------------------------------------

def run_steady(target, endpoint: str, samples: np.ndarray, *,
               concurrency: int = 4, deadline_ms: Optional[float] = None,
               affinity: Optional[str] = None) -> LoadResult:
    """Closed-loop steady traffic: every sample served exactly once.

    ``concurrency`` workers each keep one request in flight on ``target``
    against ``endpoint`` until ``samples`` is exhausted; ``deadline_ms``
    rides on every request when given, and ``affinity`` pins the whole
    run's traffic to one router replica (one session's worth of affine
    load).  With load bounded by the worker count, a correctly sized
    server admits everything — making this the scenario the bit-identity
    gate runs on.  Returns the :class:`LoadResult`.
    """
    plan = _plan_entries(endpoint, samples, deadline_ms)
    if affinity is not None:
        for entry in plan:
            entry["affinity"] = affinity
    started = time.perf_counter()
    records = _run_plan(target, plan, concurrency=concurrency)
    return LoadResult("steady", records, time.perf_counter() - started,
                      {"endpoint": endpoint, "concurrency": concurrency,
                       "deadline_ms": deadline_ms, "affinity": affinity})


def run_burst(target, endpoint: str, samples: np.ndarray, *,
              concurrency: Optional[int] = None,
              deadline_ms: Optional[float] = None) -> LoadResult:
    """Burst traffic: all requests released simultaneously.

    One worker per ``samples`` row (``concurrency`` defaults to
    ``len(samples)``) lines up on a barrier, then everything fires at
    ``target``'s ``endpoint`` at once with ``deadline_ms`` attached when
    given.  Sized well above the server's ``max_queue_depth``, this is the
    scenario that demonstrates shedding.  Returns the :class:`LoadResult`.
    """
    plan = _plan_entries(endpoint, samples, deadline_ms)
    workers = concurrency if concurrency is not None else len(plan)
    started = time.perf_counter()
    records = _run_plan(target, plan, concurrency=max(workers, 1),
                        start_barrier=True)
    return LoadResult("burst", records, time.perf_counter() - started,
                      {"endpoint": endpoint, "burst_size": len(plan),
                       "deadline_ms": deadline_ms})


def poisson_offsets(n: int, rate_rps: float, seed: int) -> np.ndarray:
    """Deterministic Poisson arrival offsets for ``n`` requests.

    Inter-arrival gaps are exponential with mean ``1 / rate_rps``, drawn
    from ``numpy.random.default_rng(seed)`` — the schedule is a pure
    function of ``(n, rate_rps, seed)``, never of the wall clock.  Returns
    the cumulative offsets in seconds as a float array.

    >>> poisson_offsets(3, 100.0, seed=0).shape
    (3,)
    >>> bool(np.all(np.diff(poisson_offsets(8, 50.0, seed=1)) >= 0))
    True
    """
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / float(rate_rps), size=int(n))
    return np.cumsum(gaps)


def run_open_loop(target, endpoint: str, samples: np.ndarray, *,
                  rate_rps: float, seed: int = 0, concurrency: int = 16,
                  deadline_ms: Optional[float] = None) -> LoadResult:
    """Open-loop Poisson traffic at a fixed arrival rate.

    One request per ``samples`` row is fired at ``target``'s ``endpoint``;
    arrival offsets come from :func:`poisson_offsets(len(samples),
    rate_rps, seed)` (seeded — no wall-clock randomness); ``concurrency``
    bounds how many requests can actually be in flight, so a saturated
    server slows admission of late arrivals rather than spawning unbounded
    threads.  ``deadline_ms`` attaches to every request.  Returns the
    :class:`LoadResult`.
    """
    offsets = poisson_offsets(len(samples), rate_rps, seed)
    plan = _plan_entries(endpoint, samples, deadline_ms)
    for entry, offset in zip(plan, offsets):
        entry["offset_s"] = float(offset)
    started = time.perf_counter()
    records = _run_plan(target, plan,
                        concurrency=min(concurrency, max(len(plan), 1)))
    return LoadResult("open-loop", records, time.perf_counter() - started,
                      {"endpoint": endpoint, "rate_rps": float(rate_rps),
                       "seed": int(seed), "deadline_ms": deadline_ms})


def run_ramp(target, endpoint: str, samples: np.ndarray, *,
             start_rps: float, end_rps: float, segments: int = 4,
             seed: int = 0, concurrency: int = 16,
             deadline_ms: Optional[float] = None) -> LoadResult:
    """Ramp traffic: open-loop Poisson arrivals at a climbing rate.

    ``samples`` is split into ``segments`` consecutive slices aimed at
    ``target``'s ``endpoint``; slice ``k`` arrives at the ``k``-th rate of
    ``linspace(start_rps, end_rps, segments)``, each segment's schedule
    drawn from ``seed + k``.  ``concurrency`` and ``deadline_ms`` behave
    as in :func:`run_open_loop`.  Returns the :class:`LoadResult`.
    """
    rates = np.linspace(float(start_rps), float(end_rps), int(segments))
    plan = _plan_entries(endpoint, samples, deadline_ms)
    bounds = np.array_split(np.arange(len(plan)), int(segments))
    base = 0.0
    for k, (indices, rate) in enumerate(zip(bounds, rates)):
        if not len(indices):
            continue
        offsets = base + poisson_offsets(len(indices), rate, seed + k)
        for position, offset in zip(indices, offsets):
            plan[position]["offset_s"] = float(offset)
        base = float(offsets[-1])
    started = time.perf_counter()
    records = _run_plan(target, plan,
                        concurrency=min(concurrency, max(len(plan), 1)))
    return LoadResult("ramp", records, time.perf_counter() - started,
                      {"endpoint": endpoint, "start_rps": float(start_rps),
                       "end_rps": float(end_rps), "segments": int(segments),
                       "seed": int(seed), "deadline_ms": deadline_ms})


def run_mix(target, endpoints: Dict[str, float], samples: np.ndarray, *,
            seed: int = 0, concurrency: int = 4,
            deadline_ms: Optional[float] = None) -> LoadResult:
    """Multi-endpoint mix: closed-loop traffic spread by seeded weights.

    ``endpoints`` maps endpoint name to relative weight; each of the
    ``len(samples)`` requests fired at ``target`` draws its endpoint from
    the normalized weights with ``numpy.random.default_rng(seed)`` (the
    assignment is schedule-deterministic).  ``concurrency`` and
    ``deadline_ms`` behave as in :func:`run_steady`.  Returns the
    :class:`LoadResult`, whose records carry each request's endpoint.
    """
    names = sorted(endpoints)
    weights = np.array([float(endpoints[name]) for name in names])
    weights = weights / weights.sum()
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(names), size=len(samples), p=weights)
    plan = [{"index": i, "endpoint": names[c], "sample": sample,
             "deadline_ms": deadline_ms}
            for i, (c, sample) in enumerate(zip(chosen, samples))]
    started = time.perf_counter()
    records = _run_plan(target, plan, concurrency=concurrency)
    return LoadResult("mix", records, time.perf_counter() - started,
                      {"endpoints": {n: float(w)
                                     for n, w in zip(names, weights)},
                       "seed": int(seed), "concurrency": concurrency,
                       "deadline_ms": deadline_ms})


#: scenario name -> runner, the vocabulary of ``repro.cli loadgen``.
SCENARIOS: Dict[str, Callable] = {
    "steady": run_steady,
    "burst": run_burst,
    "open-loop": run_open_loop,
    "ramp": run_ramp,
    "mix": run_mix,
}
