"""Routing front end fanning traffic across N serving replicas.

:class:`RouterServer` is the scale-out tier above
:class:`~repro.serve.server.InferenceServer`: one asyncio HTTP front end
that proxies predict traffic across replicas — local processes spawned by a
:class:`~repro.serve.replica.ReplicaManager` (all adopting one
shared-memory plan export, so they serve the *same* corrupted store
bit-for-bit) or remote servers addressed by URL.

Routing policy
--------------
Requests carrying an ``X-Affinity-Key`` header are routed by consistent
hashing (:class:`HashRing`, SHA-1 over virtual nodes): the same key lands
on the same replica while it is healthy, which is what session- or
cache-affine traffic wants, and replica churn only remaps the keys that
hashed to the departed node.  Keyless requests go to the least-loaded
replica (router-tracked in-flight count, round-robin tie-break) — live
balancing rather than blind round-robin.  Both paths are
*backpressure-aware*: the router polls each replica's
``/metrics?format=json`` gauges (live in-flight depth, shed/expired
totals — the satellite counters :meth:`InferenceServer._gauges` exposes)
and spills past replicas whose queues are nearly full
(``spill_load``), and a replica answering ``429``/``503`` mid-request is
skipped in favour of the next candidate.

Failure handling
----------------
A health loop probes every replica each ``health_interval_s``.
``fail_after`` consecutive failures (probe or in-request connection
errors) evict the replica from the ring; a local replica whose process
died is respawned through the manager and rejoins only after its probes
pass (health-gated rejoin).  Graceful maintenance is drain-then-rejoin: a
draining replica sheds with ``503`` (which the router spills around) while
finishing its admitted requests, and rejoins the ring when probes see it
healthy again.  Every proxied response carries ``X-Repro-Replica`` naming
the replica that served it, so affinity and failover are observable from
the client side.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.serve.replica import LocalReplica, ReplicaManager
from repro.serve.server import (
    ServerHandle,
    handle_http_connection,
    json_safe,
    run_in_thread,
)

#: request headers the router forwards to replicas.
_FORWARDED_HEADERS = ("content-type", "x-deadline-ms", "x-affinity-key")


@dataclass
class RouterConfig:
    """Tuning knobs of a :class:`RouterServer`.

    ``host``/``port`` select the listening socket (``port=0`` binds an
    ephemeral port); ``vnodes`` is the virtual-node count per replica on
    the consistent-hash ring (more vnodes = smoother key spread);
    ``health_interval_s`` is the probe period; ``fail_after`` the
    consecutive-failure count that evicts a replica; ``spill_load`` the
    queue-fullness fraction (0..1) beyond which affine traffic spills to
    the next ring candidate; ``retries`` bounds how many replicas one
    request may be attempted on; ``connect_timeout_s`` /
    ``request_timeout_s`` bound each proxied exchange;
    ``max_body_bytes`` rejects oversized request bodies with ``413``; and
    ``drain_timeout_s`` bounds how long :meth:`RouterServer.stop` waits
    for in-flight proxied requests.
    """

    host: str = "127.0.0.1"
    port: int = 0
    vnodes: int = 64
    health_interval_s: float = 0.25
    fail_after: int = 3
    spill_load: float = 0.75
    retries: int = 4
    connect_timeout_s: float = 5.0
    request_timeout_s: float = 120.0
    max_body_bytes: int = 16 * 2**20
    drain_timeout_s: float = 10.0


def _ring_hash(value: str) -> int:
    """Map ``value`` onto the hash ring (first 8 bytes of SHA-1).

    Returns the position as an unsigned 64-bit integer.  SHA-1 rather than
    ``hash()`` so ring placement is stable across processes and runs
    (``PYTHONHASHSEED`` never reshuffles affinity).
    """
    digest = hashlib.sha1(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring of replica names with virtual nodes.

    ``vnodes`` virtual nodes per replica smooth the key distribution, so
    adding or removing one replica only remaps the keys that hashed to its
    arc — the property that keeps session/cache affinity stable under
    replica churn.
    """

    def __init__(self, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._points: List[Tuple[int, str]] = []
        self._nodes: set = set()

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Place ``node``'s virtual nodes on the ring (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.vnodes):
            bisect.insort(self._points, (_ring_hash(f"{node}#{i}"), node))

    def remove(self, node: str) -> None:
        """Take ``node`` off the ring (idempotent)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [point for point in self._points if point[1] != node]

    def ordered(self, key: str) -> List[str]:
        """Replica preference order for ``key``: clockwise from its hash.

        Returns every distinct node once, nearest arc first — the spill
        order the router walks when the primary replica is loaded or
        failing.  Empty when the ring is empty.
        """
        if not self._points:
            return []
        start = bisect.bisect_right(self._points, (_ring_hash(key),))
        order: List[str] = []
        seen: set = set()
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in seen:
                seen.add(node)
                order.append(node)
                if len(order) == len(self._nodes):
                    break
        return order


class ReplicaState:
    """The router's live view of one replica.

    ``name`` identifies the replica on the ring, ``host``/``port`` its
    address and ``local`` the managed :class:`LocalReplica` process when
    the router spawned it (``None`` for URL replicas).  The mutable fields
    track what routing needs: ``healthy``/``joined`` (eviction and
    ring membership), ``failures`` (consecutive probe/connect failures),
    ``inflight`` (router-side live proxied requests), ``gauges`` (the last
    polled ``/metrics`` server gauges) and ``routed`` (requests served).
    """

    __slots__ = ("name", "host", "port", "local", "healthy", "joined",
                 "failures", "inflight", "gauges", "routed")

    def __init__(self, name: str, host: str, port: int,
                 local: Optional[LocalReplica] = None):
        self.name = name
        self.host = host
        self.port = int(port)
        self.local = local
        self.healthy = False
        self.joined = False
        self.failures = 0
        self.inflight = 0
        self.gauges: Dict = {}
        self.routed = 0

    @property
    def url(self) -> str:
        """The replica's base URL."""
        return f"http://{self.host}:{self.port}"

    def load(self) -> float:
        """Estimated queue fullness in ``[0, 1+]`` — the spill signal.

        The numerator is the larger of the router's own live in-flight
        count and the replica's last *polled* in-flight gauge (the poll can
        lag, the router's counter cannot; other routers' traffic shows up
        only in the gauge — taking the max never undercounts on either
        side).  The denominator is the replica's advertised
        ``max_queue_depth``.  Returns the fraction (0 when never polled
        and idle).
        """
        depth = max(int(self.gauges.get("max_queue_depth", 64)), 1)
        live = max(self.inflight, int(self.gauges.get("inflight", 0)))
        return live / depth

    def snapshot(self) -> Dict:
        """Return the JSON-safe state for the router's ``/metrics`` payload."""
        return {
            "url": self.url,
            "local": self.local is not None,
            "healthy": self.healthy,
            "joined": self.joined,
            "failures": self.failures,
            "inflight": self.inflight,
            "routed": self.routed,
            "load": self.load(),
            "gauges": dict(self.gauges),
        }


async def _read_http_response(reader: asyncio.StreamReader
                              ) -> Tuple[int, Dict[str, str], bytes]:
    """Parse one HTTP/1.1 response from ``reader``.

    Returns ``(status, headers, body)`` with header names lower-cased;
    raises ``asyncio.IncompleteReadError`` on a connection closed
    mid-response and ``ValueError`` on malformed framing.
    """
    line = await reader.readline()
    if not line:
        raise asyncio.IncompleteReadError(b"", None)
    parts = line.decode("latin-1").split(None, 2)
    if len(parts) < 2:
        raise ValueError(f"malformed status line {line!r}")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line:
            raise asyncio.IncompleteReadError(b"", None)
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


class _ReplicaClient:
    """Pooled keep-alive HTTP client to one replica, on the router's loop.

    ``host``/``port`` address the replica; ``connect_timeout_s`` bounds
    dialing.  Idle connections are pooled and reused; a request that fails
    on a *reused* connection retries once on a fresh one (the stale
    keep-alive race), while a failure on a fresh connection propagates —
    that is a real connectivity signal the router's failure handling wants.
    """

    def __init__(self, host: str, port: int, connect_timeout_s: float = 5.0):
        self.host = host
        self.port = int(port)
        self.connect_timeout_s = float(connect_timeout_s)
        self._pool: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    async def request(self, method: str, target: str,
                      headers: Optional[Dict[str, str]] = None,
                      body: bytes = b"", timeout: float = 120.0
                      ) -> Tuple[int, Dict[str, str], bytes]:
        """One proxied HTTP exchange with the replica.

        ``method``/``target``/``headers``/``body`` form the request;
        ``timeout`` bounds the wait for the complete response.  Returns
        ``(status, response headers, response body)``; raises ``OSError``
        (connect/reset) or ``asyncio.TimeoutError`` on failure.
        """
        for attempt in (0, 1):
            reused = bool(self._pool)
            if reused:
                reader, writer = self._pool.pop()
            else:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port),
                    self.connect_timeout_s)
            lines = [f"{method} {target} HTTP/1.1",
                     f"Host: {self.host}:{self.port}",
                     f"Content-Length: {len(body)}",
                     "Connection: keep-alive"]
            for name, value in (headers or {}).items():
                lines.append(f"{name}: {value}")
            try:
                writer.write(("\r\n".join(lines) + "\r\n\r\n"
                              ).encode("latin-1") + body)
                await writer.drain()
                status, rheaders, rbody = await asyncio.wait_for(
                    _read_http_response(reader), timeout)
            except asyncio.TimeoutError:
                writer.close()
                raise
            except (OSError, asyncio.IncompleteReadError, ValueError):
                writer.close()
                if not reused:
                    raise
                continue                     # stale keep-alive: one retry
            if rheaders.get("connection", "").lower() == "close":
                writer.close()
            else:
                self._pool.append((reader, writer))
            return status, rheaders, rbody
        raise ConnectionError("unreachable")     # pragma: no cover - loop exits

    def close(self) -> None:
        """Close every pooled connection."""
        pool, self._pool = self._pool, []
        for _reader, writer in pool:
            writer.close()


class RouterServer:
    """Asyncio HTTP router balancing predict traffic across replicas.

    Parameters
    ----------
    replicas:
        The initial replica set: :class:`LocalReplica` objects (from a
        :class:`ReplicaManager`) and/or base-URL strings of remote
        servers.  Replicas join the ring once their first health probe
        passes.
    manager:
        Optional :class:`ReplicaManager`; when given, a local replica
        whose process died is respawned through it (the manager must be
        the one that spawned the local replicas, so respawns adopt the
        same plan exports).  The caller keeps ownership — the router
        never closes it.
    config:
        A :class:`RouterConfig`; defaults apply when omitted.
    """

    def __init__(self, replicas: List[Union[LocalReplica, str]],
                 manager: Optional[ReplicaManager] = None,
                 config: Optional[RouterConfig] = None):
        if not replicas:
            raise ValueError("RouterServer needs at least one replica")
        self.manager = manager
        self.config = config or RouterConfig()
        self.ring = HashRing(self.config.vnodes)
        self._states: Dict[str, ReplicaState] = {}
        self._clients: Dict[str, _ReplicaClient] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._connection_tasks: set = set()
        self._respawn_tasks: set = set()
        self._health_task: Optional[asyncio.Task] = None
        self._inflight = 0
        self._draining = False
        self._rr = 0
        self._started_at: Optional[float] = None
        self.port: Optional[int] = None
        self.stats = {"routed": 0, "spilled": 0, "connect_errors": 0,
                      "exhausted": 0, "evicted": 0, "respawned": 0}
        for replica in replicas:
            self._add_replica(replica)

    # -- replica set --------------------------------------------------------------
    def _add_replica(self, replica: Union[LocalReplica, str]) -> ReplicaState:
        """Register ``replica`` (not yet on the ring; probes join it).

        Returns the new :class:`ReplicaState`.
        """
        from urllib.parse import urlsplit

        if isinstance(replica, LocalReplica):
            state = ReplicaState(replica.name, "127.0.0.1", replica.port,
                                 local=replica)
        else:
            parts = urlsplit(replica)
            name = parts.netloc or replica
            state = ReplicaState(name, parts.hostname or "127.0.0.1",
                                 parts.port or 80)
        if state.name in self._states:
            raise ValueError(f"duplicate replica {state.name!r}")
        self._states[state.name] = state
        self._clients[state.name] = _ReplicaClient(
            state.host, state.port, self.config.connect_timeout_s)
        return state

    def _join(self, state: ReplicaState) -> None:
        """Mark ``state`` healthy and place it on the ring."""
        state.healthy = True
        state.failures = 0
        if not state.joined:
            state.joined = True
            self.ring.add(state.name)

    def _evict(self, state: ReplicaState) -> None:
        """Take ``state`` off the ring (in-flight requests finish)."""
        if state.joined:
            self.stats["evicted"] += 1
        state.healthy = False
        state.joined = False
        self.ring.remove(state.name)

    def _drop(self, state: ReplicaState) -> None:
        """Forget ``state`` entirely (a dead process being replaced)."""
        self._evict(state)
        self._states.pop(state.name, None)
        client = self._clients.pop(state.name, None)
        if client is not None:
            client.close()

    def _retire(self, state: ReplicaState) -> None:
        """Drop a dead local replica and respawn **at most once** per corpse.

        Several in-flight proxies and the health loop can all notice the
        same dead process; only the caller that finds ``state`` still
        registered schedules the replacement, so one death never spawns
        more than one successor.
        """
        registered = self._states.get(state.name) is state
        self._drop(state)
        if registered:
            self._schedule_respawn()

    # -- lifecycle ----------------------------------------------------------------
    async def start(self) -> None:
        """Probe the replicas, bind the listening socket, start balancing.

        Must run on the event loop that will serve traffic.  Replicas
        whose initial probe passes join the ring immediately; the rest
        stay out until the health loop sees them answer.  After this
        returns, :attr:`port` holds the actually bound port.
        """
        for state in list(self._states.values()):
            await self._probe(state)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.perf_counter()
        self._health_task = asyncio.create_task(self._health_loop())

    async def stop(self) -> None:
        """Drain and shut down the router (replicas are left running).

        Stops health checks and the listener, waits up to
        ``drain_timeout_s`` for in-flight proxied requests, cancels idle
        connections and closes the replica connection pools.  The replica
        processes belong to their manager and are not touched.
        """
        self._draining = True
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        for task in list(self._respawn_tasks):
            task.cancel()
        if self._respawn_tasks:
            await asyncio.gather(*self._respawn_tasks, return_exceptions=True)
        if self._server is not None:
            self._server.close()
        deadline = time.perf_counter() + self.config.drain_timeout_s
        while self._inflight > 0 and time.perf_counter() < deadline:
            await asyncio.sleep(0.005)
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(*self._connection_tasks,
                                 return_exceptions=True)
        for client in self._clients.values():
            client.close()
        if self._server is not None:
            try:
                await asyncio.wait_for(self._server.wait_closed(), timeout=1.0)
            except asyncio.TimeoutError:    # pragma: no cover - timing
                pass
            self._server = None

    @property
    def base_url(self) -> str:
        """The router's root URL (valid once :meth:`start` has run)."""
        return f"http://{self.config.host}:{self.port}"

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """Serve HTTP/1.1 requests on one client connection."""
        await handle_http_connection(reader, writer, self._route,
                                     self.config.max_body_bytes,
                                     self._connection_tasks)

    # -- health -------------------------------------------------------------------
    async def _health_loop(self) -> None:
        """Probe every replica each ``health_interval_s`` until stopped.

        The ``_draining`` check backstops task cancellation: on Python
        3.11 a cancel that lands exactly as an inner ``wait_for`` resolves
        can be swallowed, which would leave this loop running forever and
        deadlock :meth:`stop` — the flag bounds that race to one more
        iteration.
        """
        while not self._draining:
            await asyncio.sleep(self.config.health_interval_s)
            if self._draining:
                break
            for state in list(self._states.values()):
                await self._probe(state)

    async def _probe(self, state: ReplicaState) -> None:
        """One health check of ``state``: poll gauges, evict, respawn.

        A dead local process is dropped and respawned through the manager
        right away (no point probing a corpse); otherwise the replica's
        ``/metrics?format=json`` is polled — success refreshes the gauges
        and (re)joins the ring, ``fail_after`` consecutive failures evict.
        """
        if state.local is not None and not state.local.alive():
            self._retire(state)
            return
        client = self._clients.get(state.name)
        if client is None:                   # pragma: no cover - dropped race
            return
        try:
            status, _headers, body = await client.request(
                "GET", "/metrics?format=json", timeout=5.0)
            payload = json.loads(body.decode("utf-8"))
        except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError,
                ValueError):
            self._note_failure(state)
            return
        if status != 200 or not isinstance(payload, dict):
            self._note_failure(state)
            return
        state.gauges = dict(payload.get("server", {}))
        if state.gauges.get("draining"):
            # Drain-then-rejoin: a draining replica finishes its admitted
            # requests but must stop receiving new ones.
            self._evict(state)
            state.failures = 0
            return
        self._join(state)

    def _note_failure(self, state: ReplicaState) -> None:
        """Count one failure against ``state``; evict at ``fail_after``."""
        state.failures += 1
        if state.failures >= self.config.fail_after and state.joined:
            self._evict(state)

    def _schedule_respawn(self) -> None:
        """Respawn one local replica through the manager, asynchronously."""
        if self.manager is None or self._draining:
            return
        task = asyncio.create_task(self._respawn())
        self._respawn_tasks.add(task)
        task.add_done_callback(self._respawn_tasks.discard)

    async def _respawn(self) -> None:
        """Spawn a replacement replica and register it (joins via probes)."""
        loop = asyncio.get_running_loop()
        try:
            replica = await loop.run_in_executor(None, self.manager.spawn)
        except RuntimeError:                 # pragma: no cover - spawn failed
            return
        self.stats["respawned"] += 1
        state = self._add_replica(replica)
        await self._probe(state)

    # -- routing ------------------------------------------------------------------
    def _candidates(self, key: Optional[str]) -> List[ReplicaState]:
        """Replica attempt order for one request.

        ``key`` is the affinity key (``None`` for keyless traffic).  Keyed
        requests walk the consistent-hash ring from the key's position,
        but candidates at or above ``spill_load`` queue fullness are
        deferred behind unloaded ones (backpressure-aware spill; relative
        order is otherwise preserved, so the spilled-to replica is the
        key's next arc neighbour).  Keyless requests are ordered by live
        router-side load with a rotating tie-break.  Returns the healthy
        candidates, best first.
        """
        states = [s for s in self._states.values() if s.joined]
        if not states:
            return []
        if key is not None:
            order = [self._states[name] for name in self.ring.ordered(key)
                     if name in self._states]
            fresh = [s for s in order if s.load() < self.config.spill_load]
            loaded = [s for s in order if s.load() >= self.config.spill_load]
            return fresh + loaded
        self._rr += 1
        rotation = self._rr
        return sorted(
            states,
            key=lambda s, n=len(states): (s.inflight,
                                          (s.port + rotation) % max(n, 1)))

    async def _proxy(self, method: str, target: str,
                     headers: Dict[str, str], body: bytes,
                     key: Optional[str]) -> Tuple[int, bytes, str, Dict]:
        """Proxy one request to the best replica, retrying across the set.

        ``method``/``target``/``headers``/``body`` form the client
        request and ``key`` its affinity key (``None`` when keyless).
        Connection failures count against the replica's health and move on
        to the next candidate, as do ``429``/``503`` backpressure answers
        (spill); at most ``retries`` replicas are attempted.  Returns the
        ``(status, raw body, content type, extra headers)`` quadruple —
        the body passes through as received, and ``X-Repro-Replica`` names
        the serving replica.
        """
        candidates = self._candidates(key)
        if not candidates:
            return (503, json.dumps({"error": "no healthy replicas"}
                                    ).encode("utf-8"),
                    "application/json", {})
        forward = {name: headers[name] for name in _FORWARDED_HEADERS
                   if name in headers}
        last: Optional[Tuple[int, bytes, str, Dict]] = None
        for state in candidates[:max(self.config.retries, 1)]:
            client = self._clients.get(state.name)
            if client is None:               # pragma: no cover - dropped race
                continue
            state.inflight += 1
            try:
                status, rheaders, rbody = await client.request(
                    method, target, forward, body,
                    timeout=self.config.request_timeout_s)
            except (OSError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError):
                self.stats["connect_errors"] += 1
                self._note_failure(state)
                if state.local is not None and not state.local.alive():
                    self._retire(state)
                continue
            finally:
                state.inflight -= 1
            state.failures = 0
            content_type = rheaders.get("content-type", "application/json")
            extra = {"X-Repro-Replica": state.name}
            if status in (429, 503):
                self.stats["spilled"] += 1
                last = (status, rbody, content_type, extra)
                continue
            state.routed += 1
            self.stats["routed"] += 1
            return status, rbody, content_type, extra
        self.stats["exhausted"] += 1
        return last or (503,
                        json.dumps({"error": "all replicas failed"}
                                   ).encode("utf-8"),
                        "application/json", {})

    async def _route(self, method: str, target: str,
                     headers: Dict[str, str], body: bytes):
        """Dispatch one parsed client request.

        ``method``/``target``/``headers``/``body`` come from the shared
        request parser.  Router-owned routes (``/healthz``, ``/metrics``)
        are answered locally; predict and model-listing traffic is proxied.
        Returns a ``(status, payload, content_type[, extra_headers])``
        tuple for :func:`repro.serve.server.handle_http_connection`.
        """
        if method == "BAD":
            return 400, {"error": "malformed request line"}, "application/json"
        if method == "TOOBIG":
            return 413, {"error": "body too large"}, "application/json"
        path, _, query = target.partition("?")
        if method == "GET":
            if path == "/healthz":
                return 200, self._health(), "application/json"
            if path == "/metrics":
                if "format=json" in query:
                    return 200, json_safe(self._metrics()), "application/json"
                return 200, self._metrics_text(), "text/plain"
            if path == "/v1/models":
                if self._draining:
                    return 503, {"error": "draining"}, "application/json"
                return await self._proxy(method, target, headers, body, None)
            return 404, {"error": f"no route {path!r}"}, "application/json"
        if method != "POST":
            return 405, {"error": f"method {method} not allowed"}, \
                "application/json"
        if path.startswith("/v1/models/") and path.endswith(":predict"):
            if self._draining:
                return 503, {"error": "draining"}, "application/json"
            self._inflight += 1
            try:
                return await self._proxy(method, target, headers, body,
                                         headers.get("x-affinity-key"))
            finally:
                self._inflight -= 1
        return 404, {"error": f"no route {path!r}"}, "application/json"

    # -- introspection ------------------------------------------------------------
    def _health(self) -> Dict:
        """The router's ``/healthz`` payload: liveness plus the replica set.

        Returns a JSON-serializable dict with the routing status, the
        per-replica health/ring membership, and the in-flight count.
        """
        return {
            "status": "draining" if self._draining else "ok",
            "role": "router",
            "inflight": self._inflight,
            "ring_size": len(self.ring),
            "replicas": {name: {"url": state.url, "healthy": state.healthy,
                                "joined": state.joined,
                                "inflight": state.inflight}
                         for name, state in sorted(self._states.items())},
            "uptime_s": (time.perf_counter() - self._started_at
                         if self._started_at is not None else 0.0),
        }

    def _metrics(self) -> Dict:
        """The ``/metrics?format=json`` payload: counters and replica gauges.

        Returns the router counters (routed/spilled/evicted/respawned…)
        plus each replica's :meth:`ReplicaState.snapshot`.
        """
        return {
            "router": dict(self.stats, inflight=self._inflight,
                           ring_size=len(self.ring)),
            "replicas": {name: state.snapshot()
                         for name, state in sorted(self._states.items())},
        }

    def _metrics_text(self) -> str:
        """Plain-text rendering of :meth:`_metrics` for ``/metrics``."""
        payload = self._metrics()
        lines = ["== router =="]
        lines.extend(f"{key:>16}: {value}"
                     for key, value in sorted(payload["router"].items()))
        for name, replica in payload["replicas"].items():
            lines.append(f"-- {name} ({replica['url']}) --")
            lines.extend(f"{key:>16}: {replica[key]}"
                         for key in ("healthy", "joined", "inflight",
                                     "routed", "load", "failures"))
        return "\n".join(lines) + "\n"


def route_in_thread(replicas: List[Union[LocalReplica, str]],
                    manager: Optional[ReplicaManager] = None,
                    config: Optional[RouterConfig] = None) -> ServerHandle:
    """Start a :class:`RouterServer` on a fresh background event loop.

    ``replicas``, ``manager`` and ``config`` are forwarded to the
    :class:`RouterServer` constructor.  Blocks until the router has probed
    the replicas and bound its socket.  Returns a
    :class:`~repro.serve.server.ServerHandle` whose ``base_url`` is ready
    for traffic.
    """
    return run_in_thread(RouterServer(replicas, manager, config),
                         thread_name="repro-http-router")
