"""Serving gateway over compiled inference sessions.

This package is the deployment layer of the reproduction: EDEN's end state
is a DNN written into approximate DRAM once and read back by live inference
traffic, and :mod:`repro.serve` models exactly that over the engine's
compiled static-store plans.  Three pieces compose:

* :class:`SessionRegistry` — an LRU cache of compiled
  :class:`~repro.engine.session.InferenceSession` plans keyed by the
  injector fingerprint (model identity × operating point × per-tensor BERs)
  with a configurable memory budget;
* :class:`MicroBatcher` — dynamic coalescing of single-sample requests into
  batched dispatches with a thread-based async front end;
* :class:`ServingTelemetry` — per-model latency percentiles, throughput,
  batch occupancy and cache counters;

all wired together by :class:`ServingGateway`.  Above the gateway sits the
network-facing layer: :class:`InferenceServer` (:mod:`repro.serve.server`),
an asyncio HTTP/JSON front end with bounded-queue admission control,
per-request deadlines, ``/healthz``/``/metrics`` endpoints and graceful
drain, and :mod:`repro.serve.loadgen`, the deterministic load-generation
harness (closed-loop, Poisson open-loop, burst/ramp/mix scenarios) that
stress-tests it.  The scale-out tier on top is
:class:`RouterServer` (:mod:`repro.serve.router`) fronting N replica
servers spawned by :class:`ReplicaManager` (:mod:`repro.serve.replica`)
from one shared-memory plan export: consistent-hash affinity,
backpressure-aware spill, health-driven eviction and respawn — with
responses bit-identical no matter which replica serves.  See
``docs/serving.md`` for the design and the tuning knobs, and
``examples/serving_gateway.py`` / ``examples/http_serving.py`` for
end-to-end walkthroughs.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.gateway import ServeConfig, ServingGateway
from repro.serve.registry import SessionRegistry, session_store_bytes
from repro.serve.replica import LocalReplica, ReplicaManager
from repro.serve.router import (
    HashRing,
    RouterConfig,
    RouterServer,
    route_in_thread,
)
from repro.serve.server import (
    InferenceServer,
    ServerConfig,
    ServerHandle,
    decode_rows,
    encode_rows,
    run_in_thread,
    serve_in_thread,
)
from repro.serve.telemetry import ServingTelemetry, percentile

__all__ = [
    "HashRing",
    "InferenceServer",
    "LocalReplica",
    "MicroBatcher",
    "ReplicaManager",
    "RouterConfig",
    "RouterServer",
    "ServeConfig",
    "ServerConfig",
    "ServerHandle",
    "ServingGateway",
    "SessionRegistry",
    "ServingTelemetry",
    "decode_rows",
    "encode_rows",
    "percentile",
    "route_in_thread",
    "run_in_thread",
    "serve_in_thread",
    "session_store_bytes",
]
