"""Serving telemetry: latency percentiles, throughput, and batch occupancy.

Every request that passes through a :class:`~repro.serve.gateway.ServingGateway`
is timed end to end (enqueue to result) and every dispatched batch records its
occupancy and service time; requests refused by admission control (shed) or
dropped past their deadline (expired) are counted per model alongside the
served traffic, as are ECC decode counters harvested from each endpoint's
weight-store codec (corrected / uncorrectable codewords).  :class:`ServingTelemetry` aggregates these per
model; :meth:`ServingTelemetry.report` renders the aggregate through
:func:`repro.analysis.reporting.format_serving_report`, next to the registry's
cache hit/miss counters.

All mutation goes through one lock, so batcher worker threads and client
threads can record concurrently.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, List, Optional

#: latency samples kept per model; beyond this the window keeps the most
#: recent samples (percentiles then describe recent traffic, which is what a
#: serving dashboard wants).
DEFAULT_WINDOW = 8192


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in 0..100).

    Uses the nearest-rank definition (the smallest sample with at least
    ``q``% of the distribution at or below it), which is exact for small
    windows and never interpolates between samples.  Returns ``nan`` for an
    empty list.

    >>> percentile([4.0, 1.0, 3.0, 2.0], 50)
    2.0
    >>> percentile([5.0], 99)
    5.0
    """
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[min(rank, len(ordered)) - 1])


class _ModelStats:
    """Mutable per-model counters behind the telemetry lock."""

    __slots__ = ("requests", "batches", "samples", "service_seconds",
                 "latencies", "first_ts", "last_ts", "shed", "expired",
                 "ecc_corrected", "ecc_uncorrectable")

    def __init__(self) -> None:
        self.requests = 0
        self.batches = 0
        self.samples = 0
        self.service_seconds = 0.0
        self.latencies: List[float] = []
        self.first_ts: Optional[float] = None
        self.last_ts: Optional[float] = None
        self.shed = 0
        self.expired = 0
        self.ecc_corrected = 0
        self.ecc_uncorrectable = 0


class ServingTelemetry:
    """Per-model serving metrics: latency distribution, throughput, occupancy.

    Parameters
    ----------
    window:
        Number of latency samples retained per model (see
        :data:`DEFAULT_WINDOW`).
    clock:
        Monotonic time source; injectable so tests can drive deterministic
        timestamps.  Defaults to :func:`time.monotonic`.
    """

    def __init__(self, window: int = DEFAULT_WINDOW, clock=time.monotonic):
        self._lock = threading.Lock()
        self._models: Dict[str, _ModelStats] = {}
        self._window = int(window)
        self._clock = clock

    # -- recording ----------------------------------------------------------------
    def _stats_for(self, model: str) -> _ModelStats:
        stats = self._models.get(model)
        if stats is None:
            stats = self._models[model] = _ModelStats()
        return stats

    def record_request(self, model: str, latency_seconds: float) -> None:
        """Record one request's end-to-end ``latency_seconds`` for ``model``.

        Window semantics at the boundary: the latency window holds exactly
        the most recent ``min(requests, window)`` samples.  Recording the
        ``window + 1``-th sample appends the new latency and drops the
        oldest *within one locked section*, and :meth:`snapshot` takes the
        same lock — so a report issued while the window wraps sees either
        the pre-wrap window or the post-wrap window, never an over-full or
        half-updated list.  Percentiles therefore always describe a
        consistent suffix of the traffic; only the cumulative ``requests``
        counter remembers how much history the window has forgotten.
        """
        now = self._clock()
        with self._lock:
            stats = self._stats_for(model)
            stats.requests += 1
            stats.latencies.append(float(latency_seconds))
            if len(stats.latencies) > self._window:
                del stats.latencies[:len(stats.latencies) - self._window]
            if stats.first_ts is None:
                stats.first_ts = now
            stats.last_ts = now

    def record_shed(self, model: str) -> None:
        """Count one request for ``model`` refused by admission control.

        Shed requests never reach dispatch, so they contribute no latency
        sample and do not advance the throughput clock — only the ``shed``
        counter (surfaced in :meth:`snapshot` and the serving report).
        """
        with self._lock:
            self._stats_for(model).shed += 1

    def record_expired(self, model: str) -> None:
        """Count one admitted request for ``model`` dropped past its deadline.

        Recorded exactly once per dropped request: by the dispatch path when
        it discards a claimed request whose deadline passed in the queue
        (see :meth:`repro.serve.MicroBatcher.submit`), or by the HTTP front
        end for requests it cancels un-dispatched after its await times out
        — whoever owns the request at that moment, never both.
        """
        with self._lock:
            self._stats_for(model).expired += 1

    def record_ecc(self, model: str, corrected: int = 0,
                   uncorrectable: int = 0) -> None:
        """Accumulate ECC decode counters for ``model``'s weight store.

        ``corrected`` counts codewords the store's codec reverted exactly
        and ``uncorrectable`` the codewords flagged (or silently
        miscorrected) beyond correction strength; both are cumulative and
        surface in :meth:`snapshot` and the serving report.
        """
        with self._lock:
            stats = self._stats_for(model)
            stats.ecc_corrected += int(corrected)
            stats.ecc_uncorrectable += int(uncorrectable)

    def record_batch(self, model: str, occupancy: int,
                     service_seconds: float) -> None:
        """Record one dispatched batch for ``model``.

        ``occupancy`` is the number of requests coalesced into the batch and
        ``service_seconds`` the time its forward pass took.
        """
        with self._lock:
            stats = self._stats_for(model)
            stats.batches += 1
            stats.samples += int(occupancy)
            stats.service_seconds += float(service_seconds)

    # -- reading ------------------------------------------------------------------
    def snapshot(self, registry_stats: Optional[Dict[str, int]] = None) -> Dict:
        """Aggregate metrics as a plain dict (one entry per model).

        ``registry_stats`` (a :attr:`repro.serve.SessionRegistry.stats` dict)
        is embedded under ``"registry"`` when given, so one snapshot carries
        both traffic and cache behaviour.  Returns a JSON-serializable dict.
        """
        with self._lock:
            models = {}
            for name, stats in self._models.items():
                elapsed = ((stats.last_ts - stats.first_ts)
                           if stats.first_ts is not None else 0.0)
                models[name] = {
                    "requests": stats.requests,
                    "shed": stats.shed,
                    "expired": stats.expired,
                    "ecc_corrected": stats.ecc_corrected,
                    "ecc_uncorrectable": stats.ecc_uncorrectable,
                    "batches": stats.batches,
                    "mean_occupancy": (stats.samples / stats.batches
                                       if stats.batches else 0.0),
                    "throughput_rps": (stats.requests / elapsed
                                       if elapsed > 0 else float("nan")),
                    "service_seconds": stats.service_seconds,
                    "p50_ms": percentile(stats.latencies, 50) * 1e3,
                    "p95_ms": percentile(stats.latencies, 95) * 1e3,
                    "p99_ms": percentile(stats.latencies, 99) * 1e3,
                    "mean_ms": (sum(stats.latencies) / len(stats.latencies) * 1e3
                                if stats.latencies else float("nan")),
                }
        result: Dict = {"models": models}
        if registry_stats is not None:
            result["registry"] = dict(registry_stats)
        return result

    def report(self, registry_stats: Optional[Dict[str, int]] = None) -> str:
        """Render :meth:`snapshot` as plain text.

        ``registry_stats`` cache counters are included when given.  Returns
        the rendered table string.
        """
        from repro.analysis.reporting import format_serving_report

        return format_serving_report(self.snapshot(registry_stats))
