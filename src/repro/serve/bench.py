"""Serving-gateway measurements behind ``serve-bench`` and CI.

Shared by the ``repro.cli serve-bench`` subcommand and
``benchmarks/bench_serving.py`` (which records ``BENCH_serving.json`` and
gates CI).  One call to :func:`measure_serving` produces:

* **batch-1 serial vs micro-batched** — wall clock of serving ``n_requests``
  single-sample requests through a gateway compiled at batch shape 1 (every
  request is its own forward pass) vs through a micro-batching gateway that
  coalesces up to ``max_batch`` requests per dispatch.  The ratio is the
  headline speedup CI gates on.
* **bit-identity check** — within the micro-batching gateway, the coalesced
  results are compared bit-for-bit against strictly serial per-request
  dispatch through the same compiled plan (static batch shapes make the two
  identical for fixed seeds).
* **cold vs warm registry** — seconds to register an endpoint when the plan
  must be compiled + materialized (cold) vs when the registry already holds
  it (warm hit).
* **async front end** — throughput of concurrent client threads submitting
  through the worker-thread batcher.

Untrained networks are used throughout: serving throughput does not depend
on what the weights converged to, and skipping training keeps the benchmark
a pure measurement of the serving stack.
"""

from __future__ import annotations

import threading
import time
from typing import Dict

import numpy as np

from repro.dram.error_models import make_error_model
from repro.dram.injection import BitErrorInjector
from repro.nn.models import build_model_with_dataset
from repro.nn.tensor import DataKind
from repro.serve.gateway import ServeConfig, ServingGateway


def request_set(dataset, n_requests: int) -> np.ndarray:
    """``n_requests`` single-sample inputs, tiling ``dataset``'s validation set.

    Returns the stacked inputs as an array of shape
    ``(n_requests,) + input_shape``.
    """
    val_x = np.asarray(dataset.val_x)
    repeats = -(-n_requests // len(val_x))        # ceil division
    return np.concatenate([val_x] * repeats)[:n_requests]


#: backwards-compatible alias (pre-HTTP-front-end name).
_request_set = request_set


def build_serving_gateway(model: str = "lenet", *, ber: float = 1e-3,
                          model_id: int = 0, seed: int = 0, epochs: int = 0,
                          max_batch: int = 32, max_wait_ms: float = 2.0):
    """Build the canonical one-endpoint serving gateway for ``model``.

    The shared builder behind ``repro.cli serve`` / ``loadgen`` and
    ``benchmarks/bench_server.py``: builds ``model`` from the zoo (trained
    for ``epochs`` when > 0; untrained serves fine for throughput work),
    stores its weights in approximate DRAM at ``ber`` (error model
    ``model_id``, stream fixed by ``seed``), and registers it under its
    model name on a gateway whose micro-batcher runs at
    ``max_batch``/``max_wait_ms``.  Returns ``(gateway, session, dataset)``.
    """
    from repro.nn.training import Trainer

    network, dataset, spec = build_model_with_dataset(model, seed=seed)
    if epochs > 0:
        Trainer(network, dataset, spec.training_config(epochs=epochs)).fit()
    network.eval()
    injector = BitErrorInjector(make_error_model(model_id, ber, seed=seed),
                                bits=32, data_kinds={DataKind.WEIGHT},
                                seed=seed)
    gateway = ServingGateway(ServeConfig(max_batch=max_batch,
                                         max_wait_ms=max_wait_ms))
    session = gateway.register(model, network, dataset, injector=injector,
                               seed=seed, metric=spec.metric)
    return gateway, session, dataset


def measure_serving(model_name: str = "lenet", *, ber: float = 1e-3,
                    model_id: int = 0, n_requests: int = 256,
                    max_batch: int = 32, client_threads: int = 4,
                    seed: int = 0) -> Dict:
    """Measure the serving gateway against batch-1 per-request serving.

    Builds ``model_name`` from the zoo, stores its weights in approximate
    DRAM at ``ber`` (error model ``model_id``), and serves ``n_requests``
    single-sample requests four ways (serial batch-1, micro-batched,
    micro-batched via concurrent ``client_threads``, and the serial
    reference for the bit-identity check).  ``max_batch`` is the
    micro-batcher's coalescing bound and ``seed`` fixes every stream.
    Returns a JSON-serializable dict with timings, the headline
    ``microbatch_speedup``, ``bit_identical``, cold/warm registry seconds,
    and the gateway telemetry snapshot.
    """
    network, dataset, spec = build_model_with_dataset(model_name, seed=seed)
    network.eval()
    requests = request_set(dataset, n_requests)
    error_model = make_error_model(model_id, ber, seed=seed)
    injector = BitErrorInjector(error_model, bits=32,
                                data_kinds={DataKind.WEIGHT}, seed=seed)

    # -- cold vs warm registry ---------------------------------------------------
    gateway = ServingGateway(ServeConfig(max_batch=max_batch,
                                         auto_flush=False))
    started = time.perf_counter()
    gateway.register(model_name, network, dataset, injector=injector,
                     seed=seed, metric=spec.metric)
    cold_register_seconds = time.perf_counter() - started
    started = time.perf_counter()
    gateway.register(f"{model_name}-replica", network, dataset,
                     injector=injector, seed=seed, metric=spec.metric)
    warm_register_seconds = time.perf_counter() - started

    # -- batch-1 serial per-request serving --------------------------------------
    serial_gateway = ServingGateway(ServeConfig(max_batch=1,
                                                auto_flush=False))
    serial_gateway.register(model_name, network, dataset, injector=injector,
                            seed=seed, metric=spec.metric)
    serial_gateway.predict(model_name, requests[0])      # warm caches
    started = time.perf_counter()
    serial_outputs = serial_gateway.predict_many(model_name, requests,
                                                 coalesce=False)
    serial_seconds = time.perf_counter() - started

    # -- micro-batched serving through the shared plan ---------------------------
    gateway.predict(model_name, requests[0])             # warm caches
    started = time.perf_counter()
    batched_outputs = gateway.predict_many(model_name, requests,
                                           coalesce=True)
    batched_seconds = time.perf_counter() - started

    # -- bit-identity: coalesced vs serial dispatch, same compiled shape ---------
    reference_outputs = gateway.predict_many(model_name, requests,
                                             coalesce=False)
    # Raw byte comparison: bit-identity must hold even through NaN logits
    # (corrupted FP32 weights produce them), which np.array_equal rejects.
    bit_identical = (batched_outputs.shape == reference_outputs.shape and
                     batched_outputs.tobytes() == reference_outputs.tobytes())

    # -- async front end: concurrent clients, worker-thread batcher --------------
    async_gateway = ServingGateway(ServeConfig(max_batch=max_batch,
                                               max_wait_ms=2.0,
                                               auto_flush=True))
    async_gateway.register(model_name, network, dataset, injector=injector,
                           seed=seed, metric=spec.metric)
    async_gateway.predict(model_name, requests[0])       # warm caches
    shards = np.array_split(requests, client_threads)

    def client(shard: np.ndarray) -> None:
        futures = [async_gateway.submit(model_name, sample)
                   for sample in shard]
        for future in futures:
            future.result()

    threads = [threading.Thread(target=client, args=(shard,))
               for shard in shards]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    async_seconds = time.perf_counter() - started
    async_gateway.close()

    snapshot = gateway.snapshot()
    record = {
        "model": model_name,
        "ber": float(ber),
        "n_requests": int(n_requests),
        "max_batch": int(max_batch),
        "client_threads": int(client_threads),
        "serial_batch1_seconds": serial_seconds,
        "microbatched_seconds": batched_seconds,
        "microbatch_speedup": serial_seconds / batched_seconds,
        "async_seconds": async_seconds,
        "serial_rps": n_requests / serial_seconds,
        "microbatched_rps": n_requests / batched_seconds,
        "async_rps": n_requests / async_seconds,
        "bit_identical": bit_identical,
        "cold_register_seconds": cold_register_seconds,
        "warm_register_seconds": warm_register_seconds,
        "registry": dict(gateway.registry.stats),
        "telemetry": snapshot,
        "serial_matches_batch1_predictions": bool(np.array_equal(
            np.argmax(serial_outputs, axis=1),
            np.argmax(batched_outputs, axis=1))),
    }
    return record
