"""Serving-gateway measurements behind ``serve-bench`` and CI.

Shared by the ``repro.cli serve-bench`` subcommand and
``benchmarks/bench_serving.py`` (which records ``BENCH_serving.json`` and
gates CI).  One call to :func:`measure_serving` produces:

* **batch-1 serial vs micro-batched** — wall clock of serving ``n_requests``
  single-sample requests through a gateway compiled at batch shape 1 (every
  request is its own forward pass) vs through a micro-batching gateway that
  coalesces up to ``max_batch`` requests per dispatch.  The ratio is the
  headline speedup CI gates on.
* **bit-identity check** — within the micro-batching gateway, the coalesced
  results are compared bit-for-bit against strictly serial per-request
  dispatch through the same compiled plan (static batch shapes make the two
  identical for fixed seeds).
* **cold vs warm registry** — seconds to register an endpoint when the plan
  must be compiled + materialized (cold) vs when the registry already holds
  it (warm hit).
* **async front end** — throughput of concurrent client threads submitting
  through the worker-thread batcher.

Untrained networks are used throughout: serving throughput does not depend
on what the weights converged to, and skipping training keeps the benchmark
a pure measurement of the serving stack.
"""

from __future__ import annotations

import threading
import time
from typing import Dict

import numpy as np

from repro.dram.error_models import make_error_model
from repro.dram.injection import BitErrorInjector
from repro.nn.models import build_model_with_dataset
from repro.nn.tensor import DataKind
from repro.serve.gateway import ServeConfig, ServingGateway


def request_set(dataset, n_requests: int) -> np.ndarray:
    """``n_requests`` single-sample inputs, tiling ``dataset``'s validation set.

    Returns the stacked inputs as an array of shape
    ``(n_requests,) + input_shape``.
    """
    val_x = np.asarray(dataset.val_x)
    repeats = -(-n_requests // len(val_x))        # ceil division
    return np.concatenate([val_x] * repeats)[:n_requests]


#: backwards-compatible alias (pre-HTTP-front-end name).
_request_set = request_set

#: serving dtypes reachable from the CLI and benchmark drivers.
SERVING_DTYPES = ("fp32", "int8", "int4", "int16")


def serving_injector(dtype: str, *, ber: float, model_id: int, seed: int):
    """Injector + execution mode for a serving endpoint at ``dtype``.

    The weight store runs at ``ber`` with error model ``model_id`` and its
    streams fixed by ``seed``.  ``fp32`` returns the historical float
    injector.  Integer dtypes store the model as b-bit codes (bit errors
    applied to the codes) and select integer execution: the returned
    :class:`~repro.nn.quantization.QuantizedLoadTransform` wraps the bit
    error injector, and the mode is ``"integer"`` so a misconfigured
    endpoint fails loudly instead of silently serving FP32.  Returns the
    ``(injector, execution_mode)`` pair to pass to ``register``.
    """
    if dtype not in SERVING_DTYPES:
        raise ValueError(f"unknown serving dtype {dtype!r}; "
                         f"expected one of {SERVING_DTYPES}")
    bits = 32 if dtype == "fp32" else int(dtype[3:])
    inner = BitErrorInjector(make_error_model(model_id, ber, seed=seed),
                             bits=bits, data_kinds={DataKind.WEIGHT},
                             seed=seed)
    if dtype == "fp32":
        return inner, "fp32"
    from repro.nn.quantization import QuantizedLoadTransform

    return QuantizedLoadTransform(bits, inner=inner), "integer"


def build_serving_gateway(model: str = "lenet", *, ber: float = 1e-3,
                          model_id: int = 0, seed: int = 0, epochs: int = 0,
                          max_batch: int = 32, max_wait_ms: float = 2.0,
                          dtype: str = "fp32"):
    """Build the canonical one-endpoint serving gateway for ``model``.

    The shared builder behind ``repro.cli serve`` / ``loadgen`` and
    ``benchmarks/bench_server.py``: builds ``model`` from the zoo (trained
    for ``epochs`` when > 0; untrained serves fine for throughput work),
    stores its weights in approximate DRAM at ``ber`` (error model
    ``model_id``, stream fixed by ``seed``), and registers it under its
    model name on a gateway whose micro-batcher runs at
    ``max_batch``/``max_wait_ms``.  ``dtype`` selects the stored precision
    and execution path (see :func:`serving_injector`); integer dtypes
    serve through the fused integer-GEMM plan.  Returns
    ``(gateway, session, dataset)``.
    """
    from repro.nn.training import Trainer

    network, dataset, spec = build_model_with_dataset(model, seed=seed)
    if epochs > 0:
        Trainer(network, dataset, spec.training_config(epochs=epochs)).fit()
    network.eval()
    injector, execution_mode = serving_injector(dtype, ber=ber,
                                                model_id=model_id, seed=seed)
    gateway = ServingGateway(ServeConfig(max_batch=max_batch,
                                         max_wait_ms=max_wait_ms))
    session = gateway.register(model, network, dataset, injector=injector,
                               seed=seed, metric=spec.metric,
                               execution_mode=execution_mode)
    return gateway, session, dataset


def measure_serving(model_name: str = "lenet", *, ber: float = 1e-3,
                    model_id: int = 0, n_requests: int = 256,
                    max_batch: int = 32, client_threads: int = 4,
                    seed: int = 0, dtype: str = "fp32") -> Dict:
    """Measure the serving gateway against batch-1 per-request serving.

    Builds ``model_name`` from the zoo, stores its weights in approximate
    DRAM at ``ber`` (error model ``model_id``), and serves ``n_requests``
    single-sample requests four ways (serial batch-1, micro-batched,
    micro-batched via concurrent ``client_threads``, and the serial
    reference for the bit-identity check).  ``max_batch`` is the
    micro-batcher's coalescing bound, ``seed`` fixes every stream, and
    ``dtype`` selects the stored precision / execution path of every
    endpoint under test (see :func:`serving_injector`).
    Returns a JSON-serializable dict with timings, the headline
    ``microbatch_speedup``, ``bit_identical``, cold/warm registry seconds,
    and the gateway telemetry snapshot.
    """
    network, dataset, spec = build_model_with_dataset(model_name, seed=seed)
    network.eval()
    requests = request_set(dataset, n_requests)
    injector, execution_mode = serving_injector(dtype, ber=ber,
                                                model_id=model_id, seed=seed)

    # -- cold vs warm registry ---------------------------------------------------
    gateway = ServingGateway(ServeConfig(max_batch=max_batch,
                                         auto_flush=False))
    started = time.perf_counter()
    gateway.register(model_name, network, dataset, injector=injector,
                     seed=seed, metric=spec.metric,
                     execution_mode=execution_mode)
    cold_register_seconds = time.perf_counter() - started
    started = time.perf_counter()
    gateway.register(f"{model_name}-replica", network, dataset,
                     injector=injector, seed=seed, metric=spec.metric,
                     execution_mode=execution_mode)
    warm_register_seconds = time.perf_counter() - started

    # -- batch-1 serial per-request serving --------------------------------------
    serial_gateway = ServingGateway(ServeConfig(max_batch=1,
                                                auto_flush=False))
    serial_gateway.register(model_name, network, dataset, injector=injector,
                            seed=seed, metric=spec.metric,
                            execution_mode=execution_mode)
    serial_gateway.predict(model_name, requests[0])      # warm caches
    started = time.perf_counter()
    serial_outputs = serial_gateway.predict_many(model_name, requests,
                                                 coalesce=False)
    serial_seconds = time.perf_counter() - started

    # -- micro-batched serving through the shared plan ---------------------------
    gateway.predict(model_name, requests[0])             # warm caches
    started = time.perf_counter()
    batched_outputs = gateway.predict_many(model_name, requests,
                                           coalesce=True)
    batched_seconds = time.perf_counter() - started

    # -- bit-identity: coalesced vs serial dispatch, same compiled shape ---------
    reference_outputs = gateway.predict_many(model_name, requests,
                                             coalesce=False)
    # Raw byte comparison: bit-identity must hold even through NaN logits
    # (corrupted FP32 weights produce them), which np.array_equal rejects.
    bit_identical = (batched_outputs.shape == reference_outputs.shape and
                     batched_outputs.tobytes() == reference_outputs.tobytes())

    # -- async front end: concurrent clients, worker-thread batcher --------------
    async_gateway = ServingGateway(ServeConfig(max_batch=max_batch,
                                               max_wait_ms=2.0,
                                               auto_flush=True))
    async_gateway.register(model_name, network, dataset, injector=injector,
                           seed=seed, metric=spec.metric,
                           execution_mode=execution_mode)
    async_gateway.predict(model_name, requests[0])       # warm caches
    shards = np.array_split(requests, client_threads)

    def client(shard: np.ndarray) -> None:
        futures = [async_gateway.submit(model_name, sample)
                   for sample in shard]
        for future in futures:
            future.result()

    threads = [threading.Thread(target=client, args=(shard,))
               for shard in shards]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    async_seconds = time.perf_counter() - started
    async_gateway.close()

    snapshot = gateway.snapshot()
    record = {
        "model": model_name,
        "dtype": dtype,
        "ber": float(ber),
        "n_requests": int(n_requests),
        "max_batch": int(max_batch),
        "client_threads": int(client_threads),
        "serial_batch1_seconds": serial_seconds,
        "microbatched_seconds": batched_seconds,
        "microbatch_speedup": serial_seconds / batched_seconds,
        "async_seconds": async_seconds,
        "serial_rps": n_requests / serial_seconds,
        "microbatched_rps": n_requests / batched_seconds,
        "async_rps": n_requests / async_seconds,
        "bit_identical": bit_identical,
        "cold_register_seconds": cold_register_seconds,
        "warm_register_seconds": warm_register_seconds,
        "registry": dict(gateway.registry.stats),
        "telemetry": snapshot,
        "serial_matches_batch1_predictions": bool(np.array_equal(
            np.argmax(serial_outputs, axis=1),
            np.argmax(batched_outputs, axis=1))),
    }
    return record
