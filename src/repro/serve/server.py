"""Asyncio HTTP/JSON front end over the serving gateway.

This is the network-facing layer of the serving stack: an
:class:`InferenceServer` accepts HTTP/1.1 requests on an asyncio event loop,
admits them against a bounded queue, and bridges each admitted request into a
:class:`~repro.serve.gateway.ServingGateway`'s micro-batcher (a plain
``queue.Queue`` hand-off to the batcher's worker thread, so the event loop
never blocks on a forward pass).  Everything is standard library: ``asyncio``
streams for the transport, ``json`` for the wire format, ``base64`` for the
bit-exact output encoding.

Routes
------
``POST /v1/models/<name>:predict``
    Body ``{"sample": [...]}`` (one input) or ``{"inputs": [[...], ...]}``
    (several), optional ``"deadline_ms"``.  Responds with the output rows
    both human-readable (``argmax``) and bit-exact (``outputs_b64``: base64
    of each row's float32 bytes — JSON floats cannot round-trip NaN logits,
    base64 can).
``GET /healthz``
    Liveness + admission state: ``ok`` or ``draining``, registered
    endpoints, in-flight count.
``GET /metrics``
    The serving telemetry report as plain text
    (:func:`repro.analysis.reporting.format_serving_report`);
    ``/metrics?format=json`` returns the raw snapshot dict.
``GET /v1/models``
    The registered endpoint names.

Admission control
-----------------
At most ``max_queue_depth`` predict requests may be in flight at once; the
next one is *shed* with a ``429`` response (and counted in
:class:`~repro.serve.telemetry.ServingTelemetry`) instead of growing an
unbounded queue.  Every admitted request carries a deadline (request
``deadline_ms``, ``X-Deadline-Ms`` header, or the configured default): a
request still queued when its deadline passes is dropped by the batcher at
dispatch time (never burning a forward pass), and one that completes too
late is answered ``504`` — both counted as expired.  Shutdown is graceful:
:meth:`InferenceServer.stop` stops accepting new work, waits for in-flight
requests up to ``drain_timeout_s``, then tears the connections down.
"""

from __future__ import annotations

import asyncio
import base64
import json
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.engine.session import DeadlineExceeded
from repro.serve.gateway import ServingGateway

#: HTTP reason phrases for the status codes the server emits.
_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


@dataclass
class ServerConfig:
    """Tuning knobs of an :class:`InferenceServer`.

    ``host``/``port`` select the listening socket (``port=0`` binds an
    ephemeral port, reported by :attr:`InferenceServer.port` once started);
    ``max_queue_depth`` bounds how many predict requests may be in flight
    before admission control sheds with ``429``; ``default_deadline_ms``
    (``None`` = no deadline) applies to requests that do not carry their
    own; ``drain_timeout_s`` bounds how long :meth:`InferenceServer.stop`
    waits for in-flight requests before cancelling their connections; and
    ``max_body_bytes`` rejects oversized request bodies with ``413``.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_queue_depth: int = 64
    default_deadline_ms: Optional[float] = None
    drain_timeout_s: float = 5.0
    max_body_bytes: int = 16 * 2**20


def json_safe(value):
    """Recursively replace non-finite floats with ``None`` for strict JSON.

    ``value`` is any snapshot-shaped structure (dicts/lists/scalars).
    Telemetry snapshots legitimately contain ``nan`` (no traffic yet, empty
    latency window), but ``json.dumps`` would emit the non-standard ``NaN``
    literal that RFC 8259 parsers (jq, ``JSON.parse``) reject — so the wire
    gets ``null`` instead.  Returns the sanitized copy.
    """
    if isinstance(value, dict):
        return {key: json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if isinstance(value, float) and not np.isfinite(value):
        return None
    return value


async def read_http_request(reader: asyncio.StreamReader,
                            max_body_bytes: int
                            ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one HTTP request from ``reader``; ``None`` on clean close.

    The shared request parser behind :class:`InferenceServer` and the
    router tier (:class:`repro.serve.router.RouterServer`).  Bodies over
    ``max_body_bytes`` and malformed framing are reported through the
    sentinel methods ``"TOOBIG"`` / ``"BAD"`` rather than exceptions, so a
    protocol error answers a 4xx instead of killing the connection task.
    Returns ``(method, path, headers, body)`` with header names
    lower-cased, or ``None`` at EOF before a request line.
    """
    try:
        line = await reader.readline()
    except ValueError:                  # request line over the 64 KiB limit
        return "BAD", "", {}, b""
    if not line or not line.strip():
        return None
    try:
        method, target, _version = line.decode("latin-1").split(None, 2)
    except ValueError:
        return "BAD", "", {}, b""
    headers: Dict[str, str] = {}
    while True:
        try:
            line = await reader.readline()
        except ValueError:              # header line over the limit
            return "BAD", target, {}, b""
        if not line or line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:                  # "Content-Length: abc"
        return "BAD", target, headers, b""
    if length < 0:
        return "BAD", target, headers, b""
    if length > max_body_bytes:
        return "TOOBIG", target, headers, b""
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


async def handle_http_connection(reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter,
                                 route, max_body_bytes: int,
                                 tasks: set) -> None:
    """Serve HTTP/1.1 requests on one connection until it closes.

    The shared per-connection loop of the serving front ends: ``route`` is
    an async callable ``(method, path, headers, body) -> (status, payload,
    content_type[, extra_headers])`` (:meth:`InferenceServer._route` or the
    router's), ``max_body_bytes`` bounds request bodies, and the connection
    task registers itself in ``tasks`` so shutdown can cancel idle
    keep-alive connections.  ``reader``/``writer`` are the connection's
    asyncio streams.
    """
    task = asyncio.current_task()
    if task is not None:
        tasks.add(task)
    try:
        while True:
            request = await read_http_request(reader, max_body_bytes)
            if request is None:
                break
            method, path, headers, body = request
            try:
                result = await route(method, path, headers, body)
            except Exception as error:   # pragma: no cover - defensive
                result = (500, {"error": "internal", "detail": repr(error)},
                          "application/json")
            status, payload, content_type = result[:3]
            extra_headers = result[3] if len(result) > 3 else None
            # A malformed request line or an unread oversized body
            # poisons the stream; close instead of parsing garbage.
            keep_alive = (headers.get("connection", "").lower() != "close"
                          and method not in ("BAD", "TOOBIG"))
            writer.write(_render_response(status, payload, content_type,
                                          keep_alive,
                                          extra_headers=extra_headers))
            await writer.drain()
            if not keep_alive:
                break
    except (ConnectionResetError, asyncio.IncompleteReadError,
            asyncio.CancelledError):
        pass
    finally:
        if task is not None:
            tasks.discard(task)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):  # pragma: no cover - teardown
            pass


def encode_rows(rows: np.ndarray) -> list:
    """Base64-encode each float32 row of ``rows`` for bit-exact transport.

    JSON numbers cannot carry NaN payloads (and text round-trips are where
    bit-identity guarantees go to die), so output rows travel as base64 of
    their raw little-endian float32 bytes.  Each row is encoded from a
    memoryview slice of the output buffer itself — ``b64encode`` accepts
    buffers, so no per-row ``tobytes`` copy is taken; the engine's output
    is already float32-contiguous on the hot path, making the wire encode
    a single pass over the buffer.  Returns a list of ASCII strings, one
    per row.
    """
    rows = np.ascontiguousarray(rows, dtype=np.float32)
    if rows.size == 0:
        return ["" for _ in range(len(rows))]
    flat = memoryview(rows).cast("B")
    row_nbytes = rows.itemsize * int(np.prod(rows.shape[1:]))
    return [base64.b64encode(
                flat[start:start + row_nbytes]).decode("ascii")
            for start in range(0, len(rows) * row_nbytes, row_nbytes)]


def decode_rows(encoded: list) -> np.ndarray:
    """Decode :func:`encode_rows` output back into a float32 array.

    ``encoded`` is the ``outputs_b64`` list of a predict response.  Returns
    the stacked rows as a ``(len(encoded), num_classes)`` float32 array,
    bit-identical to the array the server encoded.
    """
    rows = [np.frombuffer(base64.b64decode(item), dtype=np.float32)
            for item in encoded]
    return np.stack(rows) if rows else np.empty((0, 0), dtype=np.float32)


class InferenceServer:
    """Asyncio HTTP front end serving a :class:`ServingGateway`.

    Parameters
    ----------
    gateway:
        The gateway whose endpoints this server exposes.  Its telemetry
        object also receives the server's shed/expired counts, so one
        ``/metrics`` scrape shows traffic, admission and cache behaviour
        together.
    config:
        A :class:`ServerConfig`; defaults apply when omitted.
    """

    def __init__(self, gateway: ServingGateway,
                 config: Optional[ServerConfig] = None):
        if not gateway.config.auto_flush:
            raise ValueError(
                "InferenceServer needs a gateway with auto_flush=True: the "
                "event loop only enqueues requests, so the batcher's worker "
                "thread must dispatch them")
        self.gateway = gateway
        self.config = config or ServerConfig()
        self._server: Optional[asyncio.AbstractServer] = None
        self._connection_tasks: set = set()
        self._inflight = 0
        self._draining = False
        self._started_at: Optional[float] = None
        self.port: Optional[int] = None

    # -- lifecycle ----------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and start accepting connections.

        Must run on the event loop that will serve traffic.  After this
        returns, :attr:`port` holds the actually bound port (useful with
        ``port=0``).
        """
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.perf_counter()

    async def stop(self) -> None:
        """Drain and shut down: the graceful-shutdown path.

        Stops accepting new connections, refuses new predict requests with
        ``503`` while draining, waits up to ``drain_timeout_s`` for
        in-flight requests to finish, then closes the listener.  Requests
        admitted before the drain began get their responses.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
        deadline = time.perf_counter() + self.config.drain_timeout_s
        while self._inflight > 0 and time.perf_counter() < deadline:
            await asyncio.sleep(0.005)
        # Idle keep-alive connections (and any request that outlived the
        # drain window) are cancelled so no task survives into loop close.
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(*self._connection_tasks,
                                 return_exceptions=True)
        if self._server is not None:
            # Python 3.12 made wait_closed() wait for open *client*
            # connections too; a keep-alive client that never disconnects
            # must not hold shutdown hostage, so the wait is bounded.
            try:
                await asyncio.wait_for(self._server.wait_closed(), timeout=1.0)
            except asyncio.TimeoutError:    # pragma: no cover - timing
                pass
            self._server = None

    @property
    def base_url(self) -> str:
        """The server's root URL (valid once :meth:`start` has run)."""
        return f"http://{self.config.host}:{self.port}"

    # -- connection handling ------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """Serve HTTP/1.1 requests on one connection until it closes."""
        await handle_http_connection(reader, writer, self._route,
                                     self.config.max_body_bytes,
                                     self._connection_tasks)

    # -- routing ------------------------------------------------------------------
    async def _route(self, method: str, target: str,
                     headers: Dict[str, str], body: bytes
                     ) -> Tuple[int, object, str]:
        """Dispatch one parsed request.

        ``method``/``target``/``headers``/``body`` come from
        :meth:`_read_request`.  Returns ``(status, payload, content_type)``
        where ``payload`` is a JSON-serializable object or a plain string.
        """
        if method == "BAD":
            return 400, {"error": "malformed request line"}, "application/json"
        if method == "TOOBIG":
            return 413, {"error": "body too large"}, "application/json"
        path, _, query = target.partition("?")
        if method == "GET":
            if path == "/healthz":
                return 200, self._health(), "application/json"
            if path == "/metrics":
                if "format=json" in query:
                    snapshot = self.gateway.snapshot()
                    snapshot["server"] = self._gauges(snapshot)
                    return 200, json_safe(snapshot), "application/json"
                return 200, self.gateway.report() + "\n", "text/plain"
            if path == "/v1/models":
                models = {}
                for name in self.gateway.endpoints():
                    session = self.gateway.session_for(name)
                    network = session.network
                    models[name] = {
                        "input_shape": [int(d) for d in network.input_shape],
                        "num_classes": int(network.num_classes),
                        "execution_mode": session.mode_label(),
                    }
                return 200, {"endpoints": self.gateway.endpoints(),
                             "models": models}, "application/json"
            return 404, {"error": f"no route {path!r}"}, "application/json"
        if method != "POST":
            return 405, {"error": f"method {method} not allowed"}, \
                "application/json"
        if path.startswith("/v1/models/") and path.endswith(":predict"):
            name = path[len("/v1/models/"):-len(":predict")]
            return await self._predict(name, headers, body)
        return 404, {"error": f"no route {path!r}"}, "application/json"

    def _gauges(self, snapshot: Dict) -> Dict:
        """Live admission-state gauges for ``/metrics?format=json``.

        ``snapshot`` is the gateway telemetry snapshot being served (its
        per-model ``shed``/``expired`` counters are summed here).  These
        are the balancer's inputs: a router polling a replica needs the
        *live* in-flight queue depth — not just the static
        ``max_queue_depth`` limit ``/healthz`` reports — plus the shed and
        expired totals whose deltas reveal a replica that is refusing or
        expiring work.  Returns the JSON-safe gauge dict.
        """
        models = snapshot.get("models", {})
        return {
            "inflight": self._inflight,
            "max_queue_depth": self.config.max_queue_depth,
            "queue_free": max(self.config.max_queue_depth - self._inflight, 0),
            "draining": self._draining,
            "shed_total": sum(m.get("shed", 0) for m in models.values()),
            "expired_total": sum(m.get("expired", 0) for m in models.values()),
        }

    def _health(self) -> Dict:
        """The ``/healthz`` payload: liveness plus admission state.

        Returns a JSON-serializable dict with the serving status
        (``ok``/``draining``), endpoint names, in-flight request count and
        the admission limit.
        """
        return {
            "status": "draining" if self._draining else "ok",
            "endpoints": self.gateway.endpoints(),
            "inflight": self._inflight,
            "max_queue_depth": self.config.max_queue_depth,
            "uptime_s": (time.perf_counter() - self._started_at
                         if self._started_at is not None else 0.0),
        }

    # -- the predict path ---------------------------------------------------------
    async def _predict(self, name: str, headers: Dict[str, str],
                       body: bytes) -> Tuple[int, Dict, str]:
        """Admit, dispatch and answer one predict request for endpoint ``name``.

        ``headers`` may carry ``x-deadline-ms``; ``body`` is the JSON
        request.  Returns the ``(status, payload, content_type)`` triple:
        ``200`` with encoded rows, ``429`` when shed, ``503`` while
        draining, ``504`` past deadline, ``400``/``404`` on bad input.
        """
        telemetry = self.gateway.telemetry
        if name not in self.gateway.endpoints():
            return 404, {"error": f"no endpoint {name!r}",
                         "endpoints": self.gateway.endpoints()}, \
                "application/json"
        # -- admission control: bounded queue depth -------------------------------
        if self._draining:
            telemetry.record_shed(name)
            return 503, {"error": "draining"}, "application/json"
        if self._inflight >= self.config.max_queue_depth:
            telemetry.record_shed(name)
            return 429, {"error": "shed", "inflight": self._inflight,
                         "max_queue_depth": self.config.max_queue_depth}, \
                "application/json"
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError) as error:
            return 400, {"error": f"bad JSON body: {error}"}, "application/json"
        if not isinstance(payload, dict):
            return 400, {"error": "body must be a JSON object"}, \
                "application/json"
        if "sample" in payload:
            raw, single = [payload["sample"]], True
        elif "inputs" in payload:
            raw, single = payload["inputs"], False
        else:
            return 400, {"error": "body needs 'sample' or 'inputs'"}, \
                "application/json"
        expected = tuple(self.gateway.session_for(name).network.input_shape)
        try:
            inputs = np.asarray(raw, dtype=np.float32)
        except (TypeError, ValueError) as error:
            return 400, {"error": f"bad input array: {error}"}, \
                "application/json"
        if inputs.shape[1:] != expected or inputs.ndim < 1 or not len(inputs):
            return 400, {"error": f"inputs must have shape (n,) + {expected},"
                                  f" got {inputs.shape}"}, "application/json"

        deadline_ms = payload.get("deadline_ms",
                                  headers.get("x-deadline-ms",
                                              self.config.default_deadline_ms))
        admitted_at = time.perf_counter()
        deadline = (admitted_at + float(deadline_ms) / 1e3
                    if deadline_ms is not None else None)

        self._inflight += 1
        try:
            loop = asyncio.get_running_loop()
            pending = [self.gateway.submit(name, sample, deadline=deadline)
                       for sample in inputs]
            futures = [asyncio.wrap_future(future, loop=loop)
                       for future in pending]
            gathered = asyncio.gather(*futures)
            try:
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    rows = await asyncio.wait_for(gathered, max(remaining, 0.0))
                else:
                    rows = await gathered
            except asyncio.TimeoutError:
                # The batcher is the authority on requests it *claimed*
                # (it counts the ones it drops at dispatch); the server
                # counts only samples it cancels un-dispatched here, so one
                # late request can never be double-counted as expired.
                cancelled = [future.cancel() for future in pending]
                if any(cancelled):
                    telemetry.record_expired(name)
                return 504, {"error": "deadline",
                             "deadline_ms": float(deadline_ms)}, \
                    "application/json"
            except DeadlineExceeded as error:
                # Dropped by the batcher at dispatch time (already counted).
                gathered.exception()        # retrieve, silencing the logger
                return 504, {"error": "deadline", "detail": str(error),
                             "deadline_ms": float(deadline_ms)}, \
                    "application/json"
        finally:
            self._inflight -= 1
        outputs = np.stack(rows)
        response = {
            "model": name,
            "rows": int(len(outputs)),
            "argmax": [int(i) for i in np.argmax(outputs, axis=1)],
            "outputs_b64": encode_rows(outputs),
            "dtype": "float32",
            "latency_ms": (time.perf_counter() - admitted_at) * 1e3,
        }
        if single:
            response["argmax"] = response["argmax"][0]
        return 200, response, "application/json"


def _render_response(status: int, payload, content_type: str,
                     keep_alive: bool,
                     extra_headers: Optional[Dict[str, str]] = None) -> bytes:
    """Serialize one HTTP/1.1 response.

    ``payload`` is JSON-encoded unless it is already a string (UTF-8) or raw
    ``bytes`` (passed through untouched — the router proxies replica bodies
    this way without re-encoding); ``status``, ``content_type`` and
    ``keep_alive`` fill the status line and headers, and ``extra_headers``
    appends additional response headers (e.g. the router's
    ``X-Repro-Replica``).  Returns the response bytes ready for the socket.
    """
    if isinstance(payload, bytes):
        body = payload
    elif isinstance(payload, str):
        body = payload.encode("utf-8")
    else:
        body = json.dumps(payload).encode("utf-8")
    extras = "".join(f"{name}: {value}\r\n"
                     for name, value in (extra_headers or {}).items())
    head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"{extras}"
            "\r\n")
    return head.encode("latin-1") + body


class ServerHandle:
    """A running server on a background thread, with a blocking stop.

    Produced by :func:`run_in_thread` (and :func:`serve_in_thread`); tests,
    benchmarks and the load generator use it to stand a real HTTP front end
    up around an in-process gateway or a router tier.  ``server`` is the
    served object (anything with async ``stop()`` plus ``base_url``/``port``),
    ``loop`` its event loop and ``thread`` the thread running that loop.
    The loop runs on a daemon thread; :meth:`stop` drains the server, stops
    the loop and joins the thread.
    """

    def __init__(self, server, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def base_url(self) -> str:
        """Root URL of the running server."""
        return self.server.base_url

    @property
    def port(self) -> int:
        """The actually bound port (ephemeral ports resolved)."""
        return int(self.server.port)

    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully drain the server and join its thread.

        ``timeout`` bounds the wait for the drain + join.  Safe to call
        twice.  Returns after the loop thread has exited.
        """
        if self._loop.is_closed():
            return
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop).result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_in_thread(server, thread_name: str = "repro-http-server"
                  ) -> ServerHandle:
    """Run any async server on a fresh background event loop.

    ``server`` is any object with ``async start()`` / ``async stop()``
    coroutine methods and ``base_url``/``port`` attributes valid after
    ``start`` — an :class:`InferenceServer` or a
    :class:`repro.serve.router.RouterServer`; ``thread_name`` labels the
    loop thread.  Blocks until ``start`` has completed (socket bound).
    Returns a :class:`ServerHandle` wrapping the running server.
    """
    started = threading.Event()
    state: Dict[str, object] = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        state["loop"] = loop
        try:
            loop.run_until_complete(server.start())
        except Exception as error:       # surface bind failures to the caller
            state["error"] = error
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(target=run, name=thread_name, daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):
        raise RuntimeError("HTTP server failed to start within 30 s")
    error = state.get("error")
    if error is not None:
        raise RuntimeError(f"HTTP server failed to start: {error!r}")
    return ServerHandle(server, state["loop"], thread)


def serve_in_thread(gateway: ServingGateway,
                    config: Optional[ServerConfig] = None) -> ServerHandle:
    """Start an :class:`InferenceServer` on a fresh background event loop.

    ``gateway`` supplies the endpoints; ``config`` the socket and admission
    knobs (an ephemeral port by default, so parallel test runs never
    collide).  Blocks until the socket is bound.  Returns a
    :class:`ServerHandle` whose ``base_url`` is ready for traffic.
    """
    return run_in_thread(InferenceServer(gateway, config))
