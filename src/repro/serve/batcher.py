"""Dynamic micro-batching of single-sample inference requests.

Latency-oriented traffic arrives one sample at a time, but the engine's
forward pass amortizes its per-layer cost over a batch.  :class:`MicroBatcher`
sits between the two: clients :meth:`~MicroBatcher.submit` single samples and
get a future back; a worker coalesces queued samples into batches of up to
``max_batch`` (waiting at most ``max_wait_ms`` for stragglers), dispatches
each batch through one compiled session, and splits the output rows back into
the per-request futures.

Determinism: when the dispatch function runs at a *static* batch shape
(:meth:`InferenceSession.predict` with ``pad_to=max_batch``), a request's
result is bit-identical however the queue happened to be coalesced — one
request per batch, full batches, or anything between.  The correctness tests
and the serving benchmark pin exactly this: coalesced results equal
per-request serial evaluation, bit for bit, for fixed seeds.

Two front ends share the same dispatch logic:

* ``auto=True`` (default) — a daemon worker thread drains the queue, so
  concurrent client threads share one compiled plan without further plumbing.
* ``auto=False`` — nothing runs until :meth:`~MicroBatcher.flush`, which
  drains the queue on the caller's thread in deterministic ``max_batch``
  chunks (used by benchmarks and tests that need reproducible coalescing).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, List, Optional

import numpy as np

from repro.engine.session import DeadlineExceeded
from repro.serve.telemetry import ServingTelemetry


class _Pending:
    """One queued request: sample, future, enqueue time, optional deadline."""

    __slots__ = ("sample", "future", "enqueued_at", "deadline")

    def __init__(self, sample: np.ndarray, enqueued_at: float,
                 deadline: Optional[float] = None):
        self.sample = sample
        self.future: Future = Future()
        self.enqueued_at = enqueued_at
        self.deadline = deadline


class MicroBatcher:
    """Coalesces single-sample requests into batched dispatches.

    Parameters
    ----------
    dispatch:
        Callable mapping a stacked input array ``(n,) + sample_shape`` to an
        output array whose row ``i`` is request ``i``'s result (typically a
        bound :meth:`InferenceSession.predict`).  If it also exposes
        ``submit(batch) -> Future`` (e.g.
        :class:`repro.parallel.PlanDispatcher`), :meth:`flush` pipelines
        every ready batch through it concurrently.
    max_batch:
        Largest number of requests coalesced into one dispatch.
    max_wait_ms:
        How long the worker holds an underfull batch open for stragglers
        before dispatching it anyway (the classic latency/throughput knob).
    name:
        Model name used when recording telemetry.
    telemetry:
        Optional :class:`~repro.serve.telemetry.ServingTelemetry` that
        receives per-request latencies and per-batch occupancy/service time.
    auto:
        ``True`` starts the background worker thread; ``False`` defers all
        work to explicit :meth:`flush` calls.
    """

    def __init__(self, dispatch: Callable[[np.ndarray], np.ndarray], *,
                 max_batch: int = 32, max_wait_ms: float = 2.0,
                 name: str = "", telemetry: Optional[ServingTelemetry] = None,
                 auto: bool = True):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.dispatch = dispatch
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.name = name
        self.telemetry = telemetry
        self._queue: "queue.Queue[Optional[_Pending]]" = queue.Queue()
        self._closed = False
        #: serializes every _run_batch (worker vs flush callers) and keeps
        #: concurrent flushes from splitting one FIFO batch.
        self._flush_lock = threading.Lock()
        #: cheap guard pairing submit()'s closed-check with its enqueue, so a
        #: request can never slip in after close() drained the queue.
        self._state_lock = threading.Lock()
        self._worker: Optional[threading.Thread] = None
        if auto:
            self._worker = threading.Thread(target=self._worker_loop,
                                            name=f"microbatcher-{name or 'anon'}",
                                            daemon=True)
            self._worker.start()

    # -- client side --------------------------------------------------------------
    def submit(self, sample: np.ndarray, *,
               deadline: Optional[float] = None) -> Future:
        """Enqueue one ``sample`` (shape = the model's input shape).

        ``deadline``, when given, is an absolute :func:`time.perf_counter`
        timestamp plumbed into dispatch: a request still queued when its
        deadline passes is dropped at dispatch time — its future fails with
        :class:`repro.engine.DeadlineExceeded`, telemetry counts it as
        expired, and the forward pass runs without it (the batch is never
        padded with rows nobody will read).  Returns a
        :class:`concurrent.futures.Future` resolving to that sample's output
        row.  Raises ``RuntimeError`` after :meth:`close`.
        """
        pending = _Pending(np.asarray(sample), time.perf_counter(), deadline)
        with self._state_lock:
            if self._closed:
                raise RuntimeError("batcher is closed")
            self._queue.put(pending)
        return pending.future

    def flush(self) -> int:
        """Drain the queue on the calling thread (manual mode).

        Requests are dispatched in FIFO order in chunks of ``max_batch``.
        Safe to call in auto mode too (the lock keeps worker and caller from
        splitting one batch).  A process-backed dispatcher (anything
        exposing ``submit(batch) -> Future``, e.g.
        :class:`repro.parallel.PlanDispatcher`) has every ready batch
        submitted before the first result is awaited, so all its workers
        run concurrently; batch composition — and therefore every result —
        is identical to the sequential path.  Returns the number of
        requests drained from the queue (served, or failed as expired).
        """
        submit = getattr(self.dispatch, "submit", None)
        dispatched = 0
        while True:
            with self._flush_lock:
                if submit is not None:
                    batches = []
                    while True:
                        batch = self._take_ready_batch()
                        if not batch:
                            break
                        batches.append(batch)
                    self._run_batches_pipelined(batches, submit)
                    return dispatched + sum(len(batch) for batch in batches)
                batch = self._take_ready_batch()
                if not batch:
                    return dispatched
                self._run_batch(batch)
            dispatched += len(batch)

    def close(self) -> None:
        """Stop accepting requests, flush the queue, and join the worker."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        if self._worker is not None:
            self._queue.put(None)          # wake the worker so it can exit
            self._worker.join(timeout=5.0)
            self._worker = None
        self.flush()                       # serve anything still queued

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- batching core ------------------------------------------------------------
    def _take_ready_batch(self) -> List[_Pending]:
        """Non-blocking: up to ``max_batch`` requests already in the queue.

        Callers must hold ``_flush_lock`` (it spans take + dispatch, so a
        concurrent flush and the worker can neither split one FIFO batch nor
        run the dispatch callable concurrently).  The ``None`` shutdown
        sentinel is re-enqueued, never discarded: it is the worker's only
        wake-up signal, and a flush racing :meth:`close` must not make the
        join wait out the worker's poll timeout.
        """
        batch: List[_Pending] = []
        saw_sentinel = False
        while len(batch) < self.max_batch:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is None:
                saw_sentinel = True
                continue
            batch.append(item)
        if saw_sentinel:
            self._queue.put(None)
        return batch

    def _wait_for_batch(self) -> Optional[List[_Pending]]:
        """Blocking: one batch for the worker, or ``None`` on shutdown.

        Blocks for the first request, then holds the batch open up to
        ``max_wait_ms`` (or until full) before dispatching.
        """
        try:
            first = self._queue.get(timeout=0.1)
        except queue.Empty:
            return [] if not self._closed else None
        if first is None:
            return None
        batch = [first]
        deadline = time.perf_counter() + self.max_wait_ms / 1e3
        while len(batch) < self.max_batch:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is None:
                with self._flush_lock:
                    self._run_batch(batch)
                return None
            batch.append(item)
        return batch

    def _worker_loop(self) -> None:
        while True:
            batch = self._wait_for_batch()
            if batch is None:
                return
            if batch:
                with self._flush_lock:
                    self._run_batch(batch)

    def _drop_expired(self, batch: List[_Pending]) -> List[_Pending]:
        """Claim a batch's futures, dropping expired or abandoned requests.

        Called at dispatch time, immediately before a batch is stacked.  An
        expired request's future gets :class:`DeadlineExceeded`, telemetry
        counts it as expired, and it never occupies a batch row.  Every
        surviving future is transitioned to *running* via
        ``set_running_or_notify_cancel`` — the executor handshake that makes
        the later ``set_result``/``set_exception`` race-free against clients
        cancelling futures (e.g. the HTTP front end's timed-out awaits);
        a future already cancelled by its client is silently discarded.
        Returns the still-live requests in their FIFO positions.
        """
        now = time.perf_counter()
        live: List[_Pending] = []
        for pending in batch:
            if pending.deadline is not None and now > pending.deadline:
                if pending.future.set_running_or_notify_cancel():
                    if self.telemetry is not None:
                        self.telemetry.record_expired(self.name)
                    pending.future.set_exception(DeadlineExceeded(
                        f"request expired after "
                        f"{(now - pending.enqueued_at) * 1e3:.1f} ms in queue"))
            elif pending.future.set_running_or_notify_cancel():
                live.append(pending)
        return live

    def _run_batches_pipelined(self, batches: List[List[_Pending]],
                               submit) -> None:
        """Submit every batch through ``submit``, then fan results back out.

        All batches go in before any result is awaited, so a process-backed
        dispatcher keeps its whole worker pool busy; results are gathered
        (and futures resolved) in FIFO batch order.  A failed submission or
        execution fails only its own batch's futures.  Telemetry times each
        batch from its own submission to its own completion (recorded by a
        done-callback, so a batch finishing while an earlier one is still
        being gathered is not billed for the head-of-line wait).  Callers
        must hold ``_flush_lock``.
        """
        in_flight = []
        done_at: dict = {}
        for batch in batches:
            batch = self._drop_expired(batch)
            if not batch:
                continue
            started = time.perf_counter()
            try:
                # np.stack inside the try: a shape-mismatched sample must
                # fail its batch's futures, not abort the whole flush.
                future = submit(np.stack([p.sample for p in batch]))
            except Exception as error:
                for pending in batch:
                    pending.future.set_exception(error)
                continue
            future.add_done_callback(
                lambda f: done_at.setdefault(id(f), time.perf_counter()))
            in_flight.append((batch, started, future))
        for batch, started, future in in_flight:
            try:
                outputs = future.result()
            except Exception as error:
                for pending in batch:
                    pending.future.set_exception(error)
                continue
            # The done-callback can still be in flight right after result()
            # returns; fall back to "now", which is at most a hair later.
            finished = done_at.get(id(future)) or time.perf_counter()
            if self.telemetry is not None:
                self.telemetry.record_batch(self.name, len(batch),
                                            finished - started)
            for row, pending in enumerate(batch):
                if self.telemetry is not None:
                    self.telemetry.record_request(
                        self.name, finished - pending.enqueued_at)
                pending.future.set_result(outputs[row])

    def _run_batch(self, batch: List[_Pending]) -> None:
        """Dispatch one coalesced batch and fan results back out."""
        batch = self._drop_expired(batch)
        if not batch:
            return
        started = time.perf_counter()
        try:
            # np.stack inside the try: a shape-mismatched sample must fail
            # its batch's futures, not kill the worker thread.
            outputs = self.dispatch(np.stack([p.sample for p in batch]))
        except Exception as error:       # propagate to every caller
            for pending in batch:
                pending.future.set_exception(error)
            return
        finished = time.perf_counter()
        if self.telemetry is not None:
            self.telemetry.record_batch(self.name, len(batch),
                                        finished - started)
        for row, pending in enumerate(batch):
            if self.telemetry is not None:
                self.telemetry.record_request(
                    self.name, finished - pending.enqueued_at)
            pending.future.set_result(outputs[row])
