"""The serving gateway: named model endpoints over compiled sessions.

:class:`ServingGateway` is the deployment-shaped front end of the engine
(EDEN's end state is a DNN stored once in approximate DRAM and read by live
inference traffic).  It composes the three serving pieces:

* a :class:`~repro.serve.registry.SessionRegistry` so each
  (model, operating point) pair is compiled and materialized once, shared by
  every endpoint that serves it, and evicted LRU-first under a memory budget;
* one :class:`~repro.serve.batcher.MicroBatcher` per registered endpoint,
  coalescing concurrent single-sample requests into batched dispatches
  through the shared plan;
* a :class:`~repro.serve.telemetry.ServingTelemetry` collecting per-model
  latency percentiles, throughput, batch occupancy, and — via the registry —
  cache hit/miss counters.

Execution contract: dispatches run through
:meth:`InferenceSession.predict` at a *static* batch shape
(``pad_to=max_batch``, unless ``pad_batches=False``), so a request's result
is bit-identical whether it was served alone or coalesced with ``max_batch-1``
neighbours.  Weights come from the materialized store; IFM loads are served
reliably by default (``ifm_errors=True`` opts into per-dispatch IFM
injection, which trades away batching-invariance — see
``docs/serving.md``).

Endpoints that share one underlying :class:`~repro.nn.network.Network`
object (e.g. the same model registered at two operating points) are
serialized through a per-network lock: the engine installs its load hook on
the network for the duration of a dispatch, so two plans must not execute on
the same network concurrently.  With ``dispatch_processes`` > 0 each
endpoint instead runs its dispatches in worker processes holding private
network copies whose weights are zero-copy shared-memory views of the
compiled plan (:class:`repro.parallel.PlanDispatcher`) — bit-identical
results, no per-network contention, and the forward passes stop competing
for the serving process's GIL.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.engine.session import InferenceSession, network_lock
from repro.nn.network import Network
from repro.serve.batcher import MicroBatcher
from repro.serve.registry import SessionRegistry
from repro.serve.telemetry import ServingTelemetry


@dataclass
class ServeConfig:
    """Tuning knobs of a :class:`ServingGateway`.

    ``max_batch`` and ``max_wait_ms`` parameterize each endpoint's
    micro-batcher (largest coalesced batch / how long an underfull batch
    waits for stragglers); ``pad_batches`` keeps the static-shape execution
    contract that makes batching bit-invariant; ``max_sessions`` and
    ``memory_budget_bytes`` bound the session registry; ``auto_flush``
    selects the threaded front end (``False`` defers dispatch to explicit
    ``flush()`` calls — deterministic, used by benchmarks); ``ifm_errors``
    opts endpoints into per-dispatch IFM injection.  ``dispatch_processes``
    > 0 runs each endpoint's dispatches in that many worker *processes*
    attached zero-copy to the endpoint's shared-memory plan export
    (:class:`repro.parallel.PlanDispatcher`): results stay bit-identical to
    in-process dispatch, endpoints sharing one network stop contending on
    the per-network lock, and the numpy-bound forward passes leave the
    serving process's GIL alone.
    """

    max_batch: int = 32
    max_wait_ms: float = 2.0
    pad_batches: bool = True
    max_sessions: int = 8
    memory_budget_bytes: Optional[int] = None
    auto_flush: bool = True
    ifm_errors: bool = False
    dispatch_processes: int = 0


class _Endpoint:
    """A registered model name bound to its session, batcher and dispatcher."""

    __slots__ = ("name", "session", "batcher", "dispatcher")

    def __init__(self, name: str, session: InferenceSession,
                 batcher: MicroBatcher, dispatcher=None):
        self.name = name
        self.session = session
        self.batcher = batcher
        self.dispatcher = dispatcher

    def close(self) -> None:
        self.batcher.close()
        if self.dispatcher is not None:
            self.dispatcher.close()


class ServingGateway:
    """Multi-model serving front end over the inference engine.

    Parameters
    ----------
    config:
        A :class:`ServeConfig`; defaults apply when omitted.
    registry:
        Optional shared :class:`SessionRegistry` (e.g. one registry behind
        several gateways); a private one is created otherwise.
    telemetry:
        Optional shared :class:`ServingTelemetry`; private by default.
    """

    def __init__(self, config: Optional[ServeConfig] = None, *,
                 registry: Optional[SessionRegistry] = None,
                 telemetry: Optional[ServingTelemetry] = None):
        self.config = config or ServeConfig()
        self.registry = registry or SessionRegistry(
            max_sessions=self.config.max_sessions,
            memory_budget_bytes=self.config.memory_budget_bytes)
        self.telemetry = telemetry or ServingTelemetry()
        self._endpoints: Dict[str, _Endpoint] = {}
        self._lock = threading.Lock()
        self._closed = False

    # -- registration -------------------------------------------------------------
    def register(self, name: str, network: Optional[Network] = None,
                 dataset=None, *, injector=None, seed: int = 0,
                 session: Optional[InferenceSession] = None,
                 **session_kwargs) -> InferenceSession:
        """Create (or replace) the endpoint ``name``.

        Either pass a pre-compiled ``session`` (e.g.
        ``EdenResult.session``) or the raw ingredients — ``network``,
        optional ``dataset``, ``injector`` and ``seed`` plus
        ``session_kwargs`` forwarded to :class:`InferenceSession` — and the
        gateway compiles through its registry: registering the same model at
        the same operating point twice reuses the cached plan (a registry
        hit) instead of re-materializing.  Returns the endpoint's session.
        """
        if self._closed:
            raise RuntimeError("gateway is closed")
        if session is not None:
            self.registry.add(session)
        else:
            if network is None:
                raise ValueError("register() needs a session or a network")
            session = self.registry.get_or_compile(
                network, dataset, injector=injector, seed=seed,
                **session_kwargs)
        dispatch, dispatcher = self._dispatcher(session)
        batcher = MicroBatcher(dispatch,
                               max_batch=self.config.max_batch,
                               max_wait_ms=self.config.max_wait_ms,
                               name=name, telemetry=self.telemetry,
                               auto=self.config.auto_flush)
        with self._lock:
            previous = self._endpoints.get(name)
            self._endpoints[name] = _Endpoint(name, session, batcher,
                                              dispatcher)
        if previous is not None:
            previous.close()
        return session

    def _dispatcher(self, session: InferenceSession):
        """Build the endpoint's dispatch path for ``session``.

        Returns a ``(dispatch callable, dispatcher or None)`` pair: with
        ``dispatch_processes`` > 0 the callable is a
        :class:`repro.parallel.PlanDispatcher` running the exported plan in
        worker processes (returned again as the closeable dispatcher);
        otherwise it is an in-process closure running static-shape
        ``predict`` under the per-network lock.
        """
        pad_to = self.config.max_batch if self.config.pad_batches else None
        ifm_errors = self.config.ifm_errors
        if self.config.dispatch_processes > 0:
            # Late import: repro.parallel builds on the engine and is only
            # needed for multi-process gateways.
            from repro.parallel import PlanDispatcher

            dispatcher = PlanDispatcher(
                session, processes=self.config.dispatch_processes,
                pad_to=pad_to, ifm_errors=ifm_errors)
            return dispatcher, dispatcher
        lock = network_lock(session.network)

        def dispatch(batch: np.ndarray) -> np.ndarray:
            with lock:
                return session.predict(batch, pad_to=pad_to,
                                       ifm_errors=ifm_errors)
        return dispatch, None

    def _endpoint(self, name: str) -> _Endpoint:
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise KeyError(f"no endpoint {name!r}; registered: "
                           f"{sorted(self._endpoints)}")
        return endpoint

    def endpoints(self) -> List[str]:
        """Return the registered endpoint names, sorted."""
        return sorted(self._endpoints)

    def session_for(self, name: str) -> InferenceSession:
        """Return the compiled session behind endpoint ``name``."""
        return self._endpoint(name).session

    # -- request paths ------------------------------------------------------------
    def submit(self, name: str, sample: np.ndarray, *,
               deadline: Optional[float] = None) -> Future:
        """Enqueue one ``sample`` for endpoint ``name``.

        ``deadline`` (an absolute :func:`time.perf_counter` timestamp)
        travels with the request into dispatch: if it passes while the
        request is still queued, the future fails with
        :class:`repro.engine.DeadlineExceeded` instead of occupying a batch
        row — see :meth:`MicroBatcher.submit`.  Returns a future resolving
        to the model's output row for that sample.  The async front end:
        many client threads can submit against one compiled plan.
        """
        return self._endpoint(name).batcher.submit(sample, deadline=deadline)

    def predict(self, name: str, sample: np.ndarray) -> np.ndarray:
        """Blocking single-sample inference on endpoint ``name``.

        Submits ``sample``, flushes immediately when the gateway runs
        without a worker thread, and waits for the row.  Returns the output
        row (length ``num_classes``).
        """
        future = self.submit(name, sample)
        if not self.config.auto_flush:
            self._endpoint(name).batcher.flush()
        return future.result()

    def classify(self, name: str, sample: np.ndarray) -> int:
        """Return the argmax class id of endpoint ``name`` for ``sample``."""
        return int(np.argmax(self.predict(name, sample)))

    def predict_many(self, name: str, inputs: np.ndarray, *,
                     coalesce: bool = True) -> np.ndarray:
        """Serve ``inputs`` as single-sample requests on endpoint ``name``.

        ``coalesce=True`` enqueues every sample before dispatch, so the
        batcher packs them ``max_batch`` at a time (the micro-batched path);
        ``coalesce=False`` serves strictly one request per dispatch (the
        serial reference the bit-identity guarantee is stated against).
        Returns outputs of shape ``(len(inputs), num_classes)``.
        """
        endpoint = self._endpoint(name)
        if coalesce:
            futures = [endpoint.batcher.submit(sample) for sample in inputs]
            if not self.config.auto_flush:
                endpoint.batcher.flush()
            return np.stack([future.result() for future in futures])
        rows = []
        for sample in inputs:
            future = endpoint.batcher.submit(sample)
            if not self.config.auto_flush:
                endpoint.batcher.flush()
            rows.append(future.result())
        return np.stack(rows)

    # -- maintenance --------------------------------------------------------------
    def flush(self, name: Optional[str] = None) -> None:
        """Dispatch queued requests now (all endpoints, or just ``name``)."""
        targets = ([self._endpoint(name)] if name is not None
                   else list(self._endpoints.values()))
        for endpoint in targets:
            endpoint.batcher.flush()

    def _harvest_ecc(self) -> None:
        """Fold each endpoint's pending ECC decode deltas into telemetry.

        Endpoints whose session injector carries a codec
        (``correction="rs72_64"`` sessions) accumulate corrected /
        uncorrectable codeword counts as stores materialize; this drains the
        un-reported delta from each such injector and records it under the
        endpoint's name, so snapshots and reports stay cumulative without
        double counting.
        """
        with self._lock:
            endpoints = list(self._endpoints.values())
        for endpoint in endpoints:
            consume = getattr(endpoint.session.injector,
                              "consume_ecc_stats", None)
            if consume is None:
                continue
            delta = consume()
            if delta["corrected"] or delta["uncorrectable"]:
                self.telemetry.record_ecc(endpoint.name, **delta)

    def snapshot(self) -> Dict:
        """Return the telemetry snapshot plus the registry's cache counters."""
        self._harvest_ecc()
        return self.telemetry.snapshot(self.registry.stats)

    def report(self) -> str:
        """Return the serving report (latency, throughput, cache) as text."""
        self._harvest_ecc()
        return self.telemetry.report(self.registry.stats)

    def close(self) -> None:
        """Close every endpoint's batcher and dispatcher; sessions survive."""
        self._closed = True
        with self._lock:
            endpoints = list(self._endpoints.values())
            self._endpoints.clear()
        for endpoint in endpoints:
            endpoint.close()

    def __enter__(self) -> "ServingGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
