"""Local serving replicas: server processes adopting one shared plan export.

The router tier (:mod:`repro.serve.router`) scales one stored model across
N :class:`~repro.serve.server.InferenceServer` processes.  Spinning a
replica up must *not* recompile or re-materialize the corrupted weight
store — EDEN's premise is one DNN written into approximate DRAM once, read
by many consumers — so replicas are forked processes that attach the owning
session's shared-memory plan export
(:func:`repro.parallel.plan.export_session_plan`) and serve it through
:func:`repro.parallel.session_from_plan`.  All replicas of one endpoint
therefore execute the *same* bits: combined with the gateway's static batch
shapes, a request's response is bit-identical no matter which replica the
router picked.

:class:`ReplicaManager` owns the exported plans (retaining adopted
exports, so respawning outlives the original exporter — see
:class:`repro.parallel.plan.ExportedPlan`), spawns
:class:`LocalReplica` processes over the ``fork`` context, collects each
replica's ephemeral port through a pipe, and stops them gracefully
(``SIGTERM`` → the child drains in-flight requests, then exits).  The
router uses :meth:`ReplicaManager.spawn` again to replace a replica its
health checks evicted.
"""

from __future__ import annotations

import signal
import threading
from typing import Dict, List, Optional, Union

from repro.engine.session import InferenceSession
from repro.parallel.dispatch import session_from_plan
from repro.parallel.plan import ExportedPlan, PlanHandle, export_session_plan
from repro.parallel.shm import fork_context
from repro.serve.gateway import ServeConfig, ServingGateway
from repro.serve.server import ServerConfig, serve_in_thread


def _replica_main(handles: Dict[str, PlanHandle], batch_size: int,
                  serve_config: ServeConfig, server_config: ServerConfig,
                  conn) -> None:
    """Child-process entry point: serve the exported plans until told to stop.

    ``handles`` maps endpoint names to the plan exports to attach
    (zero-copy; the parent keeps the segments alive), ``batch_size`` sets
    each rebuilt session's chunking default, ``serve_config`` /
    ``server_config`` configure the gateway and HTTP front end, and
    ``conn`` is the pipe the bound port is reported through.  Runs until
    ``SIGTERM`` arrives or the parent closes the pipe, then drains the
    server (in-flight requests are answered) and exits.  Returns nothing.
    """
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    # A terminal Ctrl-C signals the whole process group; shutdown is the
    # parent's call (SIGTERM or pipe EOF), so the child must not die — or
    # spray KeyboardInterrupt tracebacks — on a foreground interrupt.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    gateway = ServingGateway(serve_config)
    try:
        for name, handle in sorted(handles.items()):
            gateway.register(name,
                             session=session_from_plan(handle, batch_size))
        running = serve_in_thread(gateway, server_config)
    except Exception as error:
        conn.send(("error", repr(error)))
        return
    conn.send(("port", running.port))
    try:
        while not stop.is_set():
            # The pipe doubles as a parent-death watchdog: EOF means the
            # manager is gone and the replica must not outlive it.
            if conn.poll(0.1):
                try:
                    conn.recv()
                except EOFError:
                    pass
                break
    finally:
        running.stop()
        gateway.close()


class LocalReplica:
    """One spawned replica process and its address.

    ``name`` labels the replica (stable across respawns of the same slot),
    ``process`` is the forked server process, ``conn`` the parent end of
    its pipe and ``port`` the HTTP port the child reported after binding.
    Produced by :meth:`ReplicaManager.spawn`.
    """

    __slots__ = ("name", "process", "conn", "port")

    def __init__(self, name: str, process, conn, port: int):
        self.name = name
        self.process = process
        self.conn = conn
        self.port = int(port)

    @property
    def url(self) -> str:
        """The replica's base URL on the loopback interface."""
        return f"http://127.0.0.1:{self.port}"

    def alive(self) -> bool:
        """Return ``True`` while the replica process is still running."""
        return self.process.is_alive()

    def kill(self) -> None:
        """Kill the replica process immediately (``SIGKILL``, no drain).

        The failure-injection hook for tests and benchmarks: the process
        dies mid-request, exactly like a crashed box, and the router's
        health loop must notice.
        """
        self.process.kill()
        self.process.join(timeout=10.0)

    def stop(self, timeout: float = 15.0) -> None:
        """Stop the replica gracefully, waiting up to ``timeout`` seconds.

        Sends ``SIGTERM`` so the child drains in-flight requests before
        exiting; escalates to ``SIGKILL`` if it outlives ``timeout``.
        """
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=timeout)
            if self.process.is_alive():       # pragma: no cover - stuck child
                self.process.kill()
                self.process.join(timeout=5.0)
        self.conn.close()


class ReplicaManager:
    """Spawns and replaces local replica processes over shared plan exports.

    Parameters
    ----------
    endpoints:
        Maps endpoint name to what each replica serves: an
        :class:`~repro.engine.session.InferenceSession` (exported here; the
        manager owns the export) or an already-exported
        :class:`~repro.parallel.plan.ExportedPlan` (retained, so the
        segments survive the original owner's close while replicas may
        still respawn from them).
    batch_size:
        Chunking default of each replica's rebuilt sessions.
    serve_config:
        Gateway config every replica runs (micro-batcher shape —
        ``max_batch`` must match the reference session's padding for the
        bit-identity guarantee); defaults apply when omitted.
    server_config:
        HTTP config every replica runs; the port is forced ephemeral so
        replicas never collide.  Defaults apply when omitted.
    """

    def __init__(self, endpoints: Dict[str, Union[InferenceSession,
                                                  ExportedPlan]], *,
                 batch_size: int = 64,
                 serve_config: Optional[ServeConfig] = None,
                 server_config: Optional[ServerConfig] = None):
        if not endpoints:
            raise ValueError("ReplicaManager needs at least one endpoint")
        self.batch_size = int(batch_size)
        self.serve_config = serve_config or ServeConfig()
        base = server_config or ServerConfig()
        self.server_config = ServerConfig(
            host="127.0.0.1", port=0,
            max_queue_depth=base.max_queue_depth,
            default_deadline_ms=base.default_deadline_ms,
            drain_timeout_s=base.drain_timeout_s,
            max_body_bytes=base.max_body_bytes)
        self._plans: Dict[str, ExportedPlan] = {}
        for name, source in endpoints.items():
            if isinstance(source, ExportedPlan):
                self._plans[name] = source.retain()
            else:
                self._plans[name] = export_session_plan(source)
        self._replicas: List[LocalReplica] = []
        self._spawned = 0
        self._closed = False

    @property
    def replicas(self) -> List[LocalReplica]:
        """The live replicas this manager has spawned (stopped ones pruned)."""
        self._replicas = [r for r in self._replicas if r.alive()]
        return list(self._replicas)

    def spawn(self, timeout: float = 60.0) -> LocalReplica:
        """Fork one replica process and wait for it to bind.

        ``timeout`` bounds the wait for the child's port report.  The child
        attaches every exported plan, registers the endpoints on a private
        gateway and serves them on an ephemeral port.  Returns the
        :class:`LocalReplica` once its HTTP socket is accepting.
        """
        if self._closed:
            raise RuntimeError("ReplicaManager is closed")
        context = fork_context()
        parent_conn, child_conn = context.Pipe()
        name = f"replica-{self._spawned}"
        self._spawned += 1
        handles = {label: plan.handle for label, plan in self._plans.items()}
        process = context.Process(
            target=_replica_main,
            args=(handles, self.batch_size, self.serve_config,
                  self.server_config, child_conn),
            name=f"repro-{name}", daemon=True)
        process.start()
        child_conn.close()
        if not parent_conn.poll(timeout):
            process.kill()
            raise RuntimeError(f"{name} did not report a port in {timeout} s")
        kind, value = parent_conn.recv()
        if kind != "port":
            process.join(timeout=5.0)
            raise RuntimeError(f"{name} failed to start: {value}")
        replica = LocalReplica(name, process, parent_conn, value)
        self._replicas.append(replica)
        return replica

    def spawn_many(self, count: int) -> List[LocalReplica]:
        """Spawn ``count`` replicas; returns them once all are serving."""
        return [self.spawn() for _ in range(int(count))]

    def stop_replica(self, replica: LocalReplica,
                     timeout: float = 15.0) -> None:
        """Gracefully stop ``replica`` (drain, then exit) within ``timeout``."""
        replica.stop(timeout=timeout)
        self._replicas = [r for r in self._replicas if r is not replica]

    def close(self) -> None:
        """Stop every replica and release the plan exports."""
        if self._closed:
            return
        self._closed = True
        for replica in list(self._replicas):
            replica.stop()
        self._replicas = []
        for plan in self._plans.values():
            plan.release()
        self._plans = {}

    def __enter__(self) -> "ReplicaManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
