"""LRU registry of compiled inference sessions.

EDEN's deployment stores each DNN in approximate DRAM once per operating
point; the in-simulation analogue of that stored model is an
:class:`~repro.engine.session.InferenceSession` with its weight store
materialized.  Materialization is the expensive step (one injector pass over
every weight tensor), so a serving process wants to compile each
(model, operating point) pair exactly once and share the plan between all
clients — and to bound how many materialized stores it keeps alive.

:class:`SessionRegistry` is that cache: sessions are keyed by *model identity
× injector fingerprint × seed* (the fingerprint introduced with the engine —
see :func:`repro.engine.injector_fingerprint`), looked up in LRU order, and
evicted when either the session count or the total bytes of materialized
weight stores exceed the configured budget.  Eviction drops the store (the
session stays valid and re-materializes on next use), so an evicted plan
costs one recompilation, never correctness.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.engine.session import InferenceSession, injector_fingerprint
from repro.nn.network import Network
from repro.nn.quantization import ExecutionMode

#: monotonically increasing identity tokens for live networks.  ``id()`` is
#: unusable as a cache key: CPython reuses addresses after garbage
#: collection, so a *new* network could alias a dead one's cached session
#: and serve stale weights.  Tokens are handed out once per network object
#: (weakly keyed, so they die with the network) and never reused.
_MODEL_TOKENS: "weakref.WeakKeyDictionary[Network, int]" = \
    weakref.WeakKeyDictionary()
_MODEL_TOKENS_GUARD = threading.Lock()
_MODEL_TOKEN_COUNTER = itertools.count()


def model_token(network: Network) -> int:
    """Stable, never-reused identity token for a live ``network`` object.

    Two calls with the same object return the same token; a different
    object — even one allocated at a reused ``id()`` after the first was
    collected — always gets a fresh one.  Returns the token as an int.
    """
    with _MODEL_TOKENS_GUARD:
        token = _MODEL_TOKENS.get(network)
        if token is None:
            token = next(_MODEL_TOKEN_COUNTER)
            _MODEL_TOKENS[network] = token
        return token


class _Entry:
    """Cache slot: the compiled session plus its accounted store size."""

    __slots__ = ("session", "nbytes")

    def __init__(self, session: InferenceSession, nbytes: int):
        self.session = session
        self.nbytes = nbytes


def session_store_bytes(session: InferenceSession) -> int:
    """Bytes held by ``session``'s materialized weight store.

    Falls back to the network's parameter footprint when the session has no
    store yet (no injector, or not materialized) — the plan still pins the
    network's weights in memory.  Returns an int byte count.
    """
    store = session.materialized_weights()
    if store:
        return int(sum(array.nbytes for array in store.values()))
    return int(session.network.parameter_bytes())


class SessionRegistry:
    """LRU cache of compiled static-store sessions.

    Parameters
    ----------
    max_sessions:
        Upper bound on cached sessions; the least recently used entry is
        evicted first.
    memory_budget_bytes:
        Optional cap on the summed bytes of materialized weight stores; when
        exceeded, LRU entries are evicted (their stores dropped) until the
        remaining entries fit.  The most recently inserted entry is never
        evicted, so a single plan larger than the budget still serves.
    """

    def __init__(self, max_sessions: int = 8,
                 memory_budget_bytes: Optional[int] = None):
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.max_sessions = int(max_sessions)
        self.memory_budget_bytes = (None if memory_budget_bytes is None
                                    else int(memory_budget_bytes))
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self.stats: Dict[str, int] = {"hits": 0, "misses": 0,
                                      "compilations": 0, "evictions": 0,
                                      "stored_bytes": 0}

    # -- keys ---------------------------------------------------------------------
    @staticmethod
    def key_of(network: Network, injector=None, seed: int = 0,
               execution_mode=None) -> tuple:
        """Cache key for a (``network``, ``injector``, ``seed``) combination.

        Model identity is the network object itself (name plus the stable
        :func:`model_token` — *not* ``id()``, which CPython reuses after
        garbage collection and would let a new network alias a dead one's
        cached session), the operating point is the injector fingerprint —
        which embeds the error model, per-tensor BER assignment, device
        operating point and precision — and ``seed`` selects the
        materialization stream.  ``execution_mode`` (an
        :class:`~repro.nn.quantization.ExecutionMode` or its name) joins the
        key when it is not the FP32 default: the same operating point
        compiled for integer execution is a different plan and must never
        alias the float one.  Returns a hashable tuple.
        """
        key = (network.name, model_token(network),
               injector_fingerprint(injector), int(seed))
        if execution_mode is not None:
            mode = ExecutionMode.resolve(execution_mode)
            if mode is not ExecutionMode.FP32:
                key += (mode.value,)
        return key

    # -- lookup / insert ----------------------------------------------------------
    def get(self, key: tuple) -> Optional[InferenceSession]:
        """Look up ``key``, refreshing its LRU position.

        Counts a hit or miss in :attr:`stats`.  Returns the cached session,
        or ``None`` on a miss.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats["misses"] += 1
            return None
        self._entries.move_to_end(key)
        self.stats["hits"] += 1
        # Re-account on every hit: a session compiled with
        # ``materialize=False`` (or evicted and reused) materializes its
        # store lazily on first use, and the budget must see those bytes.
        entry.nbytes = session_store_bytes(entry.session)
        self._evict_over_budget()
        self._refresh_bytes()
        return entry.session

    def get_or_compile(self, network: Network, dataset=None, *, injector=None,
                       seed: int = 0, materialize: bool = True,
                       **session_kwargs) -> InferenceSession:
        """The session compiled for this operating point, reusing a cached one.

        On a miss, a new :class:`InferenceSession` is built from ``network``,
        ``dataset``, ``injector`` and ``session_kwargs``, its weight store is
        materialized (unless ``materialize=False``), and the plan is cached
        under :meth:`key_of`\\ ``(network, injector, seed)``.  On a hit the
        cached session is returned untouched — registering the same model at
        the same operating point N times compiles once.  Returns the session.
        """
        key = self.key_of(network, injector, seed,
                          execution_mode=session_kwargs.get("execution_mode"))
        session = self.get(key)
        if session is not None:
            return session
        session = InferenceSession(network, dataset, injector=injector,
                                   seed=seed, **session_kwargs)
        if materialize and injector is not None:
            session.materialize()
        self.stats["compilations"] += 1
        self._insert(key, session)
        return session

    def add(self, session: InferenceSession, *, materialize: bool = True
            ) -> tuple:
        """Cache an externally compiled ``session``.

        Used e.g. by :meth:`repro.core.pipeline.EdenResult.serve`.  The key
        is derived from the session's own network/injector/seed, so a
        later :meth:`get_or_compile` with the same operating point hits this
        entry.  ``materialize`` forces the weight store into existence so the
        memory accounting is accurate.  Adding a *different* session object
        under an already-cached key replaces the cached one (counted as a
        hit — fingerprint-identical plans produce identical stores), so the
        registry always tracks the session its callers actually serve.
        Returns the cache key.
        """
        key = self.key_of(session.network, session.injector, session.seed,
                          execution_mode=session.execution_mode)
        if materialize and session.injector is not None:
            session.materialize()
        existing = self._entries.get(key)
        if existing is not None:
            self.stats["hits"] += 1
            if existing.session is not session:
                existing.session = session
            existing.nbytes = session_store_bytes(session)
            self._entries.move_to_end(key)
            self._evict_over_budget()
            self._refresh_bytes()
        else:
            self.stats["compilations"] += 1
            self._insert(key, session)
        return key

    # -- bookkeeping --------------------------------------------------------------
    def _insert(self, key: tuple, session: InferenceSession) -> None:
        self._entries[key] = _Entry(session, session_store_bytes(session))
        self._evict_over_budget()
        self._refresh_bytes()

    def _evict_over_budget(self) -> None:
        """Evict LRU entries until count and byte budgets are satisfied.

        The newest entry always survives: a serving process must be able to
        run the plan it just compiled even if that plan alone exceeds the
        configured budget.
        """
        def over_budget() -> bool:
            if len(self._entries) > self.max_sessions:
                return True
            if self.memory_budget_bytes is None:
                return False
            total = sum(entry.nbytes for entry in self._entries.values())
            return total > self.memory_budget_bytes

        while len(self._entries) > 1 and over_budget():
            _, entry = self._entries.popitem(last=False)
            # Drop the materialized store so the budget actually frees memory;
            # holders of the session can still use it (it re-materializes).
            entry.session.invalidate()
            self.stats["evictions"] += 1

    def _refresh_bytes(self) -> None:
        self.stats["stored_bytes"] = sum(entry.nbytes
                                         for entry in self._entries.values())

    # -- introspection ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def keys(self) -> List[tuple]:
        """Return the cached keys in LRU order (least recently used first)."""
        return list(self._entries)

    def sessions(self) -> List[InferenceSession]:
        """Return the cached sessions in LRU order (least recent first)."""
        return [entry.session for entry in self._entries.values()]

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (``nan`` before any)."""
        total = self.stats["hits"] + self.stats["misses"]
        return self.stats["hits"] / total if total else float("nan")
