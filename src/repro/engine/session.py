"""The inference engine: operating-point-scoped execution of a Network.

EDEN's storage model is *static*: the DNN's weights are written into
approximate DRAM once and then read (with the same stored, possibly-corrupted
bits) by every subsequent inference, while IFMs are transient values that are
rewritten and reread per inference.  The historical evaluation path in this
repo instead re-sampled fresh bit errors into every weight tensor on every
batch — equivalent to re-writing the whole model between batches, and the
dominant cost of every sweep.

:class:`InferenceSession` compiles a :class:`~repro.nn.network.Network` plus
an injector (error model / device operating point / quantization transform)
into an executable plan under one of two read semantics:

* :attr:`ReadSemantics.STATIC_STORE` — the paper-faithful default.  Weight
  tensors are *materialized* into their corrupted form once per operating
  point (one injector pass per tensor, seeded deterministically) and served
  from an in-memory store on every subsequent load; IFM loads still pass
  through the injector per read.  The store is invalidated automatically when
  the session's operating point changes (new error model object, new BER
  assignment, new DRAM operating point).
* :attr:`ReadSemantics.PER_READ` — the historical behavior: every load of
  every tensor draws fresh errors.  Bit-exact with the legacy per-batch path
  for fixed seeds; the right model for transient-error studies (e.g. refresh
  or timing glitches that corrupt the bus rather than the cells).

The session owns batching (``batch_size``), repeat averaging with the
historical reseeding conventions, and optional process-pool sharding of the
evaluation set.  Sharded results are deterministic for a fixed seed but not
bit-identical to the serial order in per-read mode (each shard consumes its
own injection stream); with no injector, or in static-store mode with a
pre-materialized store and error-free IFMs, shards reproduce the serial
result exactly.
"""

from __future__ import annotations

import enum
import threading
import time
import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.datasets import Dataset
from repro.nn.metrics import evaluate as _metric_evaluate
from repro.nn.network import Network
from repro.nn.quantization import ExecutionMode
from repro.nn.tensor import DataKind, TensorSpec

#: sentinel distinguishing "argument not given" from an explicit None injector.
_UNSET = object()

#: module-level worker state for sharded evaluation (set once per worker by
#: the pool initializer instead of pickling the network into every task).
_WORKER_STATE: dict = {}


#: one lock per live Network object (weakly keyed, so a lock's lifetime is
#: exactly its network's).  Sessions install load hooks on the network for
#: the duration of an evaluation/dispatch, and plan exports briefly stub the
#: network's tensors while pickling its skeleton — any two such critical
#: sections on the same network must not overlap.
_NETWORK_LOCKS: "weakref.WeakKeyDictionary[Network, threading.RLock]" = \
    weakref.WeakKeyDictionary()
_NETWORK_LOCKS_GUARD = threading.Lock()


def network_lock(network: Network) -> threading.RLock:
    """Return the canonical lock serializing stateful uses of ``network``.

    The engine installs load hooks on the network during a dispatch and the
    parallel layer stubs its tensors while pickling a skeleton; everything
    that temporarily mutates (or snapshots) a shared network must hold this
    lock.  One re-entrant lock per live network object, weakly keyed.
    """
    with _NETWORK_LOCKS_GUARD:
        lock = _NETWORK_LOCKS.get(network)
        if lock is None:
            lock = _NETWORK_LOCKS[network] = threading.RLock()
        return lock


class DeadlineExceeded(RuntimeError):
    """A dispatch's deadline passed before (or while) the engine served it.

    Raised by :meth:`InferenceSession.predict` when a ``deadline`` is given
    and the monotonic clock passes it at a chunk boundary, and set on request
    futures the serving layer drops at dispatch time (an expired request is
    shed instead of burning a forward pass — see
    :meth:`repro.serve.MicroBatcher.submit`).
    """


class ReadSemantics(enum.Enum):
    """How stored tensors are exposed to DRAM errors during inference."""

    #: weights corrupted once per operating point (paper-faithful storage).
    STATIC_STORE = "static-store"
    #: fresh errors on every load of every tensor (legacy behavior).
    PER_READ = "per-read"


class _StaticStoreReader:
    """Load hook that serves weights from a materialized store.

    Weight loads return the corrupted tensor materialized at session compile
    time (the arrays are treated as read-only by every layer, so no copy is
    taken); any other load — IFMs, or a weight the store does not know —
    passes through the wrapped injector per read.
    """

    __slots__ = ("inner", "store")

    def __init__(self, inner, store: Dict[str, np.ndarray]):
        self.inner = inner
        self.store = store

    def apply(self, array: np.ndarray, spec: TensorSpec) -> np.ndarray:
        cached = self.store.get(spec.name)
        if cached is not None:
            return cached
        if self.inner is None:
            return array
        return self.inner.apply(array, spec)


def _injector_fingerprint(injector) -> tuple:
    """Description of the operating point an injector exposes.

    Error models are immutable (rescaling goes through ``with_ber``, which
    returns a new instance), so identity of the model object — plus the
    per-tensor BER assignment, the DRAM device/operating point/layout and
    the precision — pins down exactly which corrupted store a configuration
    produces.  Objects without value equality (models, correctors, devices)
    are embedded *by reference*: tuple comparison falls back to identity,
    and keeping the tuple as the store key keeps the objects alive, so a
    garbage-collected-and-reallocated object can never alias a cached key.
    Unknown injector types are embedded whole, which can only cause extra
    re-materialization, never a stale store.
    """
    if injector is None:
        return (None,)
    parts: List = [type(injector).__name__, getattr(injector, "bits", None),
                   getattr(injector, "enabled", True)]
    model = getattr(injector, "error_model", None)
    if model is not None:
        parts.append(model)
    per_tensor = getattr(injector, "per_tensor_ber", None)
    if per_tensor is not None:
        parts.append(tuple(sorted(per_tensor.items())))
    for attr in ("device", "op_point", "bank", "layout", "ecc"):
        value = getattr(injector, attr, None)
        if value is not None:
            parts.append(value)
    kinds = getattr(injector, "data_kinds", None)
    if kinds is not None:
        parts.append(tuple(sorted(k.value for k in kinds)))
    corrector = getattr(injector, "corrector", _UNSET)
    if corrector is not _UNSET:
        parts.append(corrector)
    inner = getattr(injector, "inner", None)
    if inner is not None:
        parts.append(_injector_fingerprint(inner))
    if not hasattr(injector, "error_model") and not hasattr(injector, "op_point") \
            and not hasattr(injector, "inner"):
        parts.append(injector)
    return tuple(parts)


def injector_fingerprint(injector) -> tuple:
    """Hashable description of the operating point ``injector`` exposes.

    Two injectors with equal fingerprints produce the same materialized
    weight store for the same seed; the fingerprint is therefore the cache
    key used both by :class:`InferenceSession`'s store invalidation and by
    :class:`repro.serve.SessionRegistry`.  See :func:`_injector_fingerprint`
    for the exact embedding rules (objects without value equality are
    compared by identity).  Returns a hashable tuple.
    """
    return _injector_fingerprint(injector)


def _resolve_codec(correction):
    """Resolve a ``correction=`` argument to an ECC codec model (or None).

    Accepts None (no correction), a codec name registered in
    :data:`repro.core.ecc.CODECS`, or an already-built
    :class:`~repro.core.ecc.RsCodecModel`.
    """
    if correction is None:
        return None
    if isinstance(correction, str):
        from repro.core.ecc import make_codec

        return make_codec(correction)
    return correction


def _reseed(injector, seed: int) -> None:
    """Restart an injector's stream using the runner's historical convention."""
    if injector is None:
        return
    if hasattr(injector, "reseed"):
        injector.reseed(seed)
    elif hasattr(injector, "_rng"):
        injector._rng = np.random.default_rng(seed)


def _resolve_arrays(dataset) -> Tuple[np.ndarray, np.ndarray]:
    """Accept a Dataset (validation split) or an (inputs, labels) pair."""
    if dataset is None:
        raise ValueError(
            "no dataset to evaluate: pass one to evaluate()/baseline() or "
            "construct the InferenceSession with a dataset"
        )
    if isinstance(dataset, Dataset):
        return dataset.val_x, dataset.val_y
    inputs, labels = dataset
    return np.asarray(inputs), np.asarray(labels)


class InferenceSession:
    """Executable plan for evaluating one network under one injection setup.

    Parameters
    ----------
    network, dataset:
        The model and (optionally) the dataset whose validation split
        :meth:`evaluate` scores by default.  ``dataset`` may also be an
        ``(inputs, labels)`` pair.
    injector:
        Any load hook with ``apply(array, spec)`` —
        :class:`~repro.dram.injection.BitErrorInjector`,
        :class:`~repro.dram.injection.DeviceBackedInjector`,
        :class:`~repro.nn.quantization.QuantizedLoadTransform`, or None for
        injection-free evaluation.
    semantics:
        :class:`ReadSemantics`; static-store is the paper-faithful default.
    metric:
        Metric name from :data:`repro.nn.metrics.METRICS` (``"accuracy"`` or
        ``"map"``) that :meth:`evaluate` scores with.
    batch_size:
        Inference batch size (64 matches the historical evaluation path).
    seed, repeats, reseed_stride:
        Defaults for the repeat-averaging loop; per-call overrides win.
    processes:
        When > 1, :meth:`evaluate` shards the evaluation set over a cached
        process pool.
    execution_mode:
        :class:`~repro.nn.quantization.ExecutionMode` (or its string name)
        selecting the GEMM path.  ``FP32`` (the default) is the historical
        float path.  ``INTEGER`` compiles the static store into a fused
        integer plan (:mod:`repro.engine.quantized`) and raises if the
        injector does not support one; ``AUTO`` takes the integer path when
        supported and falls back to ``FP32`` otherwise.
    """

    def __init__(self, network: Network, dataset=None, *, injector=None,
                 semantics: ReadSemantics = ReadSemantics.STATIC_STORE,
                 metric: str = "accuracy", batch_size: int = 64,
                 seed: int = 0, repeats: int = 1, reseed_stride: int = 1,
                 processes: int = 0,
                 execution_mode=ExecutionMode.FP32):
        self.network = network
        self.dataset = dataset
        self.injector = injector
        self.semantics = semantics
        self.metric = metric
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        self.repeats = int(repeats)
        self.reseed_stride = int(reseed_stride)
        self.processes = int(processes)
        self.execution_mode = ExecutionMode.resolve(execution_mode)
        #: compiled integer plans, keyed by (injector fingerprint, seed).
        self._qplans: Dict[tuple, object] = {}
        #: plan adopted from another process's export (see
        #: :meth:`adopt_quantized_plan`); takes precedence over compilation.
        self._adopted_qplan = None
        self._baseline: Optional[float] = None
        self._store: Optional[Dict[str, np.ndarray]] = None
        #: fingerprint the store was materialized for; holds references to
        #: the identity-compared objects inside it (see _injector_fingerprint).
        self._store_key = None
        self._weight_spec_cache: Optional[List[TensorSpec]] = None
        self._pool = None
        #: cached shared-memory export of the compiled plan (see export_plan);
        #: the config tuple records the store key and injector inclusion it
        #: was built for, so a fingerprint change re-exports.
        self._exported = None
        self._exported_config = None
        self.stats = {"evaluations": 0, "baseline_evaluations": 0,
                      "materializations": 0, "predictions": 0}

    # -- constructors -------------------------------------------------------------
    @classmethod
    def from_error_model(cls, network: Network, dataset, error_model, *,
                         ber: Optional[float] = None, bits: int = 32,
                         per_tensor_ber: Optional[Dict[str, float]] = None,
                         corrector=None, data_kinds=None, seed: int = 0,
                         correction=None, **kwargs) -> "InferenceSession":
        """Session driving injection from a fitted/parametric error model.

        ``correction`` layers symbol-level ECC over the injected loads: pass
        a codec name from :data:`repro.core.ecc.CODECS` (e.g. ``"rs72_64"``)
        or an :class:`~repro.core.ecc.RsCodecModel` instance, and the
        compiled store serves post-correction weights with
        corrected/uncorrectable accounting on the injector.
        """
        from repro.dram.injection import BitErrorInjector

        if ber is not None:
            error_model = error_model.with_ber(ber)
        injector = BitErrorInjector(error_model, bits=bits,
                                    per_tensor_ber=per_tensor_ber,
                                    corrector=corrector, data_kinds=data_kinds,
                                    seed=seed, ecc=_resolve_codec(correction))
        return cls(network, dataset, injector=injector, seed=seed, **kwargs)

    @classmethod
    def from_device(cls, network: Network, dataset, device, op_point, *,
                    bits: int = 32, corrector=None, seed: int = 0,
                    correction=None, **kwargs) -> "InferenceSession":
        """Session reading tensors from an ApproximateDram operating point.

        ``correction`` accepts the same codec name / instance as
        :meth:`from_error_model`, decoding every device read through ECC.
        """
        from repro.dram.injection import DeviceBackedInjector

        injector = DeviceBackedInjector(device, op_point, bits=bits,
                                        corrector=corrector, seed=seed,
                                        ecc=_resolve_codec(correction))
        return cls(network, dataset, injector=injector, seed=seed, **kwargs)

    # -- configuration ------------------------------------------------------------
    def set_injector(self, injector) -> None:
        """Swap the injector (the store re-materializes on next use)."""
        self.injector = injector
        self.invalidate()

    def set_semantics(self, semantics: ReadSemantics) -> None:
        """Switch the session's default read ``semantics`` for later calls."""
        self.semantics = semantics

    def invalidate(self) -> None:
        """Drop the materialized store and the recorded weight-spec scan.

        Call after reconfiguring the network (e.g.
        :meth:`~repro.nn.network.Network.set_data_precision`): the next
        evaluation re-records the load specs and re-materializes.  The shard
        worker pool is also shut down — its workers hold a pickled snapshot
        of the network taken at pool creation, which the reconfiguration
        just made stale.
        """
        self._store = None
        self._store_key = None
        self._weight_spec_cache = None
        # Compiled integer plans derive from the store; an adopted plan is
        # externally owned (shared memory) and survives invalidation.
        self._qplans.clear()
        self._drop_export()
        self.close()

    def _drop_export(self) -> None:
        """Unlink the shared-memory plan export, if one exists."""
        if self._exported is not None:
            self._exported.close()
            self._exported = None
            self._exported_config = None

    # -- materialization ----------------------------------------------------------
    def _weight_specs(self) -> List[TensorSpec]:
        """Weight-kind specs in load order, exactly as the layers produce them.

        Recorded once per session with ``dtype_bits=None`` so each spec keeps
        the precision its layer advertises (``Network.set_data_precision``) —
        injectors and correctors see the same ``spec.dtype_bits`` during
        materialization as they would on a per-read load.  Reconfigure the
        network's precision and call :meth:`invalidate` to re-record.
        """
        if self._weight_spec_cache is None:
            self._weight_spec_cache = self.network.weight_specs(dtype_bits=None)
        return self._weight_spec_cache

    def materialize(self, injector=_UNSET, seed: Optional[int] = None
                    ) -> Dict[str, np.ndarray]:
        """Corrupt every weight tensor once and cache the result.

        The injector's stream is restarted at a salted function of ``seed``
        (the session seed by default) for the materialization pass, so the
        same operating point and seed always produce the same stored weights
        — regardless of what was evaluated before or how large the batches
        are.  The salt keeps the weight-corruption stream disjoint from the
        per-repeat IFM streams (which start at the unsalted ``seed``).  The
        pre-existing stream is restored afterwards so per-read IFM injection
        is unaffected; injectors exposing only ``reseed()`` (no ``_rng``
        attribute) are instead re-seeded at the unsalted ``seed``.  Returns
        the ``{tensor name: corrupted array}`` store.
        """
        injector = self.injector if injector is _UNSET else injector
        seed = self.seed if seed is None else int(seed)
        key = (_injector_fingerprint(injector), seed)
        if self._store is not None and self._store_key == key:
            return self._store
        store: Dict[str, np.ndarray] = {}
        if injector is not None:
            params = self.network.named_parameters()
            saved_rng = getattr(injector, "_rng", None)
            _reseed(injector, seed ^ _MATERIALIZE_SEED_SALT)
            try:
                for spec in self._weight_specs():
                    store[spec.name] = injector.apply(params[spec.name].data, spec)
            finally:
                if saved_rng is not None:
                    injector._rng = saved_rng
                else:
                    # reseed()-only injectors (wrappers without a `_rng`
                    # attribute) cannot have their exact stream position
                    # restored; leave them at the unsalted seed — the state
                    # every repeat loop starts from — instead of the
                    # materialization stream's end.
                    _reseed(injector, seed)
            self.stats["materializations"] += 1
        self._store = store
        self._store_key = key
        return store

    def materialized_weights(self) -> Optional[Dict[str, np.ndarray]]:
        """Return the current corrupted weight store.

        ``None`` before materialization (or after :meth:`invalidate`).
        """
        return self._store

    def export_plan(self, *, include_injector: bool = False):
        """Export the compiled plan to shared memory for worker processes.

        Materializes the weight store (when the session has an injector
        under static-store semantics; per-read sessions export no store)
        and packs it — together with the clean weights, the network
        skeleton and the dataset's validation split — into shared-memory
        segments keyed by the session's current injector fingerprint.  The export is cached:
        repeated calls under an unchanged fingerprint return the same
        :class:`repro.parallel.plan.ExportedPlan`, while a changed
        fingerprint (or :meth:`invalidate`) unlinks the stale segments and
        re-exports under a fresh token, which attached workers pick up on
        their next task — fingerprint invalidation across processes.
        ``include_injector`` additionally ships the pickled injector for
        workers that keep injecting per read.  Returns the
        :class:`~repro.parallel.plan.ExportedPlan` (owned by the session;
        dropped by :meth:`invalidate`).
        """
        # Late import: repro.parallel sits above the engine in the layer map
        # (the same documented exception repro.serve uses for reporting).
        from repro.parallel.plan import export_session_plan

        if self.injector is not None and \
                self.semantics is ReadSemantics.STATIC_STORE:
            # Per-read sessions export no store — materializing one would be
            # pure waste; static-store sessions materialize here so the
            # config below reflects the store actually exported.
            self.materialize()
        config = (_injector_fingerprint(self.injector), self.seed,
                  self.semantics, bool(include_injector))
        if self._exported is not None and self._exported_config == config:
            return self._exported
        self._drop_export()
        self._exported = export_session_plan(self,
                                             include_injector=include_injector)
        self._exported_config = config
        return self._exported

    # -- integer execution --------------------------------------------------------
    def _integer_mode_active(self, injector, semantics) -> bool:
        """Whether a call with this ``injector``/``semantics`` runs fused.

        Raises ``ValueError`` when the mode is an explicit ``INTEGER`` but
        the configuration cannot support it (wrong injector type or
        per-read semantics) — a silent FP32 fallback there would misreport
        what was measured.  ``AUTO`` falls back instead.
        """
        if self._adopted_qplan is not None:
            return True
        if injector is None or self.execution_mode is ExecutionMode.FP32:
            return False
        from repro.engine.quantized import integer_plan_supported

        supported = (semantics is ReadSemantics.STATIC_STORE
                     and integer_plan_supported(injector))
        if self.execution_mode is ExecutionMode.INTEGER and not supported:
            raise ValueError(
                "execution_mode=INTEGER needs static-store semantics and a "
                "QuantizedLoadTransform at int4/int8/int16 (without an ECC "
                "corrector); use AUTO for a graceful FP32 fallback")
        return supported

    def _quantized_plan(self, injector, seed: int):
        """The compiled (or adopted) integer plan for this operating point."""
        if self._adopted_qplan is not None:
            return self._adopted_qplan
        key = (_injector_fingerprint(injector), int(seed))
        plan = self._qplans.get(key)
        if plan is None:
            from repro.engine.quantized import compile_quantized_plan

            plan = compile_quantized_plan(self, injector, seed=seed)
            self._qplans[key] = plan
        return plan

    def adopt_quantized_plan(self, plan) -> None:
        """Serve an externally compiled :class:`QuantizedPlan` directly.

        Used by plan-dispatcher workers: the owner process compiles the plan
        once and exports its code arrays through shared memory; workers
        adopt the rebuilt plan instead of re-materializing and re-recovering
        it.  An adopted plan pins the session to integer execution.
        """
        self._adopted_qplan = plan

    def mode_label(self) -> str:
        """Wire-format label of the session's GEMM path.

        Returns ``"int{bits}"`` (e.g. ``"int8"``) when the session executes
        through a fused integer plan, else ``"fp32"`` — the string
        ``GET /v1/models`` advertises per endpoint.
        """
        if self._adopted_qplan is not None:
            return f"int{self._adopted_qplan.bits}"
        try:
            active = self._integer_mode_active(self.injector, self.semantics)
        except ValueError:
            active = False
        return f"int{self.injector.bits}" if active else "fp32"

    def _run_with_plan(self, plan, body):
        """Run ``body()`` with ``plan``'s kernels and float store installed.

        The fused kernels are attached to the shared network object, so the
        whole critical section holds the network lock; the float-store
        reader serves the remaining (non-GEMM) weight loads and passes IFMs
        through untouched — the integer path always reads IFMs from
        reliable DRAM, like ``predict`` defaults to.
        """
        network = self.network
        with network_lock(network):
            was_training = network.training
            if was_training:
                network.eval()
            previous = network.fault_injector
            # The injector swap walks every layer twice per dispatch; skip it
            # when the plan leaves nothing for the reader to serve (every
            # store tensor became codes behind a kernel) and no stale
            # injector could intercept a load.
            swap_hook = bool(plan.float_store) or previous is not None
            if swap_hook:
                network.set_fault_injector(
                    _StaticStoreReader(None, plan.float_store))
            plan.install(network)
            try:
                return body()
            finally:
                plan.uninstall(network)
                if swap_hook:
                    network.set_fault_injector(previous)
                if was_training:
                    network.train()

    # -- evaluation ---------------------------------------------------------------
    def baseline(self, dataset=None) -> float:
        """Return the injection-free validation score on ``dataset``.

        Defaults to the session's own dataset, for which it is memoized.
        """
        if dataset is not None and dataset is not self.dataset:
            inputs, labels = _resolve_arrays(dataset)
            return float(_metric_evaluate(self.network, inputs, labels,
                                          metric=self.metric,
                                          batch_size=self.batch_size))
        if self._baseline is None:
            self.stats["baseline_evaluations"] += 1
            inputs, labels = _resolve_arrays(self.dataset)
            self._baseline = float(_metric_evaluate(self.network, inputs, labels,
                                                    metric=self.metric,
                                                    batch_size=self.batch_size))
        return self._baseline

    def evaluate(self, dataset=None, metric: Optional[str] = None, *,
                 injector=_UNSET, semantics: Optional[ReadSemantics] = None,
                 repeats: Optional[int] = None, seed: Optional[int] = None,
                 stride: Optional[int] = None,
                 processes: Optional[int] = None) -> float:
        """Mean validation score under the session's injection setup.

        Every argument defaults to the session's own setting: ``dataset``
        and ``metric`` select what is scored, ``injector``/``semantics``
        override the injection setup, ``repeats``/``seed``/``stride`` drive
        the repeat-averaging loop, and ``processes`` > 1 shards the
        evaluation set over a worker pool.  The injector's stream is
        restarted at ``seed + repeat * stride`` before each repeat (matching
        every historical call site); in static-store mode the reseed only
        affects the transient IFM stream — the weight store stays fixed
        across repeats, as a real DRAM module would behave.  Returns the
        score averaged over repeats.
        """
        injector = self.injector if injector is _UNSET else injector
        semantics = self.semantics if semantics is None else semantics
        repeats = self.repeats if repeats is None else int(repeats)
        seed = self.seed if seed is None else int(seed)
        stride = self.reseed_stride if stride is None else int(stride)
        metric = self.metric if metric is None else metric
        processes = self.processes if processes is None else int(processes)
        inputs, labels = _resolve_arrays(dataset if dataset is not None
                                         else self.dataset)

        if self._integer_mode_active(injector, semantics):
            # The fused plan executes in-process (its kernels are exact, so
            # there is nothing sharding could change but scheduling).
            return self._evaluate_integer(injector, inputs, labels, metric,
                                          repeats, seed)

        store: Optional[Dict[str, np.ndarray]] = None
        if injector is not None and semantics is ReadSemantics.STATIC_STORE:
            store = self.materialize(injector, seed=seed)

        if processes > 1 and len(inputs) >= 2 * processes:
            return self._evaluate_sharded(injector, store, inputs, labels,
                                          metric, repeats, seed, stride,
                                          processes)
        return self._evaluate_serial(self.network, injector, store, inputs,
                                     labels, metric, repeats, seed, stride)

    #: alias matching the historical ExperimentRunner vocabulary.
    def score(self, injector, *, repeats: Optional[int] = None,
              seed: Optional[int] = None, stride: Optional[int] = None,
              dataset=None, semantics: Optional[ReadSemantics] = None) -> float:
        """Evaluate with an explicit ``injector`` (the runner's vocabulary).

        ``repeats``/``seed``/``stride``/``dataset``/``semantics`` forward to
        :meth:`evaluate`.  Returns the mean score.
        """
        return self.evaluate(dataset, injector=injector, semantics=semantics,
                             repeats=repeats, seed=seed, stride=stride)

    # -- serving ------------------------------------------------------------------
    def predict(self, inputs: np.ndarray, *, pad_to: Optional[int] = None,
                ifm_errors: bool = False, seed: Optional[int] = None,
                deadline: Optional[float] = None) -> np.ndarray:
        """Raw network outputs for ``inputs`` under the compiled plan.

        This is the serving entry point used by :mod:`repro.serve`: instead
        of scoring a metric over a dataset it returns the network's output
        rows, aligned with the ``inputs`` rows.

        Parameters
        ----------
        inputs:
            Array of shape ``(n,) + network.input_shape``.
        pad_to:
            When set, every forward pass runs at the *fixed* batch shape
            ``(pad_to,) + input_shape``: inputs are processed in chunks of
            ``pad_to`` rows, the last chunk zero-padded, and the padding rows
            sliced off the result.  Static shapes make each row's output
            independent of how many (and which) other requests share its
            batch — the property the micro-batcher's bit-identity guarantee
            rests on (BLAS kernels round differently for different matrix
            shapes, so *dynamic* batch shapes do not have it).  ``None``
            chunks by the session's ``batch_size`` without padding.
        ifm_errors:
            Static-store mode serves weights from the materialized store and,
            by default, IFMs from reliable DRAM (no injection) — batching
            then cannot perturb results.  ``True`` additionally routes IFM
            loads through the injector, reseeded at ``seed`` per call:
            deterministic per dispatch, but a row's errors depend on its
            position in the batch, so coalesced and serial dispatches
            diverge.
        seed:
            Stream seed for this call (defaults to the session seed); used to
            key the store materialization and to reseed per-read/IFM streams.
        deadline:
            Optional absolute :func:`time.perf_counter` timestamp.  Checked
            before each chunk's forward pass: once the clock passes it,
            :class:`DeadlineExceeded` is raised instead of computing rows
            nobody will wait for.  A dispatch already past its deadline
            therefore costs nothing; one that expires mid-call aborts at the
            next chunk boundary (individual forward passes are never
            interrupted).

        Returns the stacked output rows as a float32 array of shape
        ``(n, num_classes)``.
        """
        inputs = np.asarray(inputs, dtype=np.float32)
        expected = tuple(self.network.input_shape)
        if inputs.shape[1:] != expected:
            raise ValueError(
                f"predict() expects inputs of shape (n,) + {expected}, "
                f"got {inputs.shape}"
            )
        seed = self.seed if seed is None else int(seed)
        injector = self.injector

        if self._integer_mode_active(injector, self.semantics):
            if ifm_errors:
                raise ValueError(
                    "integer execution serves IFMs from reliable DRAM; use "
                    "execution_mode=FP32 (or AUTO without a quantized "
                    "transform) for ifm_errors=True")
            plan = self._quantized_plan(injector, seed)
            outputs = self._run_with_plan(
                plan, lambda: self._forward_chunks(inputs, pad_to, deadline))
            self.stats["predictions"] += len(inputs)
            return self._stack_outputs(outputs)

        if injector is None:
            hook = self.network.fault_injector
        elif self.semantics is ReadSemantics.STATIC_STORE:
            store = self.materialize(injector, seed=seed)
            hook = _StaticStoreReader(injector if ifm_errors else None, store)
        else:
            hook = injector
        reseed_stream = injector is not None and (
            ifm_errors or self.semantics is ReadSemantics.PER_READ)

        was_training = self.network.training
        if was_training:
            self.network.eval()
        previous = self.network.fault_injector
        self.network.set_fault_injector(hook)
        try:
            if reseed_stream:
                _reseed(injector, seed)
            outputs = self._forward_chunks(inputs, pad_to, deadline)
        finally:
            self.network.set_fault_injector(previous)
            if was_training:
                self.network.train()
        self.stats["predictions"] += len(inputs)
        return self._stack_outputs(outputs)

    def _forward_chunks(self, inputs: np.ndarray, pad_to: Optional[int],
                        deadline: Optional[float]) -> List[np.ndarray]:
        """The shared chunk loop behind :meth:`predict` (both GEMM paths)."""
        chunk = int(pad_to) if pad_to else self.batch_size
        outputs: List[np.ndarray] = []
        for start in range(0, len(inputs), chunk):
            if deadline is not None and time.perf_counter() > deadline:
                raise DeadlineExceeded(
                    f"deadline passed with {len(inputs) - start} of "
                    f"{len(inputs)} rows unserved")
            block = inputs[start:start + chunk]
            if pad_to and len(block) < chunk:
                padded = np.zeros((chunk,) + block.shape[1:],
                                  dtype=block.dtype)
                padded[:len(block)] = block
                outputs.append(self.network.forward(padded)[:len(block)])
            else:
                outputs.append(self.network.forward(block))
        return outputs

    def _stack_outputs(self, outputs: List[np.ndarray]) -> np.ndarray:
        if not outputs:
            return np.empty((0, self.network.num_classes), dtype=np.float32)
        return np.concatenate(outputs)

    def _evaluate_serial(self, network: Network, injector, store, inputs,
                         labels, metric, repeats, seed, stride) -> float:
        if injector is None:
            hook = network.fault_injector   # plain eval under the current hooks
        elif store is not None:
            hook = _StaticStoreReader(injector, store)
        else:
            hook = injector
        scores: List[float] = []
        previous = network.fault_injector
        network.set_fault_injector(hook)
        try:
            for repeat in range(repeats):
                if injector is not None:
                    _reseed(injector, seed + repeat * stride)
                self.stats["evaluations"] += 1
                scores.append(_metric_evaluate(network, inputs, labels,
                                               metric=metric,
                                               batch_size=self.batch_size))
        finally:
            network.set_fault_injector(previous)
        return float(np.mean(scores))

    def _evaluate_integer(self, injector, inputs, labels, metric, repeats,
                          seed) -> float:
        """Scoring loop over the fused integer plan.

        The store is fixed and the plan serves IFMs reliably, so every
        repeat is the same deterministic computation — matching the fake
        path's static-store behavior, where reseeding between repeats only
        moves streams the quantized transform never draws from.
        """
        plan = self._quantized_plan(injector, seed)

        def body() -> float:
            scores: List[float] = []
            for _ in range(repeats):
                self.stats["evaluations"] += 1
                scores.append(_metric_evaluate(self.network, inputs, labels,
                                               metric=metric,
                                               batch_size=self.batch_size))
            return float(np.mean(scores))

        return self._run_with_plan(plan, body)

    # -- sharded evaluation -------------------------------------------------------
    def _worker_pool(self, processes: int):
        """Lazily created, cached pool holding a snapshot of the network."""
        if self._pool is None:
            import concurrent.futures

            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=processes,
                initializer=_init_shard_worker,
                initargs=(self.network, self.metric, self.batch_size),
            )
        return self._pool

    def _evaluate_sharded(self, injector, store, inputs, labels, metric,
                          repeats, seed, stride, processes) -> float:
        """Fan contiguous dataset shards out over worker processes.

        Each shard draws its own injection stream (seeded at ``seed +
        shard_index * _SHARD_SEED_STRIDE``), so results are deterministic for
        a fixed seed but not bit-identical to the serial evaluation order in
        per-read mode.  The weight store, when present, is materialized once
        here and shared by every shard — all shards see the same stored DNN,
        exactly like clients of one DRAM module.
        """
        pool = self._worker_pool(processes)
        bounds = _shard_bounds(len(inputs), processes)
        futures = []
        for index, (lo, hi) in enumerate(bounds):
            futures.append(pool.submit(
                _eval_shard, injector, store, inputs[lo:hi], labels[lo:hi],
                metric, repeats, seed + index * _SHARD_SEED_STRIDE, stride,
            ))
        total = float(len(inputs))
        self.stats["evaluations"] += repeats
        return float(sum(f.result() * (hi - lo)
                         for (lo, hi), f in zip(bounds, futures)) / total)

    def close(self) -> None:
        """Shut down the shard-worker pool, if one was started."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "InferenceSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


#: shard streams are spaced far apart so neighbouring shards (and the repeat
#: reseeds within them, stride <= a few hundred) can never collide.
_SHARD_SEED_STRIDE = 100_003

#: XOR salt separating the weight-materialization stream from the per-repeat
#: IFM streams: repeat 0 reseeds at `seed`, so materializing at the same
#: value would make stored-weight and IFM error positions perfectly
#: correlated instead of independent draws.
_MATERIALIZE_SEED_SALT = 0x5EED5EED


def _shard_bounds(n: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous, near-equal [lo, hi) shard bounds covering range(n)."""
    base, extra = divmod(n, shards)
    bounds = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _init_shard_worker(network: Network, metric: str, batch_size: int) -> None:
    _WORKER_STATE["network"] = network
    _WORKER_STATE["metric"] = metric
    _WORKER_STATE["batch_size"] = batch_size


def _eval_shard(injector, store, inputs, labels, metric, repeats, seed,
                stride) -> float:
    network: Network = _WORKER_STATE["network"]
    previous = network.fault_injector
    if injector is None:
        # Mirror the serial path: a hook installed directly on the network
        # (pickled into the worker's snapshot) stays in effect.
        hook = previous
    elif store is not None:
        hook = _StaticStoreReader(injector, store)
    else:
        hook = injector
    scores = []
    network.set_fault_injector(hook)
    try:
        for repeat in range(repeats):
            if injector is not None:
                _reseed(injector, seed + repeat * stride)
            scores.append(_metric_evaluate(network, inputs, labels,
                                           metric=metric,
                                           batch_size=_WORKER_STATE["batch_size"]))
    finally:
        network.set_fault_injector(previous)
    return float(np.mean(scores))


def evaluate(network: Network, dataset, injector=None, *,
             metric: str = "accuracy",
             semantics: ReadSemantics = ReadSemantics.PER_READ,
             repeats: int = 1, seed: int = 0, reseed_stride: int = 1,
             batch_size: int = 64) -> float:
    """One-shot scoring helper: the shared install/reseed/evaluate/restore loop.

    This is the single copy of the loop that used to be duplicated across the
    sweep, characterization, retraining and table modules: score ``network``
    on ``dataset`` with ``injector`` installed, at ``batch_size``, averaging
    ``repeats`` streams reseeded at ``seed + repeat * reseed_stride``, under
    the named ``metric``.  ``semantics`` defaults to
    :attr:`ReadSemantics.PER_READ` so existing call sites keep their
    historical (bit-exact) results; pass
    :attr:`ReadSemantics.STATIC_STORE` for paper-faithful stored-weight
    behavior.  Callers that score repeatedly should hold an
    :class:`InferenceSession`, which caches the materialized store and the
    weight-spec scan across calls.  Returns the mean validation score.
    """
    session = InferenceSession(network, dataset, injector=injector,
                               semantics=semantics, metric=metric,
                               batch_size=batch_size, seed=seed,
                               repeats=repeats, reseed_stride=reseed_stride)
    return session.evaluate()
