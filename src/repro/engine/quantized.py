"""Compiled integer execution plans: the fused quantized hot path.

EDEN's workloads store int4/int8/int16 models in approximate DRAM; the
fake-quantize transform (:class:`~repro.nn.quantization.QuantizedLoadTransform`)
models that storage faithfully but executes it expensively — every weight
load re-runs quantize→dequantize and every GEMM runs on float32 tensors.

:func:`compile_quantized_plan` turns a static-store session over such a
transform into a :class:`QuantizedPlan`:

* the materialized store (bit errors already applied to the stored
  representation) is *recovered* into narrow integer code arrays via
  :func:`~repro.nn.quantization.recover_codes` — exact, because each stored
  float is ``code * scale`` and recovery divides the scale back out;
* per-layer input scales are calibrated once over the session's dataset, so
  activation quantization is a static elementwise op (no per-batch max
  reduction, which is what makes the integer path batch-shape invariant);
* each ``Linear``/``Conv2D`` gets a fused kernel
  (:mod:`repro.nn.integer`): quantize input → exact integer GEMM on the
  stored codes → dequantize once at the layer output.  ``ReLU``/``MaxPool2D``
  get inference-only kernels that skip the training caches.

Dispatch through an installed plan never re-runs load hooks and never
re-quantizes weights: the only per-dispatch work is the activation
quantization, the GEMMs, and the remaining (non-GEMM) weight loads served
from the plan's float store.  Install/uninstall mutates the shared network
object and must happen under :func:`~repro.engine.session.network_lock` —
:class:`~repro.engine.session.InferenceSession` owns that critical section.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.engine.session import _StaticStoreReader
from repro.nn import integer as IK
from repro.nn.layers import Conv2D, Layer, Linear, MaxPool2D, ReLU
from repro.nn.network import Network
from repro.nn.quantization import (INTEGER_BITS, QuantizationSpec,
                                   QuantizedLoadTransform, recover_codes)
from repro.nn.tensor import DataKind, TensorSpec


def integer_plan_supported(injector) -> bool:
    """Whether ``injector`` describes storage the integer path can execute.

    True for a :class:`QuantizedLoadTransform` at an integer precision whose
    inner injector (if any) corrupts the stored codes without an ECC
    corrector.  A corrector rewrites the *decoded floats*, so the store is
    no longer code-valued and exact recovery does not apply — those
    configurations stay on the FP32 fake-quantize path.
    """
    if not isinstance(injector, QuantizedLoadTransform):
        return False
    if injector.bits not in INTEGER_BITS:
        return False
    inner = injector.inner
    return inner is None or getattr(inner, "corrector", None) is None


class QuantizedPlan:
    """A compiled, store-backed integer execution plan for one network.

    Holds the recovered weight *codes* (narrow int8/int16 arrays — the same
    bytes a packed DRAM image decodes to), their per-tensor scales, the
    statically calibrated input quantization specs, and the float store for
    weights that are not GEMM operands (e.g. batch-norm gamma).  ``bind``
    compiles the per-layer kernel closures against a concrete network
    object; ``install``/``uninstall`` attach them.  The plan itself never
    touches the network's parameters, so one plan can serve the session
    owner and — rebuilt from shared-memory code arrays — any number of
    worker processes, with bit-identical results (every kernel step is
    exact integer arithmetic; see :mod:`repro.nn.integer`).
    """

    def __init__(self, bits: int, codes: Dict[str, np.ndarray],
                 weight_scales: Dict[str, float],
                 ifm_specs: Dict[str, QuantizationSpec],
                 float_store: Dict[str, np.ndarray]):
        self.bits = int(bits)
        self.codes = codes
        self.weight_scales = weight_scales
        self.ifm_specs = ifm_specs
        self.float_store = float_store
        #: GEMM operands derived from the codes: transposed, flattened and
        #: cast once into the exact-GEMM float container.
        self._operands: Dict[str, np.ndarray] = {}
        self._bindings: Optional[Tuple[weakref.ref,
                                       List[Tuple[Layer, Callable]]]] = None

    # -- kernels ------------------------------------------------------------------
    def _operand_for(self, name: str) -> np.ndarray:
        operand = self._operands.get(name)
        if operand is None:
            codes = self.codes[name]
            flat = codes.reshape(codes.shape[0], -1)
            operand = np.ascontiguousarray(
                flat.T.astype(IK.gemm_dtype(self.bits)))
            self._operands[name] = operand
        return operand

    def _ifm_spec(self, layer: Layer) -> QuantizationSpec:
        spec = self.ifm_specs.get(f"{layer.name}.ifm")
        if spec is None:
            # Uncalibrated layer (empty calibration set): unit scale keeps the
            # kernel well-defined; accuracy then depends on input range.
            spec = QuantizationSpec(bits=self.bits, scale=1.0)
        return spec

    def _kernel_for(self, layer: Layer) -> Optional[Callable]:
        if isinstance(layer, Conv2D):
            name = layer.weight.name
            if name not in self.codes:
                return None
            operand = self._operand_for(name)
            w_scale = self.weight_scales[name]
            x_spec = self._ifm_spec(layer)
            bias = layer.bias.data if layer.bias is not None else None
            kernel_size = layer.kernel_size
            stride, padding = layer.stride, layer.padding
            out_channels = layer.out_channels

            def conv_kernel(x, _operand=operand, _w_scale=w_scale,
                            _x_spec=x_spec, _bias=bias):
                return IK.conv2d_integer_forward(
                    x, _operand, _w_scale, _x_spec, _bias, kernel_size,
                    stride, padding, out_channels)
            return conv_kernel
        if isinstance(layer, Linear):
            name = layer.weight.name
            if name not in self.codes:
                return None
            operand = self._operand_for(name)
            w_scale = self.weight_scales[name]
            x_spec = self._ifm_spec(layer)
            bias = layer.bias.data if layer.bias is not None else None

            def linear_kernel(x, _operand=operand, _w_scale=w_scale,
                              _x_spec=x_spec, _bias=bias):
                return IK.linear_integer_forward(x, _operand, _w_scale,
                                                 _x_spec, _bias)
            return linear_kernel
        if isinstance(layer, ReLU):
            return IK.relu_infer
        if isinstance(layer, MaxPool2D):
            kernel_size, stride = layer.kernel_size, layer.stride

            def pool_kernel(x):
                return IK.max_pool2d_infer(x, kernel_size, stride)
            return pool_kernel
        return None

    # -- binding ------------------------------------------------------------------
    def bind(self, network: Network) -> List[Tuple[Layer, Callable]]:
        """Kernel closures for ``network``'s layers (cached per network)."""
        cached = self._bindings
        if cached is not None and cached[0]() is network:
            return cached[1]
        bindings = []
        for layer in network.leaf_layers():
            kernel = self._kernel_for(layer)
            if kernel is not None:
                bindings.append((layer, kernel))
        self._bindings = (weakref.ref(network), bindings)
        return bindings

    def install(self, network: Network) -> None:
        """Attach the fused kernels (caller holds the network lock)."""
        for layer, kernel in self.bind(network):
            layer._int_kernel = kernel

    def uninstall(self, network: Network) -> None:
        """Detach the fused kernels (caller holds the network lock)."""
        for layer, _ in self.bind(network):
            layer._int_kernel = None

    def nbytes(self) -> int:
        """Bytes held by the plan's code arrays and float store."""
        total = sum(array.nbytes for array in self.codes.values())
        total += sum(array.nbytes for array in self.float_store.values())
        return int(total)


class _CalibrationRecorder:
    """Load hook that records per-IFM absolute maxima during calibration."""

    __slots__ = ("max_abs",)

    def __init__(self):
        self.max_abs: Dict[str, float] = {}

    def apply(self, array: np.ndarray, spec: TensorSpec) -> np.ndarray:
        if spec.kind is DataKind.IFM:
            observed = float(np.max(np.abs(array))) if array.size else 0.0
            current = self.max_abs.get(spec.name, 0.0)
            if observed > current:
                self.max_abs[spec.name] = observed
            elif spec.name not in self.max_abs:
                self.max_abs[spec.name] = current
        return array


def _calibration_inputs(session) -> Optional[np.ndarray]:
    from repro.engine.session import _resolve_arrays

    if session.dataset is None:
        return None
    inputs, _ = _resolve_arrays(session.dataset)
    if len(inputs) == 0:
        return None
    return np.asarray(inputs[:max(session.batch_size, 64)], dtype=np.float32)


def _calibrate_ifm_specs(session, store: Dict[str, np.ndarray], bits: int
                         ) -> Dict[str, QuantizationSpec]:
    """Static per-layer input scales from one forward over calibration rows.

    The forward runs with weights served from the corrupted ``store`` (the
    ranges a deployed model would observe) and the recorder as the IFM hook.
    A fixed prefix of the dataset's validation split keeps the result a pure
    function of (dataset, store) — every process calibrating the same plan
    derives identical scales, which the cross-process bit-identity guarantee
    depends on.
    """
    from repro.engine.session import network_lock

    inputs = _calibration_inputs(session)
    recorder = _CalibrationRecorder()
    if inputs is not None:
        network = session.network
        with network_lock(network):
            was_training = network.training
            if was_training:
                network.eval()
            previous = network.fault_injector
            network.set_fault_injector(_StaticStoreReader(recorder, store))
            try:
                network.forward(inputs)
            finally:
                network.set_fault_injector(previous)
                if was_training:
                    network.train()
    specs: Dict[str, QuantizationSpec] = {}
    qmax = float(2 ** (bits - 1) - 1)
    for name, max_abs in recorder.max_abs.items():
        scale = (max_abs / qmax) if max_abs > 0.0 else 1.0
        specs[name] = QuantizationSpec(bits=bits, scale=scale)
    return specs


def compile_quantized_plan(session, injector=None,
                           seed: Optional[int] = None) -> QuantizedPlan:
    """Compile the session's static store into a :class:`QuantizedPlan`.

    Materializes the store for (``injector``, ``seed``) — both default to
    the session's own — recovers the GEMM weights into integer code arrays,
    keeps every other stored weight in the plan's float store, and
    calibrates static input scales.  Raises ``ValueError`` when
    :func:`integer_plan_supported` rejects the injector.
    """
    injector = session.injector if injector is None else injector
    if not integer_plan_supported(injector):
        raise ValueError(
            "integer execution needs a QuantizedLoadTransform at int4/int8/"
            f"int16 without an ECC corrector; got {type(injector).__name__}")
    store = session.materialize(injector, seed=seed)
    bits = injector.bits
    network = session.network
    params = network.named_parameters()
    gemm_weight_names = {layer.weight.name
                         for layer in network.leaf_layers()
                         if isinstance(layer, (Conv2D, Linear))}
    codes: Dict[str, np.ndarray] = {}
    weight_scales: Dict[str, float] = {}
    float_store: Dict[str, np.ndarray] = {}
    for name, stored in store.items():
        if name in gemm_weight_names:
            # spec_for's fingerprint cache returns the exact spec the store
            # was materialized with (the clean data is unchanged), so
            # recovery inverts the stored representation bit-exactly.
            qspec = injector.spec_for(name, params[name].data)
            codes[name] = recover_codes(stored, qspec)
            weight_scales[name] = qspec.scale
        else:
            float_store[name] = stored
    ifm_specs = _calibrate_ifm_specs(session, store, bits)
    return QuantizedPlan(bits=bits, codes=codes, weight_scales=weight_scales,
                         ifm_specs=ifm_specs, float_store=float_store)
