"""Inference engine: sessions that execute a Network at a DRAM operating point.

See :mod:`repro.engine.session` for the two read-semantics modes
(paper-faithful static-store vs legacy per-read) and
:mod:`repro.engine.bench` for the throughput measurement helpers behind the
``bench`` CLI subcommand and ``benchmarks/bench_inference_throughput.py``.
"""

from repro.engine.session import (
    DeadlineExceeded,
    InferenceSession,
    ReadSemantics,
    evaluate,
    injector_fingerprint,
)

__all__ = ["DeadlineExceeded", "InferenceSession", "ReadSemantics",
           "evaluate", "injector_fingerprint"]
