"""Inference engine: sessions that execute a Network at a DRAM operating point.

See :mod:`repro.engine.session` for the two read-semantics modes
(paper-faithful static-store vs legacy per-read) and
:mod:`repro.engine.bench` for the throughput measurement helpers behind the
``bench`` CLI subcommand and ``benchmarks/bench_inference_throughput.py``.
"""

from repro.engine.quantized import (
    QuantizedPlan,
    compile_quantized_plan,
    integer_plan_supported,
)
from repro.engine.session import (
    DeadlineExceeded,
    InferenceSession,
    ReadSemantics,
    evaluate,
    injector_fingerprint,
)
from repro.nn.quantization import ExecutionMode

__all__ = ["DeadlineExceeded", "ExecutionMode", "InferenceSession",
           "QuantizedPlan", "ReadSemantics", "compile_quantized_plan",
           "evaluate", "injector_fingerprint", "integer_plan_supported"]
