"""Inference-throughput measurement for the engine layer.

Shared by the ``bench`` CLI subcommand and
``benchmarks/bench_inference_throughput.py`` (which records the numbers to
``BENCH_inference.json`` and gates CI on the static-store speedup).

Two measurements:

* :func:`measure_inference_throughput` — images/second of the engine at the
  nominal operating point (no injection) and at an approximate operating
  point under both read semantics, per batch size.  Static-store pays the
  weight corruption once per operating point, so its advantage grows as the
  batch size shrinks — the latency-oriented serving regime where the legacy
  path re-corrupted every weight tensor for every small batch.
* :func:`measure_characterization_sweep` — wall clock of a coarse
  characterization-style BER sweep of the *weight store* (weights in
  approximate DRAM, IFMs in a reliable partition — the paper's static DNN
  storage model) under both semantics.  This is the sweep shape that
  dominated every experiment before the engine existed.

Throughput numbers use untrained networks: accuracy is irrelevant to timing,
and skipping training keeps the benchmark a pure measurement of the engine.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from repro.dram.error_models import make_error_model
from repro.dram.injection import BitErrorInjector
from repro.engine.session import InferenceSession, ReadSemantics
from repro.nn.models import build_model_with_dataset, get_spec
from repro.nn.tensor import DataKind

#: BER grid of the sweep benchmark: the low / middle / top of the coarse
#: characterization grid, so the measurement covers both sparse and dense
#: flip regimes.
SWEEP_BERS = (1e-4, 1e-3, 1e-2, 1e-1, 0.25)


def _timed_evaluate(session: InferenceSession, **kwargs) -> float:
    start = time.perf_counter()
    session.evaluate(**kwargs)
    return time.perf_counter() - start


def measure_inference_throughput(model_name: str = "resnet101", *,
                                 ber: float = 1e-3, model_id: int = 0,
                                 batch_sizes: Sequence[int] = (1, 16, 64),
                                 seed: int = 0) -> List[Dict]:
    """Images/second per batch size: nominal vs approximate, both semantics.

    ``model_name`` picks the zoo entry, ``ber``/``model_id`` the weight-store
    error model, ``batch_sizes`` the serving batch sizes to time, and
    ``seed`` fixes every stream.  Returns one record dict per batch size
    with nominal / static-store / per-read images-per-second and the
    semantics speedup.
    """
    network, dataset, spec = build_model_with_dataset(model_name, seed=seed)
    network.eval()
    images = len(dataset.val_y)
    error_model = make_error_model(model_id, ber, seed=seed)

    rows: List[Dict] = []
    for batch_size in batch_sizes:
        row: Dict = {"model": model_name, "batch_size": int(batch_size), "ber": ber}
        nominal = InferenceSession(network, dataset, metric=spec.metric,
                                   batch_size=batch_size, seed=seed)
        row["nominal_images_per_sec"] = images / _timed_evaluate(nominal)

        for semantics, key in ((ReadSemantics.STATIC_STORE, "static_store"),
                               (ReadSemantics.PER_READ, "per_read")):
            injector = BitErrorInjector(error_model, bits=32,
                                        data_kinds={DataKind.WEIGHT}, seed=seed)
            session = InferenceSession(network, dataset, injector=injector,
                                       semantics=semantics, metric=spec.metric,
                                       batch_size=batch_size, seed=seed)
            session.evaluate()   # warm the weak-cell position caches
            row[f"{key}_images_per_sec"] = images / _timed_evaluate(session)
        row["semantics_speedup"] = (row["static_store_images_per_sec"]
                                    / row["per_read_images_per_sec"])
        rows.append(row)
    return rows


def measure_quantized_throughput(model_name: str = "lenet", *,
                                 ber: float = 1e-3, model_id: int = 0,
                                 dtype: str = "int8", pad_to: int = 16,
                                 n_rows: int = 1024, passes: int = 3,
                                 seed: int = 0) -> Dict:
    """Serving-shaped dispatch rate: fused integer plan vs FP32 static store.

    Both paths serve the same zoo model (``model_name``, weight store at
    ``ber`` with error model ``model_id``, streams fixed by ``seed``) from a
    materialized static store and run ``predict(pad_to=...)`` one
    ``pad_to``-row dispatch at a time — the shape the micro-batcher
    produces.  The FP32 path stores the weights as corrupted float32 (the
    historical serving configuration); the ``dtype`` path stores them as
    integer codes and executes the compiled fused plan.  The best of
    ``passes`` timed passes counts, and each pass covers ``n_rows`` rows.
    Returns a record dict with rows/second for both paths and the headline
    ``speedup`` CI gates on.
    """
    import numpy as np

    from repro.nn.quantization import QuantizedLoadTransform

    if not dtype.startswith("int"):
        raise ValueError(f"dtype must be an integer precision, got {dtype!r}")
    bits = int(dtype[3:])
    network, dataset, spec = build_model_with_dataset(model_name, seed=seed)
    network.eval()
    error_model = make_error_model(model_id, ber, seed=seed)
    val_x = np.asarray(dataset.val_x, dtype=np.float32)
    reps = -(-n_rows // len(val_x))
    rows_in = np.concatenate([val_x] * reps)[:n_rows]

    fp32_injector = BitErrorInjector(error_model, bits=32,
                                     data_kinds={DataKind.WEIGHT}, seed=seed)
    fp32_session = InferenceSession(network, dataset, injector=fp32_injector,
                                    metric=spec.metric, seed=seed)
    int_injector = QuantizedLoadTransform(
        bits, inner=BitErrorInjector(error_model, bits=bits,
                                     data_kinds={DataKind.WEIGHT}, seed=seed))
    int_session = InferenceSession(network, dataset, injector=int_injector,
                                   metric=spec.metric, seed=seed,
                                   execution_mode="integer")

    def dispatch_rate(session: InferenceSession) -> float:
        session.predict(rows_in[:pad_to], pad_to=pad_to)   # compile + warm
        best = float("inf")
        for _ in range(passes):
            start = time.perf_counter()
            for lo in range(0, n_rows, pad_to):
                session.predict(rows_in[lo:lo + pad_to], pad_to=pad_to)
            best = min(best, time.perf_counter() - start)
        return n_rows / best

    fp32_rate = dispatch_rate(fp32_session)
    int_rate = dispatch_rate(int_session)
    return {
        "model": model_name,
        "dtype": dtype,
        "ber": float(ber),
        "pad_to": int(pad_to),
        "n_rows": int(n_rows),
        "passes": int(passes),
        "fp32_rows_per_sec": fp32_rate,
        f"{dtype}_rows_per_sec": int_rate,
        "quantized_rows_per_sec": int_rate,
        "speedup": int_rate / fp32_rate,
    }


def measure_characterization_sweep(model_name: str = "resnet101", *,
                                   bers: Sequence[float] = SWEEP_BERS,
                                   model_id: int = 0, batch_size: int = 4,
                                   repeats: int = 1, seed: int = 0,
                                   network=None, dataset=None) -> Dict:
    """Wall clock of a weight-store BER sweep under both read semantics.

    Sweeps ``model_name`` (or an explicitly passed ``network``/``dataset``
    pair) over the ``bers`` grid with error model ``model_id``, evaluating
    at ``batch_size`` with ``repeats`` reseeded streams per point from
    ``seed``.  Returns a dict with the per-read and static-store timings,
    the speedup, and the sweep scores — so callers can also check
    static-store determinism (two identically-seeded runs must agree).
    """
    if network is None or dataset is None:
        network, dataset, spec = build_model_with_dataset(model_name, seed=seed)
        metric = spec.metric
    else:
        metric = get_spec(model_name).metric
    network.eval()
    base_model = make_error_model(model_id, 1e-3, seed=seed)

    def run_sweep(semantics: ReadSemantics) -> Dict:
        injector = BitErrorInjector(base_model, bits=32,
                                    data_kinds={DataKind.WEIGHT}, seed=seed)
        session = InferenceSession(network, dataset, injector=injector,
                                   semantics=semantics, metric=metric,
                                   batch_size=batch_size, seed=seed,
                                   repeats=repeats)
        scores: Dict[float, float] = {}
        start = time.perf_counter()
        for ber in bers:
            injector.set_error_model(base_model.with_ber(ber))
            scores[float(ber)] = session.evaluate()
        return {"seconds": time.perf_counter() - start, "scores": scores}

    legacy = run_sweep(ReadSemantics.PER_READ)
    static = run_sweep(ReadSemantics.STATIC_STORE)
    static_again = run_sweep(ReadSemantics.STATIC_STORE)
    if static["scores"] != static_again["scores"]:
        raise AssertionError("static-store sweep is not deterministic for a "
                             "fixed seed")
    return {
        "model": model_name,
        "bers": [float(b) for b in bers],
        "batch_size": int(batch_size),
        "repeats": int(repeats),
        "per_read_seconds": legacy["seconds"],
        "static_store_seconds": static["seconds"],
        "speedup": legacy["seconds"] / static["seconds"],
        "per_read_scores": legacy["scores"],
        "static_store_scores": static["scores"],
    }
