"""Shared-memory parallel execution: sweep fan-out and serving dispatch.

EDEN's evaluation is a wall of embarrassingly parallel work — BER grids,
per-vendor device sweeps, characterization searches, repeat averaging — and
its serving side wants many workers reading one stored model, exactly like
clients of one physical DRAM module.  This package is the execution
substrate for both:

* :mod:`repro.parallel.shm` — named tensors packed into
  ``multiprocessing.shared_memory`` segments, attached as zero-copy
  read-only views;
* :mod:`repro.parallel.plan` — exporting a network (or a compiled session's
  materialized weight store, keyed by the public injector fingerprint) as a
  plan workers attach to;
* :mod:`repro.parallel.executor` — :class:`SweepExecutor`, the persistent
  worker pool every sweep family
  (:class:`repro.analysis.runner.ExperimentRunner`, the characterization
  searches, the boosting evaluations) routes through;
* :mod:`repro.parallel.dispatch` — :class:`PlanDispatcher`, multi-process
  serving dispatch for :class:`repro.serve.ServingGateway`.

Parallel results are bit-identical to serial ones by construction: every
task is independently seeded with exactly the stream the serial loop would
have restarted, and shared-memory views are bit-exact aliases of the
owner's tensors.  See ``docs/parallel.md``.
"""

from repro.parallel.dispatch import PlanDispatcher, session_from_plan
from repro.parallel.executor import SweepExecutor
from repro.parallel.plan import (
    AttachedPlan,
    ExportedPlan,
    PlanHandle,
    attach_plan,
    export_network_plan,
    export_session_plan,
    network_skeleton,
    restore_network,
)
from repro.parallel.shm import SharedTensorStore, StoreHandle, attach_store

__all__ = [
    "AttachedPlan",
    "ExportedPlan",
    "PlanDispatcher",
    "PlanHandle",
    "SharedTensorStore",
    "StoreHandle",
    "SweepExecutor",
    "attach_plan",
    "attach_store",
    "export_network_plan",
    "export_session_plan",
    "network_skeleton",
    "restore_network",
    "session_from_plan",
]
