"""The persistent sweep executor: one shared-memory plan, many point workers.

:class:`SweepExecutor` owns a process pool whose workers are primed once —
at pool creation — with a zero-copy plan of the network and dataset
(:func:`repro.parallel.plan.export_network_plan`): the skeleton is a few KB
of structure, and every tensor payload is a read-only view into shared
memory.  After that, a sweep point costs exactly one pickled injector plus
two floats on the wire, however large the model is.

Every experiment family routes its independent units through the same two
calls:

* :meth:`SweepExecutor.score_many` — one task per sweep point (BER grids,
  device operating points, per-tensor BER assignments, speculative
  characterization grids).  Each point is independently seeded, so parallel
  results are bit-identical to the serial loop.
* :meth:`SweepExecutor.score_repeats` — one task per *repeat* of a single
  point.  The serial repeat loop restarts the stream at ``seed + repeat *
  stride`` anyway, so repeats are independent too; the executor evaluates
  them concurrently and means the scores in repeat order, reproducing the
  serial mean bit-for-bit.

Workers snapshot the network at pool creation (like the serial runner's
memoization, an executor is bound to one network state): mutate or retrain
the network and you need a fresh executor.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.engine.session import InferenceSession, ReadSemantics
from repro.nn.network import Network
from repro.parallel.plan import PlanHandle, attach_plan, export_network_plan

#: module-level worker state: the session compiled from the pool's plan.
#: Set once per worker by the initializer — tasks then carry only the
#: injector and three ints, never the plan handle (whose skeleton bytes
#: would otherwise be re-pickled into every task).
_WORKER_STATE: Dict[str, InferenceSession] = {}


def _init_worker(handle: PlanHandle, metric: str, semantics: ReadSemantics,
                 batch_size: int, execution_mode) -> None:
    plan = attach_plan(handle)
    _WORKER_STATE["session"] = InferenceSession(
        plan.network, plan.dataset, semantics=semantics, metric=metric,
        batch_size=batch_size, execution_mode=execution_mode,
    )


def _score_task(injector, repeats: int, seed: int, stride: int,
                dataset) -> float:
    return _WORKER_STATE["session"].score(injector, repeats=repeats,
                                          seed=seed, stride=stride,
                                          dataset=dataset)


class SweepExecutor:
    """Process pool primed with a shared-memory plan of one network/dataset.

    Parameters
    ----------
    network, dataset:
        The model and (optional) dataset the workers evaluate.  Both are
        exported to shared memory once; the dataset may also be an
        ``(inputs, labels)`` pair.
    metric, semantics, batch_size:
        Evaluation configuration mirrored from the owning runner/session so
        worker scores are bit-identical to serial ones.
    processes:
        Worker count (must be >= 2 to be worth having; 1 is accepted and
        simply serializes through one worker).
    execution_mode:
        :class:`~repro.nn.quantization.ExecutionMode` (or its name) for the
        worker sessions.  Workers compile their own integer plans from the
        shipped injector — deterministically, so parallel quantized scores
        are bit-identical to the owner's serial ones.
    """

    def __init__(self, network: Network, dataset=None, *,
                 metric: str = "accuracy",
                 semantics: ReadSemantics = ReadSemantics.PER_READ,
                 batch_size: int = 64, processes: int = 2,
                 execution_mode=None):
        from repro.nn.quantization import ExecutionMode

        if processes < 1:
            raise ValueError("processes must be >= 1")
        self.processes = int(processes)
        self.metric = metric
        self.semantics = semantics
        self.batch_size = int(batch_size)
        self.execution_mode = ExecutionMode.resolve(
            execution_mode if execution_mode is not None
            else ExecutionMode.FP32)
        self._plan = export_network_plan(network, dataset)
        import concurrent.futures

        from repro.parallel.shm import fork_context

        self._pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=self.processes,
            mp_context=fork_context(),
            initializer=_init_worker,
            initargs=(self._plan.handle, metric, semantics, self.batch_size,
                      self.execution_mode),
        )

    # -- task submission ----------------------------------------------------------
    def submit_score(self, injector, *, repeats: int = 1, seed: int = 0,
                     stride: int = 1, dataset=None):
        """Submit one scoring task; returns its ``Future[float]``.

        ``injector`` is pickled into the task (fresh per point, matching the
        serial convention that reusing one injector with a stream restart is
        stream-identical to a fresh one); ``repeats``/``seed``/``stride``
        drive the repeat loop exactly like
        :meth:`repro.engine.session.InferenceSession.score`; ``dataset``
        optionally ships an ``(inputs, labels)`` pair for ad-hoc evaluation
        sets (None evaluates the plan's own dataset).
        """
        return self._pool.submit(_score_task, injector, int(repeats),
                                 int(seed), int(stride), dataset)

    def score_many(self, injectors: Sequence, *, repeats: int = 1,
                   seed: int = 0, stride: int = 1, dataset=None) -> List[float]:
        """Score every injector in ``injectors`` concurrently.

        One task per injector (i.e. per sweep point);
        ``repeats``/``seed``/``stride``/``dataset`` apply to each as in
        :meth:`submit_score`.  Returns the scores in input order.
        """
        futures = [self.submit_score(injector, repeats=repeats, seed=seed,
                                     stride=stride, dataset=dataset)
                   for injector in injectors]
        return [float(future.result()) for future in futures]

    def score_repeats(self, injector, *, repeats: int, seed: int = 0,
                      stride: int = 1, dataset=None) -> float:
        """Evaluate one injector's ``repeats`` streams concurrently.

        Repeat ``r`` runs as its own task seeded at ``seed + r * stride``
        with ``repeats=1`` — the exact stream the serial loop would restart
        at — and the per-repeat scores are averaged in repeat order, so the
        result is bit-identical to the serial mean.  ``dataset`` as in
        :meth:`submit_score`.  Returns the mean score.
        """
        futures = [self.submit_score(injector, repeats=1,
                                     seed=seed + repeat * stride,
                                     stride=stride, dataset=dataset)
                   for repeat in range(int(repeats))]
        return float(np.mean([future.result() for future in futures]))

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and unlink the shared plan (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._plan is not None:
            self._plan.close()
            self._plan = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
