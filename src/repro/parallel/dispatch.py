"""Multi-process serving dispatch over an exported session plan.

:class:`PlanDispatcher` turns one compiled
:class:`~repro.engine.session.InferenceSession` into a pool of worker
processes, each holding a private copy of the network *structure* whose
weights — clean and corrupted alike — are zero-copy views into the owner's
shared-memory export (:func:`repro.parallel.plan.export_session_plan`).  A
dispatch ships only the stacked input batch; the worker runs the same
static-shape ``predict`` the in-process gateway would, so results are
bit-identical to serial in-process dispatch (the guarantee
:mod:`repro.serve`'s micro-batcher is specified against).

Because workers own their network copies, two endpoints serving the *same*
network object no longer contend on the per-network dispatch lock — the
process pool is what lets one stored model serve traffic from several
endpoints (or several gateways) concurrently.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.engine.session import InferenceSession, _StaticStoreReader, _reseed
from repro.parallel.plan import PlanHandle, attach_plan

#: module-level worker state: the serving session built by the initializer.
_WORKER_STATE: Dict[str, object] = {}


def session_from_plan(handle: PlanHandle,
                      batch_size: int = 64) -> InferenceSession:
    """Build a serving session in this process from an exported plan.

    ``handle`` is a :class:`~repro.parallel.plan.PlanHandle`; the segments
    it names are attached zero-copy (cached per process by token) and an
    :class:`~repro.engine.session.InferenceSession` is assembled around the
    rebuilt network exactly as the exporting session would execute:
    integer plans are adopted (fused kernels over the shared code arrays),
    static stores are installed as the network's load hook, and per-read
    injectors are installed directly.  ``batch_size`` sets the session's
    chunking default.  This is how a dispatch worker or a
    :mod:`repro.serve.replica` server process turns one shared plan export
    into an executable endpoint without recompiling or re-materializing.
    Returns the ready-to-``predict`` session.
    """
    plan = attach_plan(handle)
    network = plan.network
    session = InferenceSession(network, batch_size=batch_size)
    if plan.qplan is not None:
        # Integer plan: the worker adopts the owner's compiled plan (code
        # arrays mapped zero-copy from shared memory) instead of installing
        # a float store reader — predict() runs the fused kernels.
        session.adopt_quantized_plan(plan.qplan)
    elif plan.store is not None:
        network.set_fault_injector(_StaticStoreReader(plan.injector, plan.store))
    elif plan.injector is not None:
        network.set_fault_injector(plan.injector)
    return session


def _init_plan_worker(handle: PlanHandle, batch_size: int) -> None:
    plan = attach_plan(handle)
    _WORKER_STATE["injector"] = plan.injector
    _WORKER_STATE["session"] = session_from_plan(handle, batch_size)


def _predict_task(batch: np.ndarray, pad_to: Optional[int],
                  seed: Optional[int]) -> np.ndarray:
    session: InferenceSession = _WORKER_STATE["session"]
    injector = _WORKER_STATE["injector"]
    if injector is not None and seed is not None:
        _reseed(injector, seed)
    return session.predict(batch, pad_to=pad_to)


class PlanDispatcher:
    """Dispatch callable running a compiled plan in worker processes.

    Parameters
    ----------
    session:
        The compiled session to export.  Static-store sessions have their
        weight store materialized (if it was not already) and served from
        shared memory; per-read sessions ship their injector instead, and
        workers reseed it per dispatch — the same per-dispatch determinism
        (and the same batching-variance caveat) as the in-process path.
    processes:
        Worker process count.
    pad_to:
        Static batch shape forwarded to ``predict`` (None chunks by the
        session's batch size) — same contract as the in-process dispatcher.
    ifm_errors:
        When True the session's injector is shipped to the workers and
        reseeded per dispatch at the session seed, replicating
        ``predict(..., ifm_errors=True)``; results are then deterministic
        per dispatch but not batching-invariant (see ``docs/serving.md``).
        Per-read sessions ship and reseed their injector the same way
        regardless of this flag — that *is* their read semantics.
    """

    def __init__(self, session: InferenceSession, *, processes: int = 2,
                 pad_to: Optional[int] = None, ifm_errors: bool = False):
        if processes < 1:
            raise ValueError("processes must be >= 1")
        from repro.engine.session import ReadSemantics
        from repro.parallel.plan import export_session_plan

        self.pad_to = pad_to
        self.ifm_errors = ifm_errors
        if ifm_errors and session._integer_mode_active(session.injector,
                                                       session.semantics):
            raise ValueError(
                "ifm_errors dispatch needs the FP32 path; integer-mode "
                "sessions serve IFMs from reliable DRAM")
        per_read = (session.injector is not None
                    and session.semantics is ReadSemantics.PER_READ)
        #: reseed workers per dispatch only when they inject per read.
        self._dispatch_seed = (session.seed if (ifm_errors or per_read)
                               else None)
        # The dispatcher owns its export (rather than borrowing the
        # session's cached one): workers fork lazily, and an export whose
        # lifetime were tied to the session's fingerprint could be unlinked
        # (re-export, registry eviction) before a late-spawning worker
        # attaches.  This plan lives exactly as long as the pool does.
        self._plan = export_session_plan(
            session, include_injector=ifm_errors or per_read)
        import concurrent.futures

        from repro.parallel.shm import fork_context

        self._pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=int(processes),
            mp_context=fork_context(),
            initializer=_init_plan_worker,
            initargs=(self._plan.handle, session.batch_size),
        )

    def submit(self, batch: np.ndarray):
        """Submit one batch to the pool; returns a ``Future`` of the rows.

        Batches are independent (each worker holds its own network copy and
        a deterministic plan), so callers — notably the micro-batcher's
        flush path — may keep several in flight to occupy every worker.
        """
        return self._pool.submit(_predict_task, batch, self.pad_to,
                                 self._dispatch_seed)

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        """Run one batch on a worker; returns the stacked output rows."""
        return self.submit(batch).result()

    def close(self) -> None:
        """Shut the worker pool down and unlink the dispatcher's plan export."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._plan is not None:
            self._plan.close()
            self._plan = None

    def __enter__(self) -> "PlanDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
