"""Zero-copy shared-memory tensor segments for cross-process execution.

A :class:`SharedTensorStore` packs a set of named numpy arrays into one
``multiprocessing.shared_memory`` segment owned by the exporting process and
hands out a picklable :class:`StoreHandle`.  Any process — a forked sweep
worker, a serving dispatch worker — can :func:`attach_store` the handle and
get back read-only numpy views *into the segment itself*: no copy of the
tensors is ever pickled into a task, which is what makes fanning a large
materialized weight store out to N workers O(1) in memory instead of O(N).

Lifetime rules:

* the exporting process owns the segment and must :meth:`~SharedTensorStore.close`
  it (unlink + close); :class:`SharedTensorStore` is a context manager and
  also unlinks on garbage collection as a backstop;
* attached views stay valid for as long as the attaching process keeps its
  mapping open — on POSIX systems an unlink by the owner does not invalidate
  existing mappings, so in-flight workers finish safely even when the owner
  re-exports under a new fingerprint;
* attachments are cached per process by the handle's unique ``token``; a
  re-export (new token) therefore re-attaches, which is how fingerprint-based
  invalidation propagates across processes.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Mapping, Tuple

import numpy as np


def fork_context() -> multiprocessing.context.BaseContext:
    """Return the ``fork`` multiprocessing context the executors run under.

    The parallel subsystem requires ``fork`` (POSIX): forked workers share
    the owner's shared-memory resource tracker, so attach-side
    re-registration is a harmless duplicate and segments live exactly as
    long as their owner says.  Under ``spawn`` each worker would boot its
    own tracker and unlink segments the owner still serves.  Raises
    ``RuntimeError`` on platforms without ``fork``.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError as error:     # pragma: no cover - Windows only
        raise RuntimeError(
            "repro.parallel requires the 'fork' multiprocessing start "
            "method (POSIX); this platform does not provide it"
        ) from error

#: process-unique counter feeding the store tokens (combined with the pid so
#: tokens from a parent and its forked children can never collide).
_TOKEN_COUNTER = itertools.count()


def _next_token(prefix: str) -> str:
    return f"{prefix}-{os.getpid()}-{next(_TOKEN_COUNTER)}"


@dataclass(frozen=True)
class TensorRef:
    """Picklable location of one tensor inside a shared segment."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int
    nbytes: int


@dataclass(frozen=True)
class StoreHandle:
    """Picklable description of an exported :class:`SharedTensorStore`.

    ``segment`` is the OS-level shared-memory name, ``token`` uniquely
    identifies this export (attachments are cached per token), and ``refs``
    locate each tensor inside the segment.
    """

    token: str
    segment: str
    refs: Tuple[TensorRef, ...]


class SharedTensorStore:
    """Owner side of one shared-memory segment holding named tensors.

    Build with :meth:`create`; pass :attr:`handle` to other processes; call
    :meth:`close` (or use as a context manager) when no new attachment will
    be needed.  ``shm`` is the underlying segment, ``refs`` the per-tensor
    locations and ``token`` the unique export id (all three created by
    :meth:`create`, not caller-supplied).
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 refs: Tuple[TensorRef, ...], token: str):
        self._shm = shm
        self._refs = refs
        self._token = token
        self._closed = False

    @classmethod
    def create(cls, arrays: Mapping[str, np.ndarray], *,
               token_prefix: str = "repro") -> "SharedTensorStore":
        """Pack ``arrays`` into a fresh shared segment.

        Every array is copied into the segment once (C-contiguous, native
        dtype); ``token_prefix`` namespaces the export token.  Returns the
        owning :class:`SharedTensorStore`.
        """
        specs: List[Tuple[str, np.ndarray]] = [
            (name, np.ascontiguousarray(array)) for name, array in arrays.items()
        ]
        total = sum(array.nbytes for _, array in specs)
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        refs: List[TensorRef] = []
        offset = 0
        for name, array in specs:
            view = np.ndarray(array.shape, dtype=array.dtype,
                              buffer=shm.buf[offset:offset + array.nbytes])
            view[...] = array
            refs.append(TensorRef(name=name, dtype=array.dtype.str,
                                  shape=tuple(array.shape), offset=offset,
                                  nbytes=array.nbytes))
            offset += array.nbytes
        return cls(shm, tuple(refs), _next_token(token_prefix))

    @property
    def handle(self) -> StoreHandle:
        """The picklable :class:`StoreHandle` other processes attach with."""
        return StoreHandle(token=self._token, segment=self._shm.name,
                           refs=self._refs)

    @property
    def nbytes(self) -> int:
        """Total bytes of tensor payload packed into the segment."""
        return sum(ref.nbytes for ref in self._refs)

    def arrays(self) -> Dict[str, np.ndarray]:
        """Return read-only views of the owner's copy of the tensors."""
        return _views_of(self._shm, self._refs)

    def close(self) -> None:
        """Close and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:     # a live arrays() view still pins the mapping
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:       # pragma: no cover - double unlink race
            pass

    def __enter__(self) -> "SharedTensorStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


def _views_of(shm: shared_memory.SharedMemory,
              refs: Tuple[TensorRef, ...]) -> Dict[str, np.ndarray]:
    views: Dict[str, np.ndarray] = {}
    for ref in refs:
        view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype),
                          buffer=shm.buf[ref.offset:ref.offset + ref.nbytes])
        view.flags.writeable = False
        views[ref.name] = view
    return views


#: per-process attachment cache: token -> (SharedMemory, views).  Keeping the
#: SharedMemory object referenced keeps the mapping (and thus the views) alive.
_ATTACHED: Dict[str, Tuple[shared_memory.SharedMemory, Dict[str, np.ndarray]]] = {}
_ATTACH_LOCK = threading.Lock()


def attach_store(handle: StoreHandle) -> Dict[str, np.ndarray]:
    """Map ``handle``'s segment and return read-only views of its tensors.

    Attachments are cached by ``handle.token``, so repeated tasks referencing
    the same export map the segment once per process.  The views alias shared
    memory directly — zero copies — and are marked non-writeable.  Returns a
    ``{tensor name: view}`` dict.
    """
    with _ATTACH_LOCK:
        cached = _ATTACHED.get(handle.token)
        if cached is not None:
            return cached[1]
        # CPython < 3.13 re-registers the segment with the resource tracker
        # on attach.  All attaching processes here are forked descendants
        # sharing the owner's tracker, whose cache is a set — the duplicate
        # registration is a no-op, and the owner's unlink unregisters the
        # name exactly once.  (Do NOT unregister here: that would delete the
        # owner's registration and make its unlink-time unregister fail.)
        shm = shared_memory.SharedMemory(name=handle.segment)
        views = _views_of(shm, handle.refs)
        _ATTACHED[handle.token] = (shm, views)
        return views


