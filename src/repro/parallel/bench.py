"""Parallel-executor measurements behind ``parallel-bench`` and CI.

Shared by the ``repro.cli parallel-bench`` subcommand and
``benchmarks/bench_parallel.py`` (which records ``BENCH_parallel.json`` and
gates CI).  One call to :func:`measure_parallel` produces:

* **characterization sweep, serial vs N workers** (the headline) — wall
  clock of scoring the coarse characterization's full BER grid (the exact
  grid :func:`repro.core.characterization.coarse_grained_characterization`
  prefetches when it parallelizes: per-read semantics, implausible-value
  corrector, the historical ``seed + repeat * 101`` reseeding) through one
  :class:`~repro.analysis.runner.ExperimentRunner`, serially and through
  the shared-memory executor.  The ratio is the speedup CI gates on —
  *and* the two score dicts must be equal, bit for bit.
* **device sweep** — the same comparison over
  :class:`~repro.dram.device.ApproximateDram` operating points (the
  ``device_sweep`` ``processes`` gap the executor closed).
* **coarse characterization** — the full binary search run serially and
  with ``config.processes = N``; every result field, including the
  ``tested`` memo, must be identical.
* **multi-process serving** — a gateway with ``dispatch_processes`` set,
  its coalesced results compared bit-for-bit against serial dispatch
  through an in-process gateway sharing the same compiled plan fingerprint.

Untrained-but-characterizable networks are trained briefly (accuracy must
move with BER for the characterization search to be non-trivial); every
stream is seeded, so both runs of every comparison are deterministic.
"""

from __future__ import annotations

import os
import time
from typing import Dict

import numpy as np

from repro.dram.device import ApproximateDram, DramOperatingPoint
from repro.dram.error_models import make_error_model
from repro.dram.injection import BitErrorInjector
from repro.nn.models import build_model_with_dataset
from repro.nn.tensor import DataKind

#: reseed stride of the characterization's historical repeat convention.
_CHARACTERIZATION_STRIDE = 101


def _coarse_equal(a, b) -> bool:
    return (a.baseline_score == b.baseline_score
            and a.max_tolerable_ber == b.max_tolerable_ber
            and a.accuracy_at_max == b.accuracy_at_max
            and a.tested == b.tested)


def measure_parallel(model_name: str = "lenet", *, processes: int = 4,
                     epochs: int = 2, repeats: int = 2, model_id: int = 0,
                     n_requests: int = 128, max_batch: int = 16,
                     seed: int = 0) -> Dict:
    """Measure serial-vs-parallel wall clocks and verify bit-identity.

    Builds and briefly trains ``model_name`` (``epochs`` epochs), then runs
    the four comparisons described in the module docstring with
    ``processes`` workers: the characterization BER-grid sweep and coarse
    search (error model ``model_id``, ``repeats`` streams per point), a
    vendor-A device sweep, and a serving gateway with
    ``dispatch_processes`` workers serving ``n_requests`` single-sample
    requests coalesced up to ``max_batch``.  ``seed`` fixes every stream.
    Returns a JSON-serializable dict with the timings, the headline
    ``characterization_sweep_speedup`` and the four ``*_identical`` flags.
    """
    # This harness measures the layers that *use* the executor (runner,
    # characterization, gateway), all of which sit above repro.parallel in
    # the layer map — hence the late imports: `import repro.parallel` itself
    # stays free of upward dependencies.
    from repro.analysis.runner import ExperimentRunner
    from repro.core.characterization import coarse_grained_characterization
    from repro.core.config import AccuracyTarget, EdenConfig
    from repro.core.correction import ImplausibleValueCorrector, ThresholdStore
    from repro.nn.training import Trainer
    from repro.serve.gateway import ServeConfig, ServingGateway

    network, dataset, spec = build_model_with_dataset(model_name, seed=seed)
    Trainer(network, dataset, spec.training_config(epochs=epochs)).fit()
    network.eval()

    config = EdenConfig(evaluation_repeats=repeats, seed=seed)
    grid = [float(ber) for ber in config.ber_grid()]
    error_model = make_error_model(model_id, 1e-3, seed=seed)
    thresholds = ThresholdStore.from_network(network, dataset.train_x)
    corrector = ImplausibleValueCorrector(thresholds)
    target = AccuracyTarget.within_one_percent()

    def sweep_with(runner: ExperimentRunner) -> Dict:
        started = time.perf_counter()
        scores = runner.ber_sweep(error_model, grid, bits=config.bits,
                                  corrector=corrector, repeats=repeats,
                                  seed=seed, stride=_CHARACTERIZATION_STRIDE)
        return {"seconds": time.perf_counter() - started, "scores": scores}

    # -- characterization BER grid: serial vs shared-memory executor -------------
    with ExperimentRunner(network, dataset, metric=spec.metric) as runner:
        serial = sweep_with(runner)
    with ExperimentRunner(network, dataset, metric=spec.metric,
                          processes=processes) as runner:
        runner.ber_sweep(error_model, grid[:processes], bits=config.bits,
                         corrector=corrector, repeats=repeats, seed=seed,
                         stride=_CHARACTERIZATION_STRIDE)   # warm the pool
        parallel = sweep_with(runner)

    # -- device operating points: the closed `processes` gap ---------------------
    device = ApproximateDram(vendor="A", seed=seed)
    op_points = [
        DramOperatingPoint.from_reductions(
            delta_vdd=delta, nominal_vdd=device.nominal_vdd,
            nominal_timing=device.nominal_timing)
        for delta in (0.10, 0.15, 0.20, 0.25)
    ]
    with ExperimentRunner(network, dataset, metric=spec.metric) as runner:
        started = time.perf_counter()
        device_serial = runner.device_sweep(device, op_points, repeats=1,
                                            seed=seed)
        device_serial_seconds = time.perf_counter() - started
    with ExperimentRunner(network, dataset, metric=spec.metric,
                          processes=processes) as runner:
        # >= 2 points so the warm-up actually takes the executor branch
        # (one point would run serially and leave the pool cold).
        runner.device_sweep(device, op_points[:2], repeats=1, seed=seed)
        started = time.perf_counter()
        device_parallel = runner.device_sweep(device, op_points, repeats=1,
                                              seed=seed)
        device_parallel_seconds = time.perf_counter() - started

    # -- the full coarse search: serial vs config.processes ----------------------
    started = time.perf_counter()
    coarse_serial = coarse_grained_characterization(
        network, dataset, error_model, target, config, spec.metric, thresholds)
    coarse_serial_seconds = time.perf_counter() - started
    parallel_config = EdenConfig(evaluation_repeats=repeats, seed=seed,
                                 processes=processes)
    started = time.perf_counter()
    coarse_parallel = coarse_grained_characterization(
        network, dataset, error_model, target, parallel_config, spec.metric,
        thresholds)
    coarse_parallel_seconds = time.perf_counter() - started

    # -- serving: multi-process dispatch vs in-process serial dispatch -----------
    injector = BitErrorInjector(error_model, bits=config.bits,
                                data_kinds={DataKind.WEIGHT}, seed=seed)
    requests = np.asarray(dataset.val_x)[:n_requests]
    serve_record: Dict = {}
    with ServingGateway(ServeConfig(max_batch=max_batch, auto_flush=False)
                        ) as reference_gateway:
        reference_gateway.register(model_name, network, dataset,
                                   injector=injector, seed=seed,
                                   metric=spec.metric)
        reference = reference_gateway.predict_many(model_name, requests,
                                                   coalesce=False)
    with ServingGateway(ServeConfig(max_batch=max_batch, auto_flush=False,
                                    dispatch_processes=min(processes, 2))
                        ) as mp_gateway:
        mp_gateway.register(model_name, network, dataset, injector=injector,
                            seed=seed, metric=spec.metric)
        mp_gateway.predict(model_name, requests[0])        # warm the workers
        started = time.perf_counter()
        coalesced = mp_gateway.predict_many(model_name, requests,
                                            coalesce=True)
        serve_record["multiprocess_seconds"] = time.perf_counter() - started
    serve_record["identical"] = (reference.shape == coalesced.shape
                                 and reference.tobytes() == coalesced.tobytes())

    return {
        "model": model_name,
        "processes": int(processes),
        "cpu_count": os.cpu_count(),
        "repeats": int(repeats),
        "ber_grid": grid,
        "characterization_sweep_serial_seconds": serial["seconds"],
        "characterization_sweep_parallel_seconds": parallel["seconds"],
        "characterization_sweep_speedup": serial["seconds"] / parallel["seconds"],
        "characterization_sweep_identical": serial["scores"] == parallel["scores"],
        "device_sweep_serial_seconds": device_serial_seconds,
        "device_sweep_parallel_seconds": device_parallel_seconds,
        "device_sweep_identical": device_serial == device_parallel,
        "coarse_characterization_serial_seconds": coarse_serial_seconds,
        "coarse_characterization_parallel_seconds": coarse_parallel_seconds,
        "coarse_characterization_identical": _coarse_equal(coarse_serial,
                                                           coarse_parallel),
        "coarse_max_tolerable_ber": coarse_serial.max_tolerable_ber,
        "serving_identical": serve_record["identical"],
        "serving_multiprocess_seconds": serve_record["multiprocess_seconds"],
        "n_requests": int(n_requests),
        "max_batch": int(max_batch),
    }
