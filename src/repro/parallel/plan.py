"""Exporting compiled plans to — and attaching them from — other processes.

A *plan* is everything a worker process needs to execute a network exactly
like its owner: the network structure (a pickled skeleton with all tensor
payloads stripped), the clean weights, optionally the dataset's validation
split, and optionally a materialized static-store (the corrupted weights an
:class:`~repro.engine.session.InferenceSession` serves at one operating
point).  All tensor payloads travel through
:class:`~repro.parallel.shm.SharedTensorStore` segments — exported once,
mapped zero-copy by every worker — while the skeleton itself is a few
kilobytes of structure.

The materialized store is keyed by the session's public injector fingerprint
(:func:`repro.engine.injector_fingerprint`): re-exporting after the
fingerprint changed produces a new token, attached workers re-map on their
next task, and the stale segments are unlinked by the owner — fingerprint
invalidation that works across process boundaries.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.session import network_lock
from repro.nn.network import Network
from repro.parallel.shm import (
    SharedTensorStore,
    StoreHandle,
    attach_store,
    _next_token,
)

#: zero-length stand-in for stripped tensor payloads in the pickled skeleton.
_STUB = np.empty(0, dtype=np.float32)


def _holds_arrays(value) -> bool:
    """True when ``value`` is (or contains, one level deep) an ndarray."""
    if isinstance(value, np.ndarray):
        return True
    if isinstance(value, (tuple, list)):
        return any(isinstance(item, np.ndarray) for item in value)
    return False


def network_skeleton(network: Network) -> bytes:
    """Pickle ``network``'s structure with every tensor payload stripped.

    Parameter data/grad/momentum buffers, private per-layer forward caches
    (``_cache`` and friends hold full activation tensors after an
    evaluation), and the installed fault injector are all swapped for stubs
    around the ``pickle.dumps`` call and restored before returning — the
    live network is untouched.  The stub window runs under the network's
    canonical :func:`repro.engine.session.network_lock`, so it cannot
    interleave with an in-process dispatch (which holds the same lock) or a
    concurrent export of the same network.  Returns the skeleton bytes;
    :func:`restore_network` rebuilds an executable network from them plus a
    weight-view mapping.
    """
    saved_params: List[Tuple[object, np.ndarray, Optional[np.ndarray],
                             Optional[np.ndarray]]] = []
    saved_caches: List[Tuple[object, str, object]] = []
    lock = network_lock(network)
    lock.acquire()
    previous_injector = network.fault_injector
    try:
        for param in network.parameters():
            saved_params.append((param, param.data, param.grad,
                                 param.momentum_buffer))
            param.data = _STUB
            param.grad = None
            param.momentum_buffer = None
        for layer in network.leaf_layers():
            for name, value in list(vars(layer).items()):
                # Callables cover installed fused kernels (`_int_kernel`
                # closures capture full weight-code arrays and would not
                # pickle as part of a skeleton anyway).
                if name.startswith("_") and value is not None and \
                        (_holds_arrays(value) or callable(value)):
                    saved_caches.append((layer, name, value))
                    setattr(layer, name, None)
        network.set_fault_injector(None)
        return pickle.dumps(network, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        network.set_fault_injector(previous_injector)
        for layer, name, value in saved_caches:
            setattr(layer, name, value)
        for param, data, grad, momentum in saved_params:
            param.data = data
            param.grad = grad
            param.momentum_buffer = momentum
        lock.release()


def restore_network(skeleton: bytes, weights: Dict[str, np.ndarray]) -> Network:
    """Rebuild an executable network from a skeleton plus weight views.

    Every parameter's payload is pointed at the corresponding (typically
    shared-memory, read-only) array in ``weights`` — evaluation never writes
    parameters, so read-only views are sufficient.  Returns the network in
    eval mode with no fault injector installed.
    """
    network: Network = pickle.loads(skeleton)
    for param in network.parameters():
        try:
            param.data = weights[param.name]
        except KeyError:
            raise KeyError(f"plan weights are missing parameter {param.name!r}")
    network.eval()
    return network


@dataclass(frozen=True)
class PlanHandle:
    """Picklable description of an exported plan.

    ``token`` uniquely identifies the export (worker attachments are cached
    by it), ``skeleton`` is the stripped network pickle, ``weights`` /
    ``dataset`` / ``store`` are shared-segment handles (the latter two
    optional), ``store_key`` reprs the injector fingerprint the store was
    materialized for, and ``injector`` optionally carries a pickled injector
    for plans that keep injecting on the worker side (per-read semantics or
    per-dispatch IFM errors).
    """

    token: str
    skeleton: bytes
    weights: StoreHandle
    dataset: Optional[StoreHandle] = None
    store: Optional[StoreHandle] = None
    store_key: Optional[str] = None
    injector: Optional[bytes] = None
    #: pickled metadata of a compiled integer plan (bits, per-tensor scales,
    #: which store entries are code arrays).  When set, ``store`` carries the
    #: *integer code arrays* plus the non-GEMM float store — no float detour
    #: for the quantized weights — and workers rebuild a
    #: :class:`repro.engine.quantized.QuantizedPlan` from the mapped views.
    qplan: Optional[bytes] = None


class ExportedPlan:
    """Owner side of an exported plan: the shared segments plus the handle.

    Created by :func:`export_network_plan` / :func:`export_session_plan`
    (``handle`` plus the backing ``segments`` are assembled there, not
    caller-supplied); :meth:`close` unlinks every segment.

    Exports are reference-counted for multi-adopter lifetimes: the creator
    holds one reference (consumed by :meth:`close`), and any other component
    that must outlive the creator's interest — e.g. a
    :class:`repro.serve.replica.ReplicaManager` that respawns crashed
    replicas from the same segments long after the owning session re-exported
    — takes its own with :meth:`retain` and drops it with :meth:`release`.
    The segments are unlinked only when the last reference is gone, so a
    session's fingerprint-driven re-export can never pull live shared memory
    out from under a replica that still needs to adopt it.
    """

    def __init__(self, handle: PlanHandle,
                 segments: List[SharedTensorStore]):
        self.handle = handle
        self._segments = segments
        self._refs = 1
        self._closed = False

    @property
    def nbytes(self) -> int:
        """Total shared-memory bytes held by this export."""
        return sum(segment.nbytes for segment in self._segments)

    @property
    def refs(self) -> int:
        """Live reference count (0 once the segments are unlinked)."""
        return self._refs

    def retain(self) -> "ExportedPlan":
        """Take an additional reference on this export.

        Each successful ``retain()`` must be balanced by one
        :meth:`release`; the segments stay mapped-able until every
        reference is dropped.  Raises ``RuntimeError`` once the export has
        already been unlinked (a late adopter must re-export instead of
        attaching segments that no longer exist).  Returns ``self`` so
        adopters can write ``plan = export.retain()``.
        """
        if self._refs <= 0:
            raise RuntimeError(
                "plan export already unlinked; re-export before retaining")
        self._refs += 1
        return self

    def release(self) -> None:
        """Drop one reference; unlink the segments when none remain."""
        if self._refs <= 0:
            return
        self._refs -= 1
        if self._refs == 0:
            for segment in self._segments:
                segment.close()

    def close(self) -> None:
        """Drop the creator's reference (idempotent).

        The segments are unlinked immediately when no adopter holds a
        :meth:`retain` reference, and otherwise when the last adopter
        calls :meth:`release`.
        """
        if self._closed:
            return
        self._closed = True
        self.release()

    def __enter__(self) -> "ExportedPlan":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


def _export_dataset(dataset) -> Optional[SharedTensorStore]:
    if dataset is None:
        return None
    if hasattr(dataset, "val_x"):
        inputs, labels = np.asarray(dataset.val_x), np.asarray(dataset.val_y)
    else:
        inputs, labels = dataset
        inputs, labels = np.asarray(inputs), np.asarray(labels)
    return SharedTensorStore.create({"inputs": inputs, "labels": labels},
                                    token_prefix="dataset")


def export_network_plan(network: Network, dataset=None) -> ExportedPlan:
    """Export ``network`` (and optionally ``dataset``) for sweep workers.

    The clean weights and the dataset's validation split go into shared
    segments; no materialized store is included — sweep workers materialize
    their own per task, which is deterministic and therefore bit-identical
    to the owner's.  The export runs under the network's canonical lock so
    the weight copy cannot observe another export's stub window.  Returns
    the owning :class:`ExportedPlan`.
    """
    with network_lock(network):
        weights = SharedTensorStore.create(
            {param.name: param.data for param in network.parameters()},
            token_prefix="weights")
        segments = [weights]
        dataset_store = _export_dataset(dataset)
        if dataset_store is not None:
            segments.append(dataset_store)
        handle = PlanHandle(
            token=_next_token("plan"),
            skeleton=network_skeleton(network),
            weights=weights.handle,
            dataset=dataset_store.handle if dataset_store is not None else None,
        )
        return ExportedPlan(handle, segments)


def export_session_plan(session, *, include_injector: bool = False
                        ) -> ExportedPlan:
    """Export ``session``'s compiled plan for serving-dispatch workers.

    Under static-store semantics the session's weight store is materialized
    (when it has an injector) and exported alongside the clean weights,
    keyed by the session's current injector fingerprint; under per-read
    semantics no store exists and the injector itself must travel instead.
    ``include_injector`` pickles the injector so workers can keep injecting
    per read (per-dispatch IFM errors, or per-read semantics).  The export
    runs under the network's canonical lock, like
    :func:`export_network_plan`.  Returns the owning :class:`ExportedPlan`.
    """
    from repro.engine.session import ReadSemantics

    network = session.network
    with network_lock(network):
        weights = SharedTensorStore.create(
            {param.name: param.data for param in network.parameters()},
            token_prefix="weights")
        segments = [weights]
        store_handle = None
        store_key = None
        qplan_bytes = None
        integer_mode = session._integer_mode_active(session.injector,
                                                    session.semantics)
        if integer_mode:
            # Zero-copy quantized lane: ship the recovered code arrays (int8/
            # int16) and the non-GEMM float store — the corrupted float store
            # never crosses the process boundary.
            plan = session._quantized_plan(session.injector, session.seed)
            store_segment = SharedTensorStore.create(
                {**plan.codes, **plan.float_store}, token_prefix="store")
            segments.append(store_segment)
            store_handle = store_segment.handle
            store_key = f"{session._store_key!r}:int{plan.bits}"
            qplan_bytes = pickle.dumps(
                {"bits": plan.bits,
                 "weight_scales": dict(plan.weight_scales),
                 "ifm_scales": {name: spec.scale
                                for name, spec in plan.ifm_specs.items()},
                 "code_names": list(plan.codes),
                 "float_names": list(plan.float_store)},
                protocol=pickle.HIGHEST_PROTOCOL)
        elif (session.injector is not None
                and session.semantics is ReadSemantics.STATIC_STORE):
            store = session.materialize()
            store_segment = SharedTensorStore.create(store,
                                                     token_prefix="store")
            segments.append(store_segment)
            store_handle = store_segment.handle
            store_key = repr(session._store_key)
        dataset_store = _export_dataset(session.dataset)
        if dataset_store is not None:
            segments.append(dataset_store)
        injector_bytes = None
        if include_injector and session.injector is not None and \
                not integer_mode:
            injector_bytes = pickle.dumps(session.injector,
                                          protocol=pickle.HIGHEST_PROTOCOL)
        handle = PlanHandle(
            token=_next_token("plan"),
            skeleton=network_skeleton(network),
            weights=weights.handle,
            dataset=dataset_store.handle if dataset_store is not None else None,
            store=store_handle,
            store_key=store_key,
            injector=injector_bytes,
            qplan=qplan_bytes,
        )
        return ExportedPlan(handle, segments)


class AttachedPlan:
    """Worker side of a plan: the rebuilt network plus attached tensor views.

    ``handle`` is the :class:`PlanHandle` this attachment was built from;
    the remaining attributes are derived during :func:`attach_plan`.
    """

    def __init__(self, handle: PlanHandle):
        self.handle = handle
        self.network = restore_network(handle.skeleton,
                                       attach_store(handle.weights))
        self.dataset: Optional[Tuple[np.ndarray, np.ndarray]] = None
        if handle.dataset is not None:
            views = attach_store(handle.dataset)
            self.dataset = (views["inputs"], views["labels"])
        self.store: Optional[Dict[str, np.ndarray]] = None
        self.qplan = None
        if handle.qplan is not None:
            # Integer plan: the store segment holds code arrays plus the
            # non-GEMM float store; rebuild the executable plan around the
            # mapped views (`store` stays None — the int8 codes must never be
            # served as float weights).
            from repro.engine.quantized import QuantizedPlan
            from repro.nn.quantization import QuantizationSpec

            meta = pickle.loads(handle.qplan)
            views = attach_store(handle.store)
            bits = meta["bits"]
            self.qplan = QuantizedPlan(
                bits=bits,
                codes={name: views[name] for name in meta["code_names"]},
                weight_scales=meta["weight_scales"],
                ifm_specs={name: QuantizationSpec(bits=bits, scale=scale)
                           for name, scale in meta["ifm_scales"].items()},
                float_store={name: views[name]
                             for name in meta["float_names"]},
            )
        elif handle.store is not None:
            self.store = attach_store(handle.store)
        self.injector = (pickle.loads(handle.injector)
                         if handle.injector is not None else None)


#: per-process plan attachments, cached by the handle token.
_ATTACHED_PLANS: Dict[str, AttachedPlan] = {}


def attach_plan(handle: PlanHandle) -> AttachedPlan:
    """Attach (or return the cached attachment of) an exported plan.

    Caching is per ``handle.token``: a re-export under a changed fingerprint
    carries a new token, so workers pick up the new segments on their next
    task — the stale attachment stays mapped (safe) until the process exits.
    Returns the :class:`AttachedPlan`.
    """
    plan = _ATTACHED_PLANS.get(handle.token)
    if plan is None:
        plan = AttachedPlan(handle)
        _ATTACHED_PLANS[handle.token] = plan
    return plan
