"""Analytical GPU performance and DRAM-energy model (paper Section 7.2, GPU).

Stands in for GPGPU-Sim + GPUWattch with a Titan-X-class configuration (paper
Table 5).  GPUs hide most DRAM latency behind massive multithreading, so only
a small residual fraction of the exposed latency reaches execution time —
which is why the paper measures just 2.7% average speedup (5.5% for YOLO-Tiny)
from tRCD reduction while still collecting a 37% average DRAM energy saving
from voltage reduction (GDDR5 dynamic energy dominates because GPU inferences
finish quickly, leaving little background energy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arch.traffic import WorkloadDescriptor
from repro.dram.device import DramOperatingPoint
from repro.dram.energy import DramEnergyModel, EnergyBreakdown, TrafficProfile
from repro.dram.timing import TimingParameters


@dataclass(frozen=True)
class GpuConfig:
    """Simulated GPU configuration (paper Table 5, NVIDIA Titan X)."""

    name: str = "Titan X (Pascal)"
    streaming_multiprocessors: int = 28
    frequency_ghz: float = 1.417
    macs_per_cycle_per_sm: float = 128.0
    memory_type: str = "GDDR5"
    peak_dram_bandwidth_gbps: float = 336.0
    warp_latency_hiding: float = 0.80      # fraction of exposed latency hidden by warps
    memory_level_parallelism: float = 12.0
    frontend_overhead: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.warp_latency_hiding <= 1.0:
            raise ValueError("warp_latency_hiding must be in [0, 1]")


@dataclass
class GpuRunResult:
    execution_time_s: float
    compute_time_s: float
    bandwidth_time_s: float
    exposed_latency_s: float
    traffic: TrafficProfile
    dram_energy: EnergyBreakdown


class GpuModel:
    """Evaluates a workload on the GPU at a DRAM operating point."""

    def __init__(self, config: Optional[GpuConfig] = None):
        self.config = config or GpuConfig()
        self.energy_model = DramEnergyModel(self.config.memory_type)

    def _compute_time_s(self, workload: WorkloadDescriptor) -> float:
        config = self.config
        throughput = (
            config.streaming_multiprocessors * config.frequency_ghz * 1e9
            * config.macs_per_cycle_per_sm
        )
        return workload.macs / throughput * (1.0 + config.frontend_overhead)

    def _exposed_latency_s(self, workload: WorkloadDescriptor, dram_bytes: float,
                           timing: TimingParameters) -> float:
        config = self.config
        misses = dram_bytes / 64.0
        # Only irregular accesses that defeat coalescing/warp scheduling stall the SMs.
        uncovered = workload.random_access_fraction * (1.0 - config.warp_latency_hiding) \
            + (1.0 - workload.random_access_fraction) * 0.01
        hit_rate = workload.row_buffer_hit_rate
        per_miss_ns = (
            (1.0 - hit_rate) * timing.row_miss_latency_ns + hit_rate * timing.row_hit_latency_ns
        )
        return misses * uncovered * per_miss_ns * 1e-9 / config.memory_level_parallelism

    def run(self, workload: WorkloadDescriptor,
            op_point: Optional[DramOperatingPoint] = None) -> GpuRunResult:
        op_point = op_point or DramOperatingPoint.nominal()
        # GPUs stream all weights/feature maps from device memory: the on-chip
        # caches are small relative to DNN working sets, so DRAM traffic is the
        # full footprint.
        dram_bytes = workload.total_bytes
        read_fraction = workload.read_bytes / max(workload.total_bytes, 1.0)

        compute_s = self._compute_time_s(workload)
        bandwidth_s = dram_bytes / (self.config.peak_dram_bandwidth_gbps * 1e9)
        exposed_s = self._exposed_latency_s(workload, dram_bytes, op_point.timing)
        execution_s = max(compute_s, bandwidth_s) + exposed_s

        misses = dram_bytes / 64.0
        traffic = TrafficProfile(
            reads_bytes=dram_bytes * read_fraction,
            writes_bytes=dram_bytes * (1.0 - read_fraction),
            row_activations=misses * (1.0 - workload.row_buffer_hit_rate),
            execution_time_ms=execution_s * 1e3,
        )
        energy = self.energy_model.energy(traffic, voltage=op_point.voltage)
        return GpuRunResult(
            execution_time_s=execution_s,
            compute_time_s=compute_s,
            bandwidth_time_s=bandwidth_s,
            exposed_latency_s=exposed_s,
            traffic=traffic,
            dram_energy=energy,
        )

    def speedup(self, workload: WorkloadDescriptor, eden_op: DramOperatingPoint,
                baseline_op: Optional[DramOperatingPoint] = None) -> float:
        baseline = self.run(workload, baseline_op)
        eden = self.run(workload, eden_op)
        return baseline.execution_time_s / eden.execution_time_s

    def dram_energy_reduction(self, workload: WorkloadDescriptor,
                              eden_op: DramOperatingPoint,
                              baseline_op: Optional[DramOperatingPoint] = None) -> float:
        baseline = self.run(workload, baseline_op)
        eden = self.run(workload, eden_op)
        return 1.0 - eden.dram_energy.total_nj / baseline.dram_energy.total_nj
