"""Analytical multi-core CPU performance and DRAM-energy model (paper Section 7.1).

Stands in for the paper's ZSim + Ramulator + DRAMPower stack.  The model
splits an inference into

* a compute/bandwidth component — MACs over the cores' throughput, or the
  DRAM-bandwidth-limited streaming time, whichever is larger; and
* an exposed-latency component — the fraction of DRAM accesses that neither
  the stream prefetchers nor the out-of-order window can hide (dominated by
  the workload's random-access fraction), each paying the row-miss or row-hit
  latency, overlapped by the memory-level parallelism of the core.

Reducing tRCD shrinks the row-miss portion of the exposed latency (this is
EDEN's CPU speedup); reducing VDD scales the DRAM dynamic energy; shorter
execution also trims background/refresh energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.arch.cache import CacheHierarchy
from repro.arch.traffic import WorkloadDescriptor
from repro.dram.device import DramOperatingPoint
from repro.dram.energy import DramEnergyModel, EnergyBreakdown, TrafficProfile
from repro.dram.timing import TimingParameters


@dataclass(frozen=True)
class CpuConfig:
    """Simulated CPU configuration (paper Table 4)."""

    name: str = "2-core OoO @ 4 GHz"
    cores: int = 2
    frequency_ghz: float = 4.0
    issue_width: int = 4
    macs_per_cycle_per_core: float = 16.0    # SIMD FMA throughput
    memory_type: str = "DDR4-2133"
    channels: int = 2
    peak_dram_bandwidth_gbps: float = 34.0   # 2 channels of DDR4-2133
    sequential_mlp: float = 4.0              # overlapped outstanding streaming misses
    random_mlp: float = 2.0                  # dependent/irregular accesses overlap poorly
    prefetcher_coverage: float = 0.90        # fraction of sequential misses hidden
    random_access_bytes: float = 8.0         # useful bytes per irregular DRAM access
    frontend_overhead: float = 0.10          # non-MAC work (activation, bookkeeping)

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.frequency_ghz <= 0:
            raise ValueError("cores and frequency must be positive")
        if not 0.0 <= self.prefetcher_coverage <= 1.0:
            raise ValueError("prefetcher_coverage must be in [0, 1]")


@dataclass
class CpuRunResult:
    """Execution time and DRAM energy of one inference on the CPU model."""

    execution_time_s: float
    compute_time_s: float
    bandwidth_time_s: float
    exposed_latency_s: float
    traffic: TrafficProfile
    dram_energy: EnergyBreakdown

    @property
    def dram_energy_mj(self) -> float:
        return self.dram_energy.total_mj


class CpuModel:
    """Evaluates a workload on the CPU at a DRAM operating point."""

    def __init__(self, config: Optional[CpuConfig] = None,
                 cache: Optional[CacheHierarchy] = None):
        self.config = config or CpuConfig()
        self.cache = cache or CacheHierarchy()
        self.energy_model = DramEnergyModel(self.config.memory_type)

    # -- timing --------------------------------------------------------------------
    def _compute_time_s(self, workload: WorkloadDescriptor) -> float:
        config = self.config
        throughput = config.cores * config.frequency_ghz * 1e9 * config.macs_per_cycle_per_core
        return workload.macs / throughput * (1.0 + config.frontend_overhead)

    def _bandwidth_time_s(self, dram_bytes: float) -> float:
        return dram_bytes / (self.config.peak_dram_bandwidth_gbps * 1e9)

    def _exposed_latency_s(self, workload: WorkloadDescriptor, dram_bytes: float,
                           timing: TimingParameters) -> float:
        """Latency of DRAM accesses that stall the core.

        Streaming (sequential) accesses are mostly covered by the stream
        prefetchers and overlap well in the OoO window; irregular accesses
        (e.g. YOLO's non-maximum-suppression / thresholding indexing, paper
        Section 7.1) defeat the prefetchers, use only a few bytes of each
        fetched line and form dependent chains that barely overlap — they are
        what makes a workload latency-bound.
        """
        config = self.config
        hit_rate = workload.row_buffer_hit_rate
        per_miss_ns = (
            (1.0 - hit_rate) * timing.row_miss_latency_ns + hit_rate * timing.row_hit_latency_ns
        )

        sequential_bytes = dram_bytes * (1.0 - workload.random_access_fraction)
        random_bytes = dram_bytes * workload.random_access_fraction

        sequential_misses = sequential_bytes / 64.0
        sequential_stall = (
            sequential_misses * (1.0 - config.prefetcher_coverage)
            * per_miss_ns / config.sequential_mlp
        )
        random_misses = random_bytes / config.random_access_bytes
        random_stall = random_misses * per_miss_ns / config.random_mlp
        return (sequential_stall + random_stall) * 1e-9

    def run(self, workload: WorkloadDescriptor,
            op_point: Optional[DramOperatingPoint] = None) -> CpuRunResult:
        """One inference at the given DRAM operating point (nominal if omitted)."""
        op_point = op_point or DramOperatingPoint.nominal()
        dram_bytes = self.cache.dram_bytes(workload)
        read_fraction = workload.read_bytes / max(workload.total_bytes, 1.0)

        compute_s = self._compute_time_s(workload)
        bandwidth_s = self._bandwidth_time_s(dram_bytes)
        exposed_s = self._exposed_latency_s(workload, dram_bytes, op_point.timing)
        execution_s = max(compute_s, bandwidth_s) + exposed_s

        misses = dram_bytes / 64.0
        traffic = TrafficProfile(
            reads_bytes=dram_bytes * read_fraction,
            writes_bytes=dram_bytes * (1.0 - read_fraction),
            row_activations=misses * (1.0 - workload.row_buffer_hit_rate),
            execution_time_ms=execution_s * 1e3,
        )
        energy = self.energy_model.energy(traffic, voltage=op_point.voltage)
        return CpuRunResult(
            execution_time_s=execution_s,
            compute_time_s=compute_s,
            bandwidth_time_s=bandwidth_s,
            exposed_latency_s=exposed_s,
            traffic=traffic,
            dram_energy=energy,
        )

    # -- headline metrics -----------------------------------------------------------
    def speedup(self, workload: WorkloadDescriptor, eden_op: DramOperatingPoint,
                baseline_op: Optional[DramOperatingPoint] = None) -> float:
        baseline = self.run(workload, baseline_op)
        eden = self.run(workload, eden_op)
        return baseline.execution_time_s / eden.execution_time_s

    def dram_energy_reduction(self, workload: WorkloadDescriptor,
                              eden_op: DramOperatingPoint,
                              baseline_op: Optional[DramOperatingPoint] = None) -> float:
        baseline = self.run(workload, baseline_op)
        eden = self.run(workload, eden_op)
        return 1.0 - eden.dram_energy.total_nj / baseline.dram_energy.total_nj
