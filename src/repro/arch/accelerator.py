"""Systolic-array DNN accelerator model: Eyeriss and TPU (paper Section 7.2).

Stands in for SCALE-Sim + DRAMPower.  The model captures the two properties
the paper's accelerator results hinge on:

* DRAM traffic is determined by the on-chip SRAM buffer: weights and feature
  maps that fit are fetched once, anything larger is re-streamed per tile —
  so the big-buffer TPU moves less DRAM data per inference than tiny-buffer
  Eyeriss for the same network;
* the access pattern is fully deterministic and double-buffered, so
  prefetching hides essentially all DRAM latency — reducing tRCD produces *no
  speedup* (the paper observes exactly this), while reducing VDD still cuts
  DRAM energy by ~30%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arch.traffic import WorkloadDescriptor
from repro.dram.device import DramOperatingPoint
from repro.dram.energy import DramEnergyModel, EnergyBreakdown, TrafficProfile


@dataclass(frozen=True)
class AcceleratorConfig:
    """Simulated accelerator configuration (paper Table 6)."""

    name: str
    pe_rows: int
    pe_cols: int
    sram_bytes: int
    frequency_ghz: float
    memory_type: str = "DDR4-2400"
    dram_bandwidth_gbps: float = 19.2
    pe_utilization: float = 0.75

    def __post_init__(self) -> None:
        if self.pe_rows <= 0 or self.pe_cols <= 0:
            raise ValueError("PE array dimensions must be positive")
        if self.sram_bytes <= 0:
            raise ValueError("SRAM buffer must be positive")
        if not 0.0 < self.pe_utilization <= 1.0:
            raise ValueError("pe_utilization must be in (0, 1]")

    @property
    def num_pes(self) -> int:
        return self.pe_rows * self.pe_cols

    def with_memory(self, memory_type: str, dram_bandwidth_gbps: float
                    ) -> "AcceleratorConfig":
        return AcceleratorConfig(
            name=self.name, pe_rows=self.pe_rows, pe_cols=self.pe_cols,
            sram_bytes=self.sram_bytes, frequency_ghz=self.frequency_ghz,
            memory_type=memory_type, dram_bandwidth_gbps=dram_bandwidth_gbps,
            pe_utilization=self.pe_utilization,
        )


#: Eyeriss: 12x14 PE array, 324KB global buffer (paper Table 6).
EYERISS_CONFIG = AcceleratorConfig(
    name="Eyeriss", pe_rows=12, pe_cols=14, sram_bytes=324 * 1024, frequency_ghz=0.25,
)

#: TPU: 256x256 MAC array, 24MB unified buffer (paper Table 6).
TPU_CONFIG = AcceleratorConfig(
    name="TPU", pe_rows=256, pe_cols=256, sram_bytes=24 * 1024 * 1024, frequency_ghz=0.70,
    dram_bandwidth_gbps=34.0,
)


@dataclass
class AcceleratorRunResult:
    execution_time_s: float
    compute_time_s: float
    bandwidth_time_s: float
    traffic: TrafficProfile
    dram_energy: EnergyBreakdown
    dram_bytes: float


class AcceleratorModel:
    """Evaluates a workload on a systolic accelerator at a DRAM operating point."""

    def __init__(self, config: AcceleratorConfig):
        self.config = config
        self.energy_model = DramEnergyModel(config.memory_type)

    # -- traffic -------------------------------------------------------------------
    def dram_traffic_bytes(self, workload: WorkloadDescriptor) -> float:
        """DRAM bytes per inference given the on-chip buffer capacity.

        Weights and feature maps are tiled through the SRAM buffer.  Data that
        fits entirely is fetched once; otherwise the re-fetch factor grows
        gently with the ratio of footprint to buffer (double-buffered tiling
        re-reads boundary tiles, it does not re-stream everything).
        """
        sram = float(self.config.sram_bytes)
        weight_bytes = workload.weight_bytes * workload.scale
        fm_bytes = (workload.ifm_bytes + workload.ofm_bytes) * workload.scale

        def refetch_factor(footprint: float) -> float:
            if footprint <= sram:
                return 1.0
            return min(2.5, 1.0 + 0.25 * (footprint / sram) ** 0.5)

        return weight_bytes * refetch_factor(weight_bytes) + fm_bytes * refetch_factor(fm_bytes)

    # -- timing --------------------------------------------------------------------
    def _compute_time_s(self, workload: WorkloadDescriptor) -> float:
        config = self.config
        throughput = config.num_pes * config.frequency_ghz * 1e9 * config.pe_utilization
        return workload.macs / throughput

    def run(self, workload: WorkloadDescriptor,
            op_point: Optional[DramOperatingPoint] = None) -> AcceleratorRunResult:
        op_point = op_point or DramOperatingPoint.nominal()
        dram_bytes = self.dram_traffic_bytes(workload)
        read_fraction = (
            (workload.weight_bytes + workload.ifm_bytes)
            / max(workload.weight_bytes + workload.ifm_bytes + workload.ofm_bytes, 1.0)
        )

        compute_s = self._compute_time_s(workload)
        bandwidth_s = dram_bytes / (self.config.dram_bandwidth_gbps * 1e9)
        # Deterministic, double-buffered access: DRAM latency is fully hidden,
        # so execution time is the max of compute and bandwidth — reduced tRCD
        # therefore yields no speedup (paper Section 7.2).
        execution_s = max(compute_s, bandwidth_s)

        misses = dram_bytes / 64.0
        traffic = TrafficProfile(
            reads_bytes=dram_bytes * read_fraction,
            writes_bytes=dram_bytes * (1.0 - read_fraction),
            row_activations=misses * 0.15,     # streaming: high row-buffer locality
            execution_time_ms=execution_s * 1e3,
        )
        energy = self.energy_model.energy(traffic, voltage=op_point.voltage)
        return AcceleratorRunResult(
            execution_time_s=execution_s,
            compute_time_s=compute_s,
            bandwidth_time_s=bandwidth_s,
            traffic=traffic,
            dram_energy=energy,
            dram_bytes=dram_bytes,
        )

    def speedup(self, workload: WorkloadDescriptor, eden_op: DramOperatingPoint,
                baseline_op: Optional[DramOperatingPoint] = None) -> float:
        baseline = self.run(workload, baseline_op)
        eden = self.run(workload, eden_op)
        return baseline.execution_time_s / eden.execution_time_s

    def dram_energy_reduction(self, workload: WorkloadDescriptor,
                              eden_op: DramOperatingPoint,
                              baseline_op: Optional[DramOperatingPoint] = None) -> float:
        baseline = self.run(workload, baseline_op)
        eden = self.run(workload, eden_op)
        return 1.0 - eden.dram_energy.total_nj / baseline.dram_energy.total_nj
