"""Memory-controller support for EDEN (paper Section 5).

Three pieces of hardware support make EDEN deployable:

* **Bounding logic** — a one-cycle comparator on every load that zeroes
  implausible values (the hardware realization of
  :class:`repro.core.correction.ImplausibleValueCorrector`).
* **Coarse-grained mapping support** — the ability to change the module-wide
  voltage and timing parameters at run time rather than only at boot.
* **Fine-grained mapping support** — per-partition voltage (Voltron-style
  bank-granularity power delivery) and timing parameters, plus the metadata
  to track which partition runs at which point (the paper budgets 8 bits of
  voltage step + 4 bits of tRCD per partition, ≤2KB for subarray granularity
  on an 8GB module).

This module provides the cost/latency accounting for those pieces and a small
:class:`MemoryControllerConfig` the platform models consult.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.dram.device import DramOperatingPoint
from repro.dram.geometry import DramGeometry, PartitionLevel

#: metadata bits per partition: 8-bit voltage step + 4-bit tRCD code (paper §5).
VOLTAGE_METADATA_BITS = 8
TRCD_METADATA_BITS = 4
METADATA_BITS_PER_PARTITION = VOLTAGE_METADATA_BITS + TRCD_METADATA_BITS

#: the paper bounds useful partition counts at 2^10 (most DNNs have <=1024
#: distinct error-resilient data types).
MAX_USEFUL_PARTITIONS = 1 << 10


@dataclass(frozen=True)
class BoundingLogic:
    """The implausible-value bounding logic added to the memory controller."""

    latency_cycles: int = 1
    comparators: int = 2          # upper and lower bound compare
    threshold_registers: int = 2

    def added_load_latency_cycles(self, enabled: bool = True) -> int:
        """Extra cycles added to each DNN load when correction is enabled."""
        return self.latency_cycles if enabled else 0


@dataclass
class MemoryControllerConfig:
    """Capabilities and bookkeeping of an EDEN-enabled memory controller."""

    geometry: DramGeometry = field(default_factory=DramGeometry)
    supports_runtime_parameter_change: bool = True
    partition_level: PartitionLevel = PartitionLevel.BANK
    bounding_logic: BoundingLogic = field(default_factory=BoundingLogic)
    partition_op_points: Dict[int, DramOperatingPoint] = field(default_factory=dict)

    # -- metadata accounting ---------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        return min(self.geometry.num_partitions(self.partition_level), MAX_USEFUL_PARTITIONS)

    @property
    def metadata_bytes(self) -> int:
        """Bytes of controller metadata to track per-partition parameters."""
        return (self.num_partitions * METADATA_BITS_PER_PARTITION + 7) // 8

    # -- partition parameter management -----------------------------------------------
    def set_partition_op_point(self, partition_id: int, op_point: DramOperatingPoint) -> None:
        if not self.supports_runtime_parameter_change:
            raise RuntimeError(
                "this memory controller cannot change DRAM parameters at run time"
            )
        if not 0 <= partition_id < self.geometry.num_partitions(self.partition_level):
            raise ValueError(f"partition {partition_id} out of range")
        self.partition_op_points[partition_id] = op_point

    def op_point_for(self, partition_id: int,
                     default: Optional[DramOperatingPoint] = None) -> DramOperatingPoint:
        return self.partition_op_points.get(partition_id, default or DramOperatingPoint.nominal())

    def set_module_op_point(self, op_point: DramOperatingPoint) -> None:
        """Coarse-grained mapping: one operating point for every partition."""
        for partition_id, _ in self.geometry.partitions(self.partition_level):
            self.partition_op_points[partition_id] = op_point

    def distinct_op_points(self) -> int:
        return len(set(self.partition_op_points.values())) if self.partition_op_points else 0
