"""End-to-end platform evaluation helpers used by the benchmark harness.

Given a DNN workload name, a numeric precision and the (ΔVDD, ΔtRCD) that
EDEN's characterization allows for that DNN (paper Table 3), these helpers
compute the DRAM-energy reduction and speedup on each platform — the numbers
plotted in Figures 13-14 and reported in Section 7.2.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.arch.accelerator import AcceleratorModel, EYERISS_CONFIG, TPU_CONFIG
from repro.arch.cpu import CpuModel
from repro.arch.gpu import GpuModel
from repro.arch.traffic import workload_for
from repro.dram.device import DramOperatingPoint


class Platform(enum.Enum):
    """The four inference platforms the paper evaluates."""

    CPU = "cpu"
    GPU = "gpu"
    EYERISS = "eyeriss"
    TPU = "tpu"


@dataclass(frozen=True)
class PlatformResult:
    """Headline metrics for one (platform, workload, precision) combination."""

    platform: Platform
    workload: str
    bits: int
    delta_vdd: float
    delta_trcd_ns: float
    energy_reduction: float       # fractional DRAM energy saving vs nominal
    speedup: float                # execution-time speedup vs nominal
    ideal_trcd_speedup: float     # speedup with tRCD -> ~0 (upper bound)

    @property
    def energy_reduction_percent(self) -> float:
        return 100.0 * self.energy_reduction

    @property
    def speedup_percent(self) -> float:
        return 100.0 * (self.speedup - 1.0)


def _model_for(platform: Platform):
    if platform is Platform.CPU:
        return CpuModel()
    if platform is Platform.GPU:
        return GpuModel()
    if platform is Platform.EYERISS:
        return AcceleratorModel(EYERISS_CONFIG)
    if platform is Platform.TPU:
        return AcceleratorModel(TPU_CONFIG)
    raise ValueError(f"unknown platform {platform!r}")  # pragma: no cover - exhaustive


def _op_point(delta_vdd: float, delta_trcd_ns: float) -> DramOperatingPoint:
    return DramOperatingPoint.from_reductions(delta_vdd=delta_vdd,
                                              delta_trcd_ns=delta_trcd_ns)


def evaluate_platform(platform: Platform, workload_name: str,
                      delta_vdd: float, delta_trcd_ns: float,
                      bits: int = 32,
                      model=None) -> PlatformResult:
    """Energy reduction and speedup of EDEN's operating point on one platform."""
    model = model or _model_for(platform)
    workload = workload_for(workload_name, bits=bits)
    baseline_op = DramOperatingPoint.nominal()
    eden_op = _op_point(delta_vdd, delta_trcd_ns)
    # "Ideal" activation latency: tRCD reduced to (almost) zero, nominal voltage.
    ideal_op = DramOperatingPoint.from_reductions(
        delta_trcd_ns=baseline_op.timing.trcd_ns - 0.01
    )

    energy_reduction = model.dram_energy_reduction(workload, eden_op, baseline_op)
    speedup = model.speedup(workload, eden_op, baseline_op)
    ideal_speedup = model.speedup(workload, ideal_op, baseline_op)
    return PlatformResult(
        platform=platform,
        workload=workload_name,
        bits=bits,
        delta_vdd=delta_vdd,
        delta_trcd_ns=delta_trcd_ns,
        energy_reduction=energy_reduction,
        speedup=speedup,
        ideal_trcd_speedup=ideal_speedup,
    )


def evaluate_many(platform: Platform,
                  operating_points: Dict[str, Dict[int, Dict[str, float]]],
                  ) -> Dict[str, Dict[int, PlatformResult]]:
    """Evaluate a platform over {workload: {bits: {"delta_vdd":…, "delta_trcd_ns":…}}}."""
    model = _model_for(platform)
    results: Dict[str, Dict[int, PlatformResult]] = {}
    for workload_name, per_bits in operating_points.items():
        results[workload_name] = {}
        for bits, reductions in per_bits.items():
            results[workload_name][bits] = evaluate_platform(
                platform, workload_name,
                delta_vdd=reductions["delta_vdd"],
                delta_trcd_ns=reductions["delta_trcd_ns"],
                bits=bits, model=model,
            )
    return results


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, used for the paper's Gmean bars."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
