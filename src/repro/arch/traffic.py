"""Workload descriptors: the DRAM traffic and compute shape of each DNN.

The platform models need, per network, how many bytes of weights/IFMs/OFMs
move through DRAM per inference, how much compute the inference performs, and
how latency-sensitive its access pattern is (the paper singles out YOLO's
non-maximum suppression and thresholding steps as producing random accesses
that prefetchers cannot cover, which is why YOLO sees the largest tRCD
speedups on the CPU).

Two sources are supported:

* :data:`PAPER_WORKLOADS` — descriptors derived from the paper's Table 1
  footprints and publicly known MAC counts of the original networks, used by
  the system-level benchmarks so that energy/latency results have the paper's
  proportions (our scaled-down analogues are far too small to be
  memory-bound); and
* :func:`workload_from_network` — measured traffic of an in-repo analogue,
  used by the examples and unit tests to exercise the same code path end to
  end.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.nn.network import Network
from repro.nn.tensor import DataKind

MB = float(1 << 20)
GIGA = 1e9


@dataclass(frozen=True)
class WorkloadDescriptor:
    """One DNN inference workload as seen by a platform model."""

    name: str
    weight_bytes: float               # bytes of weights read per inference (FP32)
    ifm_bytes: float                  # bytes of IFMs read per inference (FP32)
    ofm_bytes: float                  # bytes of OFMs written per inference (FP32)
    macs: float                       # multiply-accumulates per inference
    random_access_fraction: float     # fraction of DRAM accesses prefetchers miss
    row_buffer_hit_rate: float = 0.70
    bits: int = 32

    def __post_init__(self) -> None:
        if min(self.weight_bytes, self.ifm_bytes, self.ofm_bytes, self.macs) < 0:
            raise ValueError("traffic quantities must be non-negative")
        if not 0.0 <= self.random_access_fraction <= 1.0:
            raise ValueError("random_access_fraction must be in [0, 1]")
        if not 0.0 <= self.row_buffer_hit_rate <= 1.0:
            raise ValueError("row_buffer_hit_rate must be in [0, 1]")

    # -- derived quantities ------------------------------------------------------
    @property
    def scale(self) -> float:
        """Byte scaling for the numeric precision relative to FP32."""
        return self.bits / 32.0

    @property
    def read_bytes(self) -> float:
        return (self.weight_bytes + self.ifm_bytes) * self.scale

    @property
    def write_bytes(self) -> float:
        return self.ofm_bytes * self.scale

    @property
    def total_bytes(self) -> float:
        return self.read_bytes + self.write_bytes

    @property
    def dram_lines(self) -> float:
        return self.total_bytes / 64.0

    @property
    def bytes_per_mac(self) -> float:
        """Memory intensity: DRAM bytes moved per MAC (higher = more memory bound)."""
        return self.total_bytes / max(self.macs, 1.0)

    def at_precision(self, bits: int) -> "WorkloadDescriptor":
        if bits not in (4, 8, 16, 32):
            raise ValueError("bits must be 4, 8, 16 or 32")
        return replace(self, bits=bits)


#: Descriptors for the paper's workloads.  Weight/IFM byte totals follow the
#: paper's Table 1 (IFM+Weight size column, split per the model's known
#: parameter count), MAC counts are the published figures for each network,
#: and the random-access fraction encodes the paper's observation that the
#: YOLO family is latency-bound while SqueezeNet/ResNet are not.
PAPER_WORKLOADS: Dict[str, WorkloadDescriptor] = {
    "resnet101": WorkloadDescriptor(
        name="resnet101", weight_bytes=163.0 * MB, ifm_bytes=37.0 * MB,
        ofm_bytes=37.0 * MB, macs=7.6 * GIGA, random_access_fraction=0.01,
    ),
    "mobilenetv2": WorkloadDescriptor(
        name="mobilenetv2", weight_bytes=22.7 * MB, ifm_bytes=45.8 * MB,
        ofm_bytes=45.8 * MB, macs=0.30 * GIGA, random_access_fraction=0.03,
    ),
    "vgg16": WorkloadDescriptor(
        name="vgg16", weight_bytes=528.0 * MB, ifm_bytes=109.0 * MB,
        ofm_bytes=109.0 * MB, macs=15.5 * GIGA, random_access_fraction=0.03,
    ),
    "densenet201": WorkloadDescriptor(
        name="densenet201", weight_bytes=76.0 * MB, ifm_bytes=363.0 * MB,
        ofm_bytes=363.0 * MB, macs=4.3 * GIGA, random_access_fraction=0.04,
    ),
    "squeezenet1.1": WorkloadDescriptor(
        name="squeezenet1.1", weight_bytes=4.8 * MB, ifm_bytes=49.0 * MB,
        ofm_bytes=49.0 * MB, macs=0.35 * GIGA, random_access_fraction=0.005,
    ),
    "alexnet": WorkloadDescriptor(
        name="alexnet", weight_bytes=233.0 * MB, ifm_bytes=8.0 * MB,
        ofm_bytes=8.0 * MB, macs=0.72 * GIGA, random_access_fraction=0.02,
    ),
    "yolo": WorkloadDescriptor(
        name="yolo", weight_bytes=237.0 * MB, ifm_bytes=123.0 * MB,
        ofm_bytes=123.0 * MB, macs=17.5 * GIGA, random_access_fraction=0.35,
        row_buffer_hit_rate=0.55,
    ),
    "yolo-tiny": WorkloadDescriptor(
        name="yolo-tiny", weight_bytes=33.8 * MB, ifm_bytes=17.5 * MB,
        ofm_bytes=17.5 * MB, macs=3.5 * GIGA, random_access_fraction=0.40,
        row_buffer_hit_rate=0.55,
    ),
    "lenet": WorkloadDescriptor(
        name="lenet", weight_bytes=1.65 * MB, ifm_bytes=0.65 * MB,
        ofm_bytes=0.65 * MB, macs=0.005 * GIGA, random_access_fraction=0.02,
    ),
}


def workload_for(name: str, bits: int = 32) -> WorkloadDescriptor:
    """Look up a paper workload descriptor at the requested precision."""
    key = name.lower()
    if key not in PAPER_WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; expected one of {sorted(PAPER_WORKLOADS)}")
    return PAPER_WORKLOADS[key].at_precision(bits)


def _conv_macs(layer, input_shape) -> float:
    out_shape = layer.output_shape(input_shape)
    _, out_channels, oh, ow = out_shape
    kh, kw = layer.kernel_size
    return float(out_channels * oh * ow * kh * kw * layer.in_channels)


def _linear_macs(layer) -> float:
    return float(layer.in_features * layer.out_features)


def workload_from_network(network: Network, bits: int = 32,
                          random_access_fraction: float = 0.05) -> WorkloadDescriptor:
    """Measure the traffic of an in-repo analogue network (single inference).

    Weights and IFMs come from the network's data-type inventory; OFM bytes
    mirror IFM bytes (each layer's OFM is the next layer's IFM); MACs are
    computed per conv/linear layer.
    """
    from repro.nn.layers import Conv2D, Linear

    specs = network.data_type_specs(dtype_bits=32)
    weight_bytes = sum(s.size_bytes for s in specs if s.kind is DataKind.WEIGHT)
    ifm_bytes = sum(s.size_bytes for s in specs if s.kind is DataKind.IFM)

    macs = 0.0
    shape = (1,) + network.input_shape
    for layer in network.leaf_layers():
        if isinstance(layer, Conv2D):
            # Conv layers embedded in composite blocks may not see the top
            # level shape; approximate with their registered IFM spec.
            ifm_spec = next((s for s in specs if s.name == f"{layer.name}.ifm"), None)
            layer_input = ifm_spec.shape if ifm_spec is not None else shape
            macs += _conv_macs(layer, layer_input)
        elif isinstance(layer, Linear):
            macs += _linear_macs(layer)
    return WorkloadDescriptor(
        name=network.name,
        weight_bytes=float(weight_bytes),
        ifm_bytes=float(ifm_bytes),
        ofm_bytes=float(ifm_bytes),
        macs=max(macs, 1.0),
        random_access_fraction=random_access_fraction,
        bits=bits,
    )
