"""A simple multi-level cache hierarchy model.

The CPU model (Table 4 of the paper: 32KB L1, 512KB L2, 8MB L3 per core with
stream prefetchers) needs only one thing from the cache hierarchy: the
fraction of a workload's memory traffic that actually reaches DRAM.  DNN
inference streams weights and feature maps that are far larger than the LLC,
so most weight traffic misses; feature-map tiles get partial reuse.  The model
here captures that with a working-set-vs-capacity reuse estimate per level,
which is sufficient for the energy/latency proportions the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.arch.traffic import WorkloadDescriptor


@dataclass(frozen=True)
class CacheLevel:
    """One cache level."""

    name: str
    size_bytes: int
    latency_cycles: int
    shared: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("cache size must be positive")
        if self.latency_cycles < 0:
            raise ValueError("latency must be non-negative")


@dataclass
class CacheHierarchy:
    """An inclusive cache hierarchy with a streaming-reuse miss model."""

    levels: List[CacheLevel] = field(default_factory=lambda: [
        CacheLevel("L1", 32 * 1024, 2),
        CacheLevel("L2", 512 * 1024, 4),
        CacheLevel("L3", 8 * 1024 * 1024, 6, shared=True),
    ])

    @property
    def llc(self) -> CacheLevel:
        return self.levels[-1]

    def dram_traffic_fraction(self, workload: WorkloadDescriptor) -> float:
        """Fraction of the workload's streamed bytes that reach DRAM.

        Weights are streamed once per inference and cannot be captured unless
        the whole model fits in the LLC; feature maps have producer-consumer
        reuse between adjacent layers, so the fraction captured grows with the
        ratio of LLC capacity to the average inter-layer feature-map size.
        """
        llc_bytes = float(self.llc.size_bytes)
        weight_bytes = workload.weight_bytes * workload.scale
        fm_bytes = (workload.ifm_bytes + workload.ofm_bytes) * workload.scale
        total = weight_bytes + fm_bytes
        if total <= 0:
            return 0.0
        if total <= llc_bytes:
            # The whole working set fits: only cold misses reach DRAM.
            return 0.15
        # Weights: reused across inferences only if they fit in the LLC.
        weight_miss = 1.0 if weight_bytes > llc_bytes else 0.2
        # Feature maps: a fraction proportional to LLC capacity gets reused
        # between producing and consuming layers before being evicted.
        fm_capture = min(0.8, llc_bytes / max(fm_bytes, 1.0))
        fm_miss = 1.0 - fm_capture
        return float(
            (weight_bytes * weight_miss + fm_bytes * fm_miss) / total
        )

    def dram_bytes(self, workload: WorkloadDescriptor) -> float:
        """Bytes of the workload that are served by DRAM per inference."""
        return workload.total_bytes * self.dram_traffic_fraction(workload)

    def hit_latency_cycles(self) -> float:
        """Average on-chip hit latency (used for the compute-side baseline)."""
        return float(sum(level.latency_cycles for level in self.levels) / len(self.levels))
