"""System-level evaluation substrate (paper Section 7).

The paper evaluates EDEN's DRAM parameter reductions on four platforms —
a multi-core OoO CPU (ZSim + Ramulator + DRAMPower), a Titan-X-class GPU
(GPGPU-Sim + GPUWattch) and two DNN accelerators (Eyeriss and a TPU, via
SCALE-Sim + DRAMPower).  This package provides analytical stand-ins for those
simulators: each platform model consumes a workload descriptor (DRAM traffic,
compute work, latency sensitivity), a DRAM operating point (ΔVDD, ΔtRCD) and
produces execution time and DRAM energy, from which the benchmark harness
regenerates Figures 13-14 and the Section 7.2 results.
"""

from repro.arch.traffic import WorkloadDescriptor, PAPER_WORKLOADS, workload_for
from repro.arch.cache import CacheHierarchy, CacheLevel
from repro.arch.memory_controller import BoundingLogic, MemoryControllerConfig
from repro.arch.cpu import CpuConfig, CpuModel, CpuRunResult
from repro.arch.gpu import GpuConfig, GpuModel
from repro.arch.accelerator import AcceleratorConfig, AcceleratorModel, EYERISS_CONFIG, TPU_CONFIG
from repro.arch.system import PlatformResult, evaluate_platform, geometric_mean

__all__ = [
    "WorkloadDescriptor",
    "PAPER_WORKLOADS",
    "workload_for",
    "CacheHierarchy",
    "CacheLevel",
    "BoundingLogic",
    "MemoryControllerConfig",
    "CpuConfig",
    "CpuModel",
    "CpuRunResult",
    "GpuConfig",
    "GpuModel",
    "AcceleratorConfig",
    "AcceleratorModel",
    "EYERISS_CONFIG",
    "TPU_CONFIG",
    "PlatformResult",
    "evaluate_platform",
    "geometric_mean",
]
