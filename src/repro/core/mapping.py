"""DNN-to-DRAM mapping (paper Section 3.4, Algorithm 1).

Given the characterized error tolerance of the DNN (coarse: one BER for the
whole network; fine: a BER per weight tensor / IFM) and the characterized
error behaviour of the DRAM partitions (a :class:`PartitionTable`), pick the
DRAM operating parameters:

* **Coarse-grained mapping** — the whole module runs at the single most
  aggressive (voltage, tRCD) point whose module BER stays below the DNN's
  tolerable BER.  Data that tolerates no reduction stays on a nominal module.
* **Fine-grained mapping (Algorithm 1)** — DNN data types are sorted by their
  tolerable BER and greedily assigned to the partition offering the largest
  parameter reduction that (a) meets the BER bound and (b) still has space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.characterization import CoarseCharacterization, FineCharacterization
from repro.dram.device import DramOperatingPoint
from repro.dram.partitions import DramPartition, PartitionTable, operating_point_cost
from repro.nn.tensor import TensorSpec


@dataclass
class CoarseMapping:
    """Module-wide operating point chosen by coarse-grained mapping."""

    op_point: DramOperatingPoint
    module_ber: float
    tolerable_ber: float
    delta_vdd: float
    delta_trcd_ns: float

    def describe(self) -> str:
        return (
            f"module at {self.op_point.describe()} "
            f"(ΔVDD={self.delta_vdd:.2f}V, ΔtRCD={self.delta_trcd_ns:.1f}ns, "
            f"BER={self.module_ber:.2e} ≤ tolerable {self.tolerable_ber:.2e})"
        )


@dataclass
class FineMapping:
    """Assignment of every DNN data type to a DRAM partition."""

    assignments: Dict[str, int] = field(default_factory=dict)       # tensor -> partition id
    operating_points: Dict[int, DramOperatingPoint] = field(default_factory=dict)
    partition_ber: Dict[int, float] = field(default_factory=dict)
    unmapped: List[str] = field(default_factory=list)

    def partition_of(self, tensor_name: str) -> int:
        return self.assignments[tensor_name]

    def op_point_of(self, tensor_name: str) -> DramOperatingPoint:
        return self.operating_points[self.assignments[tensor_name]]

    @property
    def num_partitions_used(self) -> int:
        return len(set(self.assignments.values()))


def coarse_grained_mapping(characterization: CoarseCharacterization,
                           partition_table: PartitionTable,
                           nominal_vdd: float = 1.35,
                           nominal_trcd_ns: float = 12.5) -> Optional[CoarseMapping]:
    """Pick the most aggressive module-wide operating point below the tolerable BER.

    Returns ``None`` when no candidate operating point is tolerable (the DNN
    must then run on DRAM with nominal parameters).
    """
    tolerable = characterization.max_tolerable_ber
    if tolerable <= 0:
        return None
    best: Optional[Tuple[DramOperatingPoint, float]] = None
    for op_point in partition_table.operating_points():
        # The module-wide BER is the worst (highest) partition BER, because
        # every partition operates at the same parameters under coarse mapping.
        module_ber = max(p.ber_by_op_point.get(op_point, float("inf"))
                         for p in partition_table)
        if module_ber > tolerable:
            continue
        if best is None or operating_point_cost(op_point) < operating_point_cost(best[0]):
            best = (op_point, module_ber)
    if best is None:
        return None
    op_point, module_ber = best
    return CoarseMapping(
        op_point=op_point,
        module_ber=module_ber,
        tolerable_ber=tolerable,
        delta_vdd=nominal_vdd - op_point.vdd,
        delta_trcd_ns=nominal_trcd_ns - op_point.trcd_ns,
    )


def fine_grained_mapping(characterization: FineCharacterization,
                         partition_table: PartitionTable) -> FineMapping:
    """Algorithm 1: greedy assignment of DNN data types to DRAM partitions.

    Data types are processed from most error-tolerant to least (so the most
    aggressive partitions fill up with the data that can use them); each is
    placed on the partition that offers the cheapest (most reduced) operating
    point whose BER satisfies the data type's bound and that has capacity.
    """
    partition_table.reset()
    size_by_name = {spec.name: spec.size_bytes for spec in characterization.specs}

    # Line 2 of Algorithm 1: sort DNN data by tolerable BER.
    sorted_data = sorted(
        characterization.per_tensor_ber.items(), key=lambda item: item[1], reverse=True
    )

    mapping = FineMapping()
    for tensor_name, target_ber in sorted_data:
        size_bytes = size_by_name.get(tensor_name, 0)
        best_partition: Optional[DramPartition] = None
        best_op: Optional[DramOperatingPoint] = None
        best_cost = float("inf")
        for partition in partition_table:
            if size_bytes > partition.available_bytes:
                continue
            assigned_op = mapping.operating_points.get(partition.partition_id)
            if assigned_op is not None:
                # A partition already hosting data runs at one fixed operating
                # point; new data may join only if that point's BER is low
                # enough for it.
                ber_at_assigned = partition.ber_by_op_point.get(assigned_op, float("inf"))
                if ber_at_assigned > target_ber:
                    continue
                op_point = assigned_op
            else:
                candidate = partition.best_operating_point(target_ber)
                if candidate is None:
                    continue
                op_point, _ = candidate
            cost = operating_point_cost(op_point)
            if cost < best_cost:
                best_cost = cost
                best_partition = partition
                best_op = op_point
        if best_partition is None:
            mapping.unmapped.append(tensor_name)
            continue
        best_partition.reserve(size_bytes)
        mapping.assignments[tensor_name] = best_partition.partition_id
        mapping.operating_points[best_partition.partition_id] = best_op
        mapping.partition_ber[best_partition.partition_id] = \
            best_partition.ber_by_op_point[best_op]
    return mapping


def per_tensor_ber_from_mapping(mapping: FineMapping) -> Dict[str, float]:
    """The per-tensor BERs a fine mapping actually exposes to the DNN.

    Used to build the injector that validates a mapping end to end: every
    tensor experiences the BER of the partition it was placed on.
    """
    return {
        tensor: mapping.partition_ber[partition_id]
        for tensor, partition_id in mapping.assignments.items()
    }
