"""Curricular retraining: boosting a DNN's error tolerance (paper Section 3.2).

The key idea: injecting the *full* target error rate from the first retraining
epoch occasionally diverges ("accuracy collapse"), so EDEN ramps the injected
bit error rate from 0 up to the target in steps — the paper increases the rate
every two epochs and observes good convergence.  Errors are injected only in
the forward pass (the backward pass uses reliable DRAM), and implausible
values are corrected on every load.  10-15 epochs of this boost the tolerable
BER of the paper's networks by 5-10x.

Two entry points:

* :func:`curricular_retrain` — the EDEN mechanism;
* :func:`non_curricular_retrain` — the ablation that applies the full error
  rate immediately (used to reproduce Figure 10, right).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.config import EdenConfig
from repro.core.correction import CorrectionMode, ImplausibleValueCorrector, ThresholdStore
from repro.dram.error_models import ErrorModel
from repro.dram.injection import BitErrorInjector
from repro.nn.datasets import Dataset
from repro.nn.models import get_spec
from repro.nn.network import Network
from repro.nn.training import Trainer, TrainingConfig


@dataclass
class BoostResult:
    """Outcome of one retraining run."""

    network: Network
    target_ber: float
    ber_schedule: List[float] = field(default_factory=list)
    epoch_scores: List[float] = field(default_factory=list)
    baseline_score: float = float("nan")
    boosted_score: float = float("nan")
    corrections: int = 0

    @property
    def score_recovered(self) -> float:
        """Accuracy improvement of the boosted DNN over the unboosted one,
        both evaluated under injection at the target BER."""
        return self.boosted_score - self.baseline_score


def ber_ramp_schedule(target_ber: float, epochs: int, ramp_every: int) -> List[float]:
    """Per-epoch injected BER: step-wise ramp from 0 to ``target_ber``.

    The first ``ramp_every`` epochs run error-free, then the rate increases
    every ``ramp_every`` epochs on a logarithmic ladder that reaches the
    target in the final step — matching the paper's "slowly increases the
    error rate ... in a step-wise fashion" description.
    """
    if target_ber < 0:
        raise ValueError("target_ber must be non-negative")
    if epochs <= 0:
        return []
    num_steps = max(1, (epochs - 1) // ramp_every)
    if target_ber == 0:
        return [0.0] * epochs
    # Logarithmic ladder over two decades up to the target.
    ladder = list(np.logspace(np.log10(target_ber) - 2.0, np.log10(target_ber), num_steps))
    schedule = []
    for epoch in range(epochs):
        step = epoch // ramp_every
        if step == 0:
            schedule.append(0.0)
        else:
            schedule.append(float(ladder[min(step - 1, len(ladder) - 1)]))
    # Guarantee the final epochs run at the full target rate.
    schedule[-1] = float(target_ber)
    if epochs >= 2:
        schedule[-2] = float(target_ber)
    return schedule


#: retraining uses a fine-tuning learning rate: a fraction of the model's
#: baseline rate.  Retraining under injected errors sees very noisy gradients;
#: the paper's networks are retrained from a converged checkpoint, which is a
#: fine-tuning regime rather than from-scratch training.
RETRAIN_LR_FRACTION = 0.1


def _training_config_for(network: Network, config: EdenConfig, epochs: int) -> TrainingConfig:
    """Reuse the model's default recipe at a fine-tuning learning rate."""
    try:
        spec = get_spec(network.name)
        base = spec.training_config(epochs=epochs)
    except KeyError:
        base = TrainingConfig(epochs=epochs)
    learning_rate = config.retrain_learning_rate
    if learning_rate is None:
        learning_rate = base.learning_rate * RETRAIN_LR_FRACTION
    return TrainingConfig(
        epochs=epochs,
        batch_size=base.batch_size,
        learning_rate=learning_rate,
        momentum=base.momentum,
        weight_decay=base.weight_decay,
        grad_clip=1.0,
        metric=base.metric,
        seed=config.seed,
    )


def _evaluate_under_injection(network: Network, dataset: Dataset, injector,
                              metric: str, repeats: int, seed: int,
                              processes: int = 0) -> float:
    """Mean validation score with the injector installed (stochastic injection).

    Routed through :class:`~repro.analysis.runner.ExperimentRunner` so that
    ``processes`` > 1 fans the independent repeat streams out over the
    shared-memory executor — bit-identical to the serial mean, because each
    repeat restarts the stream at ``seed + repeat`` either way.  A fresh
    runner per call keeps the worker snapshots in step with the network,
    which retraining mutates between the two evaluations.
    """
    # Late import: the runner lives in repro.analysis, above this layer.
    from repro.analysis.runner import ExperimentRunner

    with ExperimentRunner(network, dataset, metric=metric,
                          processes=processes) as runner:
        return runner.score(injector, repeats=repeats, seed=seed, stride=1)


def _retrain(network: Network, dataset: Dataset, error_model: ErrorModel,
             target_ber: float, config: EdenConfig, schedule: List[float],
             thresholds: Optional[ThresholdStore]) -> BoostResult:
    """Shared machinery of curricular / non-curricular retraining."""
    metric = get_spec(network.name).metric if network.name in _known_models() else "accuracy"

    thresholds = thresholds or ThresholdStore.from_network(network, dataset.train_x)
    corrector = ImplausibleValueCorrector(thresholds, CorrectionMode.ZERO)

    # Score the *unboosted* network under injection at the target BER first.
    eval_injector = BitErrorInjector(
        error_model.with_ber(target_ber), bits=config.bits,
        corrector=corrector, seed=config.seed + 17,
    )
    boosted = network.clone()
    baseline_score = _evaluate_under_injection(
        boosted, dataset, eval_injector, metric, config.evaluation_repeats,
        config.seed, config.processes,
    )

    train_injector = BitErrorInjector(
        error_model.with_ber(0.0), bits=config.bits,
        corrector=corrector, seed=config.seed + 29,
    )
    boosted.set_fault_injector(train_injector)

    epochs = len(schedule)
    training_config = _training_config_for(boosted, config, epochs)
    trainer = Trainer(boosted, dataset, training_config)

    def ramp_callback(epoch: int) -> None:
        rate = schedule[epoch]
        train_injector.set_global_ber(rate)
        train_injector.enabled = rate > 0.0

    history = trainer.fit(epoch_callback=ramp_callback)
    boosted.set_fault_injector(None)

    boosted_score = _evaluate_under_injection(
        boosted, dataset, eval_injector, metric, config.evaluation_repeats,
        config.seed, config.processes,
    )
    return BoostResult(
        network=boosted,
        target_ber=target_ber,
        ber_schedule=list(schedule),
        epoch_scores=list(history.val_scores),
        baseline_score=baseline_score,
        boosted_score=boosted_score,
        corrections=corrector.stats["values_corrected"],
    )


def _known_models():
    from repro.nn.models import MODEL_SPECS

    return MODEL_SPECS


def curricular_retrain(network: Network, dataset: Dataset, error_model: ErrorModel,
                       target_ber: float, config: Optional[EdenConfig] = None,
                       thresholds: Optional[ThresholdStore] = None) -> BoostResult:
    """EDEN's curricular retraining: step-wise BER ramp, forward-pass injection."""
    config = config or EdenConfig()
    schedule = ber_ramp_schedule(target_ber, config.retrain_epochs, config.ramp_every_epochs)
    return _retrain(network, dataset, error_model, target_ber, config, schedule, thresholds)


def non_curricular_retrain(network: Network, dataset: Dataset, error_model: ErrorModel,
                           target_ber: float, config: Optional[EdenConfig] = None,
                           thresholds: Optional[ThresholdStore] = None) -> BoostResult:
    """Ablation: retrain with the full target error rate from the first epoch."""
    config = config or EdenConfig()
    schedule = [float(target_ber)] * config.retrain_epochs
    return _retrain(network, dataset, error_model, target_ber, config, schedule, thresholds)
