"""Implausible-value correction (paper Sections 3.2, 3.5 and 5).

A single bit flip in the exponent of an FP32 weight or IFM can turn a value
like 0.3 into 1e8; that value then propagates through the network and causes
*accuracy collapse*.  EDEN's fix is a bounding check on every load: values
outside per-data-type thresholds learned during baseline training are treated
as corrupted and replaced — by zero in the default mechanism (the paper also
evaluates saturation to the nearest threshold and finds it consistently
worse).  The hardware realization is a one-cycle bounding logic in the memory
controller (Section 5); here the same check is the ``corrector`` hook the
injectors apply after flipping bits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.network import Network
from repro.nn.tensor import TensorSpec


class CorrectionMode(enum.Enum):
    """What to do with a value detected as implausible."""

    ZERO = "zero"          # paper default: zero the value
    SATURATE = "saturate"  # evaluated alternative: clamp to the threshold
    OFF = "off"            # no correction (ablation)


@dataclass
class ThresholdStore:
    """Per-data-type plausible value ranges learned from the baseline DNN.

    The thresholds are computed on reliable DRAM (nominal parameters) as the
    observed min/max of each weight tensor and each IFM, widened by a safety
    margin; most weights of the paper's networks live in a small range such as
    [-5, 5], so an exponent bit flip lands far outside it.
    """

    margin: float = 1.5
    bounds: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def observe(self, name: str, values: np.ndarray) -> None:
        """Incorporate observed values of one data type into its bounds."""
        values = np.asarray(values)
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            return
        low = float(finite.min())
        high = float(finite.max())
        if name in self.bounds:
            prev_low, prev_high = self.bounds[name]
            low, high = min(low, prev_low), max(high, prev_high)
        self.bounds[name] = (low, high)

    def bounds_for(self, name: str) -> Optional[Tuple[float, float]]:
        raw = self.bounds.get(name)
        if raw is None:
            return None
        low, high = raw
        center = 0.5 * (low + high)
        half_width = 0.5 * (high - low)
        half_width = max(half_width, 1e-6) * self.margin
        return center - half_width, center + half_width

    @classmethod
    def from_network(cls, network: Network, dataset_inputs: Optional[np.ndarray] = None,
                     margin: float = 1.5, batch_size: int = 32) -> "ThresholdStore":
        """Learn thresholds from a trained network (and optionally sample inputs).

        Weight bounds come directly from the parameters; IFM bounds come from
        running a few batches of real inputs through the network on reliable
        memory while recording every load the fault-injection hook would see.
        """
        store = cls(margin=margin)
        for param in network.parameters():
            store.observe(param.name, param.data)

        if dataset_inputs is not None and len(dataset_inputs):
            recorder = _BoundsRecorder(store)
            previous = network.fault_injector
            was_training = network.training
            network.eval()
            network.set_fault_injector(recorder)
            try:
                network.forward(dataset_inputs[:batch_size])
            finally:
                network.set_fault_injector(previous)
                if was_training:
                    network.train()
        return store


class _BoundsRecorder:
    """Injector stand-in that records observed value ranges per data type."""

    def __init__(self, store: ThresholdStore):
        self.store = store

    def apply(self, array: np.ndarray, spec: TensorSpec) -> np.ndarray:
        self.store.observe(spec.name, array)
        return array


class ImplausibleValueCorrector:
    """The bounding logic: detect and correct out-of-range loaded values.

    Instances are callable with ``(array, spec)`` so they plug directly into
    the ``corrector`` slot of the DRAM injectors.  Correction statistics are
    kept so experiments can report how many values were caught.
    """

    def __init__(self, thresholds: ThresholdStore,
                 mode: CorrectionMode = CorrectionMode.ZERO,
                 default_bound: float = 64.0):
        self.thresholds = thresholds
        self.mode = mode
        #: fallback symmetric bound for data types with no learned threshold
        self.default_bound = float(default_bound)
        self.stats = {"values_checked": 0, "values_corrected": 0}

    def reset_stats(self) -> None:
        self.stats = {"values_checked": 0, "values_corrected": 0}

    @property
    def correction_rate(self) -> float:
        checked = self.stats["values_checked"]
        return self.stats["values_corrected"] / checked if checked else 0.0

    def __call__(self, array: np.ndarray, spec: TensorSpec) -> np.ndarray:
        if self.mode is CorrectionMode.OFF:
            return array
        values = np.asarray(array, dtype=np.float32)
        bounds = self.thresholds.bounds_for(spec.name)
        if bounds is None:
            low, high = -self.default_bound, self.default_bound
        else:
            low, high = bounds
        implausible = ~np.isfinite(values) | (values < low) | (values > high)
        self.stats["values_checked"] += int(values.size)
        corrected_count = int(implausible.sum())
        if corrected_count == 0:
            return values
        self.stats["values_corrected"] += corrected_count
        corrected = values.copy()
        if self.mode is CorrectionMode.ZERO:
            corrected[implausible] = 0.0
        else:  # SATURATE
            finite = np.nan_to_num(values, nan=0.0, posinf=high, neginf=low)
            corrected = np.clip(finite, low, high).astype(np.float32)
        return corrected
