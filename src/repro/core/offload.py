"""EDEN offloading: running the flow without the target device (paper Section 4).

When the target approximate DRAM is unavailable (or too slow to retrain on),
EDEN profiles it once, fits an error model, and then runs retraining /
characterization / mapping on a different machine by injecting errors from
the fitted model.  This module packages that path:

* :func:`profile_and_fit` — profile a device at an operating point and return
  the MLE-selected error model;
* :func:`build_offload_injector` — construct the injector (error model +
  implausible-value corrector) that stands in for the device;
* :func:`characterize_operating_points` — map a grid of (voltage, tRCD)
  reductions to expected BERs, used to translate tolerable BERs back into
  DRAM parameter reductions (Table 3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.correction import ImplausibleValueCorrector, ThresholdStore
from repro.dram.device import ApproximateDram, DramOperatingPoint
from repro.dram.error_models import ErrorModel
from repro.dram.fitting import FittedModel, select_error_model
from repro.dram.injection import BitErrorInjector
from repro.dram.profiler import SoftMCProfiler
from repro.nn.network import Network


def profile_and_fit(device: ApproximateDram, op_point: DramOperatingPoint,
                    rows_to_profile: int = 16, trials: int = 6,
                    seed: int = 0) -> FittedModel:
    """Profile ``device`` at ``op_point`` and return the best-fitting error model."""
    profiler = SoftMCProfiler(device, rows_to_profile=rows_to_profile,
                              trials=trials, seed=seed)
    profile = profiler.profile(op_point)
    return select_error_model(profile, seed=seed)


def build_offload_injector(error_model: ErrorModel, network: Network,
                           sample_inputs: Optional[np.ndarray] = None,
                           bits: int = 32, seed: int = 0,
                           thresholds: Optional[ThresholdStore] = None,
                           ) -> BitErrorInjector:
    """Injector = fitted error model + implausible-value corrector for ``network``."""
    thresholds = thresholds or ThresholdStore.from_network(network, sample_inputs)
    corrector = ImplausibleValueCorrector(thresholds)
    return BitErrorInjector(error_model, bits=bits, corrector=corrector, seed=seed)


def operating_point_grid(device: ApproximateDram,
                         voltage_reductions: Sequence[float] = (0.0, 0.05, 0.10, 0.15,
                                                                0.20, 0.25, 0.30, 0.35),
                         trcd_reductions_ns: Sequence[float] = (0.0, 1.0, 2.0, 3.0, 4.5,
                                                                5.0, 5.5, 6.0),
                         ) -> List[DramOperatingPoint]:
    """Candidate operating points combining each voltage and tRCD reduction."""
    points = []
    for dv in voltage_reductions:
        for dt in trcd_reductions_ns:
            points.append(
                DramOperatingPoint.from_reductions(
                    delta_vdd=dv, delta_trcd_ns=dt,
                    nominal_vdd=device.nominal_vdd,
                    nominal_timing=device.nominal_timing,
                )
            )
    return points


def characterize_operating_points(device: ApproximateDram,
                                  op_points: Optional[Sequence[DramOperatingPoint]] = None,
                                  ) -> Dict[DramOperatingPoint, float]:
    """Expected module BER of ``device`` at each candidate operating point."""
    op_points = list(op_points) if op_points is not None else operating_point_grid(device)
    return {op: device.expected_ber(op) for op in op_points}


def reductions_for_ber(device: ApproximateDram, tolerable_ber: float,
                       voltage_reductions: Sequence[float] = (0.0, 0.05, 0.10, 0.15,
                                                              0.20, 0.25, 0.30, 0.35),
                       trcd_reductions_ns: Sequence[float] = (0.0, 1.0, 2.0, 3.0, 4.5,
                                                              5.0, 5.5, 6.0),
                       ) -> Tuple[float, float]:
    """Largest simultaneous (ΔVDD, ΔtRCD) whose combined BER stays below a bound.

    This is the translation the paper performs to produce Table 3: the
    coarse-grained tolerable BER of each DNN becomes a voltage and latency
    reduction on the target module.  Reductions are chosen jointly: candidate
    pairs are ranked by the remaining-cost metric (energy + latency) and the
    cheapest pair whose BER fits is returned.
    """
    if tolerable_ber <= 0:
        return 0.0, 0.0
    best: Tuple[float, float] = (0.0, 0.0)
    best_cost = float("inf")
    nominal_trcd = device.nominal_timing.trcd_ns
    for dv in voltage_reductions:
        for dt in trcd_reductions_ns:
            op = DramOperatingPoint.from_reductions(
                delta_vdd=dv, delta_trcd_ns=dt,
                nominal_vdd=device.nominal_vdd, nominal_timing=device.nominal_timing,
            )
            if device.expected_ber(op) > tolerable_ber:
                continue
            cost = ((device.nominal_vdd - dv) / device.nominal_vdd) ** 2 \
                + (nominal_trcd - dt) / nominal_trcd
            if cost < best_cost:
                best_cost = cost
                best = (dv, dt)
    return best
