"""DNN error tolerance characterization (paper Section 3.3).

Two flavours:

* **Coarse-grained** — find the single highest BER that, applied uniformly to
  every weight and IFM, still meets the accuracy target.  The paper uses a
  logarithmic-scale binary search, justified by the observation that DNN
  error-tolerance curves are monotonically decreasing in BER.
* **Fine-grained** — find a per-data-type (per weight tensor and per IFM)
  tolerable BER by iteratively sweeping a list of data types, trying to raise
  each one's error rate by a small factor and dropping it from the sweep once
  it can take no more.  The search is bootstrapped at the coarse-grained BER
  and uses a subsample of the validation set per evaluation to stay tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.runner import ExperimentRunner
from repro.core.config import AccuracyTarget, EdenConfig
from repro.core.correction import ImplausibleValueCorrector, ThresholdStore
from repro.dram.error_models import ErrorModel
from repro.dram.injection import BitErrorInjector
from repro.engine.session import ReadSemantics
from repro.nn.datasets import Dataset
from repro.nn.network import Network
from repro.nn.tensor import DataKind, TensorSpec

#: the characterization historically reseeds repeats at ``seed + repeat * 101``.
_CHARACTERIZATION_RESEED_STRIDE = 101


@dataclass
class CoarseCharacterization:
    """Result of the whole-DNN (coarse) characterization."""

    baseline_score: float
    max_tolerable_ber: float
    accuracy_at_max: float
    tested: Dict[float, float] = field(default_factory=dict)   # BER -> score

    def meets_target(self, target: AccuracyTarget) -> bool:
        return target.is_met(self.accuracy_at_max, self.baseline_score)


@dataclass
class FineCharacterization:
    """Result of the per-data-type (fine) characterization."""

    baseline_score: float
    coarse_ber: float
    per_tensor_ber: Dict[str, float] = field(default_factory=dict)
    specs: List[TensorSpec] = field(default_factory=list)

    def ber_of(self, name: str) -> float:
        return self.per_tensor_ber[name]

    def weights(self) -> Dict[str, float]:
        names = {s.name for s in self.specs if s.kind is DataKind.WEIGHT}
        return {k: v for k, v in self.per_tensor_ber.items() if k in names}

    def ifms(self) -> Dict[str, float]:
        names = {s.name for s in self.specs if s.kind is DataKind.IFM}
        return {k: v for k, v in self.per_tensor_ber.items() if k in names}

    @property
    def max_gain_over_coarse(self) -> float:
        """Largest ratio of a per-tensor tolerable BER to the coarse BER."""
        if not self.per_tensor_ber or self.coarse_ber <= 0:
            return 1.0
        return max(self.per_tensor_ber.values()) / self.coarse_ber


def _validated_runner(runner: Optional[ExperimentRunner], network: Network,
                      dataset: Dataset, metric: str,
                      semantics: Optional[ReadSemantics] = None,
                      processes: int = 0) -> ExperimentRunner:
    """Build (or sanity-check) the shared runner for a characterization call.

    A caller-supplied runner must be bound to the same network, dataset,
    metric and (when one was requested) read semantics — anything else would
    silently characterize the wrong thing (its own ``processes`` setting
    wins over the ``processes`` argument, which only configures a runner
    built here).  The runner's session is reused across every point of the
    sweep, so in static-store mode each candidate BER materializes its
    corrupted weights exactly once no matter how many batches and repeats
    score it.
    """
    if runner is None:
        return ExperimentRunner(network, dataset, metric=metric,
                                semantics=semantics or ReadSemantics.PER_READ,
                                processes=processes)
    if runner.network is not network or runner.dataset is not dataset:
        raise ValueError("runner is bound to a different network/dataset than "
                         "the one being characterized")
    if runner.metric != metric:
        raise ValueError(
            f"runner is bound to metric {runner.metric!r} but characterization "
            f"was asked for {metric!r}"
        )
    if semantics is not None and runner.semantics is not semantics:
        raise ValueError(
            f"runner uses {runner.semantics.value!r} read semantics but the "
            f"characterization was asked for {semantics.value!r}"
        )
    return runner


def _scored_injector(error_model: ErrorModel, config: EdenConfig,
                     corrector: ImplausibleValueCorrector,
                     per_tensor_ber: Optional[Dict[str, float]] = None,
                     seed_offset: int = 0) -> BitErrorInjector:
    return BitErrorInjector(
        error_model, bits=config.bits, per_tensor_ber=per_tensor_ber,
        corrector=corrector, seed=config.seed + seed_offset,
    )


def coarse_grained_characterization(network: Network, dataset: Dataset,
                                    error_model: ErrorModel,
                                    target: AccuracyTarget,
                                    config: Optional[EdenConfig] = None,
                                    metric: str = "accuracy",
                                    thresholds: Optional[ThresholdStore] = None,
                                    runner: Optional[ExperimentRunner] = None,
                                    semantics: Optional[ReadSemantics] = None,
                                    ) -> CoarseCharacterization:
    """Logarithmic-scale binary search for the highest uniformly-tolerable BER.

    ``runner`` optionally shares an :class:`ExperimentRunner` (and its
    memoized baseline) across characterizations; it must be bound to the
    same ``network`` and ``dataset``.  Seeding conventions are enforced at
    the call sites, so any runner configuration yields identical results.
    ``semantics`` picks the read semantics (None follows the supplied runner,
    or per-read when the runner is built here): per-read preserves the
    historical results bit-exactly; static-store is paper-faithful (weights
    corrupted once per candidate BER) and faster.  When the runner
    parallelizes (``processes`` > 1, from the argument or from
    ``config.processes``), the whole candidate grid is prefetched
    speculatively through the shared-memory executor and the binary search
    consults the prefetched scores — every consulted score is the one the
    serial search would have computed, so the returned characterization
    (including its ``tested`` memo) is bit-identical to the serial run.
    """
    config = config or EdenConfig()
    thresholds = thresholds or ThresholdStore.from_network(network, dataset.train_x)
    corrector = ImplausibleValueCorrector(thresholds)

    runner = _validated_runner(runner, network, dataset, metric, semantics,
                               config.processes)
    baseline_score = runner.baseline()
    floor = target.threshold(baseline_score)

    grid = np.array(config.ber_grid())
    tested: Dict[float, float] = {}

    # Speculative prefetch: grid points are order-independent (each restarts
    # the stream at the same seed/stride), so a parallel runner can score
    # them all up front; the search below probes exactly as the serial one
    # does and records only the points it actually consults.
    prefetched: Dict[float, float] = {}
    if runner.processes > 1 and len(grid) > 1:
        prefetched = runner.ber_sweep(
            error_model, [float(ber) for ber in grid], bits=config.bits,
            corrector=corrector, repeats=config.evaluation_repeats,
            seed=config.seed, stride=_CHARACTERIZATION_RESEED_STRIDE)

    # One injector serves the whole search; per candidate BER only the model
    # is swapped and the stream restarted (stream-identical to a fresh one).
    # Seed/repeat/stride are passed explicitly so any caller-supplied runner
    # still follows the characterization's historical seeding convention.
    injector = _scored_injector(error_model, config, corrector)

    def score_at(ber: float) -> float:
        score = prefetched.get(float(ber))
        if score is None:
            injector.set_error_model(error_model.with_ber(ber))
            score = runner.score(injector, repeats=config.evaluation_repeats,
                                 seed=config.seed,
                                 stride=_CHARACTERIZATION_RESEED_STRIDE)
        tested[float(ber)] = score
        return score

    # Binary search over the index space of the logarithmic grid: error
    # tolerance curves are monotonically decreasing in BER (paper Section 3.3),
    # so the largest passing grid point is well defined.
    low, high = 0, len(grid) - 1
    best_ber = 0.0
    best_score = baseline_score
    if score_at(grid[0]) < floor:
        # Not even the smallest candidate BER is tolerable.
        return CoarseCharacterization(baseline_score, 0.0, baseline_score, tested)
    best_ber, best_score = float(grid[0]), tested[float(grid[0])]
    while low <= high:
        mid = (low + high) // 2
        ber = float(grid[mid])
        score = tested.get(ber)
        if score is None:
            score = score_at(ber)
        if score >= floor:
            if ber >= best_ber:
                best_ber, best_score = ber, score
            low = mid + 1
        else:
            high = mid - 1
    return CoarseCharacterization(baseline_score, best_ber, best_score, tested)


def fine_grained_characterization(network: Network, dataset: Dataset,
                                  error_model: ErrorModel,
                                  target: AccuracyTarget,
                                  coarse: Optional[CoarseCharacterization] = None,
                                  config: Optional[EdenConfig] = None,
                                  metric: str = "accuracy",
                                  thresholds: Optional[ThresholdStore] = None,
                                  runner: Optional[ExperimentRunner] = None,
                                  semantics: Optional[ReadSemantics] = None,
                                  ) -> FineCharacterization:
    """Per-tensor BER sweep, bootstrapped at the coarse-grained BER.

    Every weight tensor and IFM starts at the coarse BER; the sweep repeatedly
    tries to multiply one data type's BER by ``config.fine_step_factor``,
    keeps the increase if the (subsampled) validation score stays above the
    accuracy floor, and removes the data type from the sweep list otherwise —
    the paper's "DNN data sweep procedure".  The round structure is
    data-dependent (a candidate builds on the acceptances earlier in its
    round), so rounds stay serial; a parallel runner still fans each
    candidate's repeat streams out over the executor, which is
    bit-identical to the serial mean.
    """
    config = config or EdenConfig()
    thresholds = thresholds or ThresholdStore.from_network(network, dataset.train_x)
    corrector = ImplausibleValueCorrector(thresholds)

    if coarse is None:
        coarse = coarse_grained_characterization(
            network, dataset, error_model, target, config, metric, thresholds,
            runner, semantics,
        )
    baseline_score = coarse.baseline_score

    runner = _validated_runner(runner, network, dataset, metric, semantics,
                               config.processes)

    specs = network.data_type_specs(dtype_bits=config.bits)
    start_ber = coarse.max_tolerable_ber if coarse.max_tolerable_ber > 0 else config.ber_search_low
    per_tensor = {spec.name: float(start_ber) for spec in specs}

    eval_dataset = dataset.subsample_validation(config.fine_validation_fraction,
                                                seed=config.seed)
    # The subsampled evaluation is noisy (the paper samples 10% of the
    # validation set per run); allow one extra misclassified sample of
    # statistical slack so a single unlucky injection does not freeze the sweep.
    floor = target.threshold(baseline_score) - 1.0 / max(len(eval_dataset.val_y), 1)

    injector = _scored_injector(error_model, config, corrector, seed_offset=7)

    def score_with(assignment: Dict[str, float]) -> float:
        injector.set_per_tensor_ber(assignment)
        return runner.score(injector, repeats=config.evaluation_repeats,
                            seed=config.seed,
                            stride=_CHARACTERIZATION_RESEED_STRIDE,
                            dataset=eval_dataset)

    sweep_list = [spec.name for spec in specs]
    for _ in range(config.fine_max_rounds):
        if not sweep_list:
            break
        still_improving = []
        for name in sweep_list:
            candidate = dict(per_tensor)
            candidate[name] = min(0.5, per_tensor[name] * config.fine_step_factor)
            score = score_with(candidate)
            if score >= floor:
                per_tensor[name] = candidate[name]
                still_improving.append(name)
            # else: data type saturated; drop it from the sweep list.
        sweep_list = still_improving

    return FineCharacterization(
        baseline_score=baseline_score,
        coarse_ber=float(start_ber),
        per_tensor_ber=per_tensor,
        specs=specs,
    )
