"""The full EDEN flow: boost → characterize → map, iterated (paper Section 3.1).

:class:`Eden` ties the three steps together against either

* a *fitted error model* (EDEN offloading — the common path, also how the
  paper runs most of its evaluation), or
* a :class:`~repro.dram.device.ApproximateDram` device, from which an error
  model is first profiled and fitted.

The steps are repeated until the tolerable BER stops improving (or the
configured iteration budget is exhausted), producing an :class:`EdenResult`
that carries the boosted network, the characterization, the mapping and the
DRAM operating parameters to run it at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.boosting import BoostResult, curricular_retrain
from repro.core.characterization import (
    CoarseCharacterization,
    FineCharacterization,
    coarse_grained_characterization,
    fine_grained_characterization,
)
from repro.core.config import AccuracyTarget, EdenConfig
from repro.core.correction import ImplausibleValueCorrector, ThresholdStore
from repro.core.mapping import (
    CoarseMapping,
    FineMapping,
    coarse_grained_mapping,
    fine_grained_mapping,
)
from repro.core.offload import profile_and_fit, reductions_for_ber
from repro.dram.device import ApproximateDram, DramOperatingPoint
from repro.dram.error_models import ErrorModel, make_error_model
from repro.dram.injection import BitErrorInjector
from repro.dram.partitions import PartitionTable
from repro.engine.session import InferenceSession, ReadSemantics
from repro.nn.datasets import Dataset
from repro.nn.models import get_spec
from repro.nn.network import Network


@dataclass
class EdenResult:
    """Everything the EDEN flow produces for one DNN / DRAM pair."""

    network: Network
    boost: Optional[BoostResult]
    coarse: CoarseCharacterization
    fine: Optional[FineCharacterization]
    coarse_mapping: Optional[CoarseMapping]
    fine_mapping: Optional[FineMapping]
    delta_vdd: float
    delta_trcd_ns: float
    iterations: int
    history: List[float] = field(default_factory=list)   # tolerable BER per iteration
    #: executable plan for serving the boosted network at the characterized
    #: operating point: weights materialized once (static-store semantics),
    #: per-tensor BERs from the fine-grained mapping when one was produced.
    session: Optional[InferenceSession] = None

    @property
    def max_tolerable_ber(self) -> float:
        """Coarse-grained maximum tolerable BER (the characterization result)."""
        return self.coarse.max_tolerable_ber

    def evaluate(self, dataset=None, metric: Optional[str] = None, **kwargs) -> float:
        """Score the boosted network through the compiled inference session.

        ``dataset`` defaults to the session's own validation split and
        ``metric`` to the model's registered metric; extra ``kwargs`` are
        forwarded to :meth:`~repro.engine.session.InferenceSession.evaluate`.
        Returns the mean validation score.
        """
        if self.session is None:
            raise ValueError("this EdenResult was built without a session")
        return self.session.evaluate(dataset, metric, **kwargs)

    def serve(self, gateway=None, *, name: Optional[str] = None, **config_kwargs):
        """Register this result's compiled plan with a serving gateway.

        The pipeline's characterized operating point (boosted weights, max
        tolerable BER, fine-grained per-tensor BERs when available, value
        correction) drops straight into live serving: the result's
        static-store session becomes a gateway endpoint named ``name``
        (default: the network's name).  Pass an existing ``gateway`` to add
        this model next to others, or ``config_kwargs`` (forwarded to
        :class:`~repro.serve.gateway.ServeConfig`) to build a fresh one.
        Returns the gateway.
        """
        if self.session is None:
            raise ValueError("this EdenResult was built without a session")
        from repro.serve.gateway import ServeConfig, ServingGateway

        if gateway is None:
            gateway = ServingGateway(ServeConfig(**config_kwargs))
        elif config_kwargs:
            raise ValueError("pass config_kwargs only when creating a new "
                             "gateway, not with an existing one")
        gateway.register(name or self.network.name, session=self.session)
        return gateway

    def summary(self) -> str:
        """Return a multi-line human-readable summary of the flow's results."""
        lines = [
            f"EDEN result for {self.network.name!r}:",
            f"  baseline score            : {self.coarse.baseline_score:.4f}",
            f"  max tolerable BER (coarse): {self.coarse.max_tolerable_ber:.3e}",
            f"  score at that BER         : {self.coarse.accuracy_at_max:.4f}",
            f"  DRAM parameter reduction  : ΔVDD={self.delta_vdd:.2f}V, "
            f"ΔtRCD={self.delta_trcd_ns:.1f}ns",
            f"  outer iterations          : {self.iterations}",
        ]
        if self.boost is not None:
            lines.append(
                f"  boosting: score under target BER {self.boost.target_ber:.2e} "
                f"went {self.boost.baseline_score:.3f} -> {self.boost.boosted_score:.3f}"
            )
        if self.fine is not None:
            lines.append(
                f"  fine-grained: per-tensor BER up to "
                f"{self.fine.max_gain_over_coarse:.1f}x the coarse BER"
            )
        return "\n".join(lines)


class Eden:
    """Orchestrates the three EDEN steps for one DNN on one approximate DRAM.

    Parameters
    ----------
    accuracy_target:
        The :class:`~repro.core.config.AccuracyTarget` characterization
        searches against (default: within one percent of baseline).
    config:
        An :class:`~repro.core.config.EdenConfig` with retraining budgets,
        search grids and seeds (defaults apply when omitted).
    """

    def __init__(self, accuracy_target: Optional[AccuracyTarget] = None,
                 config: Optional[EdenConfig] = None):
        self.accuracy_target = accuracy_target or AccuracyTarget.within_one_percent()
        self.config = config or EdenConfig()

    # -- helpers ------------------------------------------------------------------
    def _metric_for(self, network: Network) -> str:
        try:
            return get_spec(network.name).metric
        except KeyError:
            return "accuracy"

    def _resolve_error_model(self, error_source, op_point: Optional[DramOperatingPoint]
                             ) -> ErrorModel:
        if isinstance(error_source, ErrorModel):
            return error_source
        if isinstance(error_source, ApproximateDram):
            op_point = op_point or DramOperatingPoint.from_reductions(
                delta_vdd=0.25, nominal_vdd=error_source.nominal_vdd,
                nominal_timing=error_source.nominal_timing,
            )
            fitted = profile_and_fit(error_source, op_point, seed=self.config.seed)
            return fitted.model
        raise TypeError(
            "error_source must be an ErrorModel or an ApproximateDram, "
            f"got {type(error_source).__name__}"
        )

    # -- the flow -----------------------------------------------------------------
    def run(self, network: Network, dataset: Dataset, error_source,
            device: Optional[ApproximateDram] = None,
            partition_table: Optional[PartitionTable] = None,
            op_point: Optional[DramOperatingPoint] = None,
            boost: bool = True, fine_grained: bool = False) -> EdenResult:
        """Run EDEN for ``network`` against ``error_source``.

        ``error_source`` is either a fitted/parametric :class:`ErrorModel`
        (offloading) or an :class:`ApproximateDram` to profile.  ``device`` is
        only needed to translate tolerable BERs into (ΔVDD, ΔtRCD); when
        omitted but ``error_source`` is a device, that device is used.
        ``op_point`` pins the profiled operating point, ``partition_table``
        enables fine-grained mapping (with ``fine_grained=True``), and
        ``boost=False`` skips curricular retraining.  ``network`` and
        ``dataset`` are the DNN and its train/validation data.  Returns an
        :class:`EdenResult` carrying the boosted network, characterizations,
        mappings, DRAM parameter reductions and a ready-to-serve session.
        """
        config = self.config
        metric = self._metric_for(network)
        error_model = self._resolve_error_model(error_source, op_point)
        if device is None and isinstance(error_source, ApproximateDram):
            device = error_source

        thresholds = ThresholdStore.from_network(network, dataset.train_x)
        current = network
        boost_result: Optional[BoostResult] = None
        history: List[float] = []

        coarse = coarse_grained_characterization(
            current, dataset, error_model, self.accuracy_target, config, metric, thresholds
        )
        history.append(coarse.max_tolerable_ber)

        iterations = 0
        for iteration in range(config.max_outer_iterations):
            iterations = iteration + 1
            if not boost or config.retrain_epochs == 0:
                break
            # Boost well beyond the current tolerable BER so retraining pushes
            # the frontier outward (the paper reports 5-10x gains).
            target_ber = max(coarse.max_tolerable_ber * 8.0, config.ber_search_low * 10)
            target_ber = min(target_ber, config.ber_search_high)
            boost_result = curricular_retrain(
                current, dataset, error_model, target_ber, config, thresholds
            )
            current = boost_result.network
            thresholds = ThresholdStore.from_network(current, dataset.train_x)
            new_coarse = coarse_grained_characterization(
                current, dataset, error_model, self.accuracy_target, config, metric, thresholds
            )
            history.append(new_coarse.max_tolerable_ber)
            improved = new_coarse.max_tolerable_ber > coarse.max_tolerable_ber * 1.05
            coarse = new_coarse
            if not improved:
                break

        fine: Optional[FineCharacterization] = None
        fine_map: Optional[FineMapping] = None
        if fine_grained:
            fine = fine_grained_characterization(
                current, dataset, error_model, self.accuracy_target, coarse,
                config, metric, thresholds,
            )
            if partition_table is not None:
                fine_map = fine_grained_mapping(fine, partition_table)

        coarse_map: Optional[CoarseMapping] = None
        delta_vdd = delta_trcd = 0.0
        if device is not None:
            delta_vdd, delta_trcd = reductions_for_ber(device, coarse.max_tolerable_ber)
        if partition_table is not None:
            coarse_map = coarse_grained_mapping(coarse, partition_table)

        # Compile the serving plan: the boosted network with its weights
        # materialized once at the characterized operating point (the paper's
        # static storage model).  Fine-grained results carry their per-tensor
        # BER assignment into the injector.
        serving_injector = BitErrorInjector(
            error_model.with_ber(coarse.max_tolerable_ber), bits=config.bits,
            per_tensor_ber=fine.per_tensor_ber if fine is not None else None,
            corrector=ImplausibleValueCorrector(thresholds), seed=config.seed,
        )
        session = InferenceSession(
            current, dataset, injector=serving_injector,
            semantics=ReadSemantics.STATIC_STORE, metric=metric,
            seed=config.seed, repeats=config.evaluation_repeats,
        )

        return EdenResult(
            network=current,
            boost=boost_result,
            coarse=coarse,
            fine=fine,
            coarse_mapping=coarse_map,
            fine_mapping=fine_map,
            delta_vdd=delta_vdd,
            delta_trcd_ns=delta_trcd,
            iterations=iterations,
            history=history,
            session=session,
        )

    # -- convenience -------------------------------------------------------------
    def run_with_uniform_model(self, network: Network, dataset: Dataset,
                               ber_seed: float = 1e-3, **kwargs) -> EdenResult:
        """Run the flow against a plain uniform error model (Error Model 0).

        ``ber_seed`` sets the model's initial BER (characterization rescales
        it anyway); ``network``/``dataset``/``kwargs`` are forwarded to
        :meth:`run`.  Returns that :class:`EdenResult`.
        """
        model = make_error_model(0, ber_seed, seed=self.config.seed)
        return self.run(network, dataset, model, **kwargs)
