"""Symbol-level ECC codec models for approximate-DRAM weight stores.

Real server DRAM pairs every 64 data bytes with 8 check bytes and a
Reed-Solomon-class code over 8-bit symbols; the decoder corrects any
codeword with at most ``t = parity_symbols // 2`` corrupted symbols and
flags denser corruption as detected-uncorrectable (with a small silent
*miscorrection* tail).  This module models exactly that accounting —
per-codeword syndrome bookkeeping over the packed stored/observed words —
without implementing Galois-field arithmetic: the injector knows the
ground-truth stored bits, so "decode" reduces to counting corrupted
symbols per codeword and reverting the flips of every correctable one.

:class:`RsCodecModel.correct_words` is deterministic for a fixed
``(seed, key)`` and is wired into store materialization by
:class:`repro.dram.injection.BitErrorInjector` (``ecc=``) and
:meth:`repro.engine.session.InferenceSession.from_error_model`
(``correction="rs72_64"``), so STATIC_STORE plans serve post-correction
weights and report corrected/uncorrectable counts per tensor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.dram.packed import _hash_uniform, xor_mask_from_positions


@dataclass(frozen=True)
class RsCodecSpec:
    """Shape of a symbol-level code: RS(72,64)-class by default.

    ``symbol_bits`` is the symbol width, ``data_symbols`` the number of data
    symbols per codeword and ``parity_symbols`` the check symbols that buy
    correction strength — the classic chipkill-style RS(72,64) layout is 64
    data + 8 parity 8-bit symbols, correcting ``t = parity_symbols // 2 = 4``
    corrupted symbols per codeword.
    """

    symbol_bits: int = 8
    data_symbols: int = 64
    parity_symbols: int = 8

    def __post_init__(self) -> None:
        if min(self.symbol_bits, self.data_symbols, self.parity_symbols) <= 0:
            raise ValueError("codec dimensions must be positive")

    @property
    def correctable_symbols(self) -> int:
        """``t``: the maximum number of corrupted symbols the code corrects."""
        return self.parity_symbols // 2

    @property
    def data_bits(self) -> int:
        """Data payload of one codeword, in bits."""
        return self.symbol_bits * self.data_symbols

    @property
    def total_symbols(self) -> int:
        """Data plus parity symbols per codeword."""
        return self.data_symbols + self.parity_symbols


@dataclass
class EccReport:
    """Per-call decode accounting: how many codewords landed where.

    ``codewords`` is everything decoded; ``corrected_codewords`` had between
    1 and ``t`` corrupted symbols (``corrected_symbols`` sums them);
    ``uncorrectable_codewords`` exceeded ``t`` and were flagged;
    ``miscorrected_codewords`` exceeded ``t`` but silently decoded wrong.
    """

    codewords: int = 0
    corrected_codewords: int = 0
    corrected_symbols: int = 0
    uncorrectable_codewords: int = 0
    miscorrected_codewords: int = 0

    def merge(self, other: "EccReport") -> None:
        """Accumulate ``other``'s counters into this report in place."""
        self.codewords += other.codewords
        self.corrected_codewords += other.corrected_codewords
        self.corrected_symbols += other.corrected_symbols
        self.uncorrectable_codewords += other.uncorrectable_codewords
        self.miscorrected_codewords += other.miscorrected_codewords

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dict (telemetry/JSON friendly)."""
        return {
            "codewords": self.codewords,
            "corrected_codewords": self.corrected_codewords,
            "corrected_symbols": self.corrected_symbols,
            "uncorrectable_codewords": self.uncorrectable_codewords,
            "miscorrected_codewords": self.miscorrected_codewords,
        }


class RsCodecModel:
    """Syndrome-accounting decoder model over packed weight-store words.

    Parameters: ``spec`` fixes the code shape (default RS(72,64)-class),
    ``miscorrection_rate`` is the probability an uncorrectable codeword
    silently decodes to wrong data instead of being flagged (0 disables the
    tail, making the decoder provably never silently wrong), and ``seed``
    makes the miscorrection lottery deterministic (hash stream 602 over
    codeword indices, offset by the caller's ``key``).
    """

    def __init__(self, spec: Optional[RsCodecSpec] = None,
                 miscorrection_rate: float = 0.0, seed: int = 0):
        self.spec = spec if spec is not None else RsCodecSpec()
        if not 0.0 <= miscorrection_rate <= 1.0:
            raise ValueError("miscorrection_rate must be within [0, 1]")
        self.miscorrection_rate = float(miscorrection_rate)
        self.seed = int(seed)

    def name(self) -> str:
        """Return the codec's display name, e.g. ``rs(72,64)x8``."""
        spec = self.spec
        return (f"rs({spec.total_symbols},{spec.data_symbols})"
                f"x{spec.symbol_bits}")

    def correct_words(self, stored: np.ndarray, observed: np.ndarray,
                      bits_per_word: int, *, key: int = 0
                      ) -> Tuple[np.ndarray, EccReport]:
        """Decode one tensor's packed words; return (corrected, report).

        ``stored`` are the ground-truth words written to DRAM, ``observed``
        what the read returned (``bits_per_word`` meaningful LSB-first bits
        each); consecutive data bits fill codewords of ``spec.data_bits``
        bits.  Codewords with at most ``t`` corrupted symbols are reverted
        to the stored bits exactly; denser codewords stay as observed
        (flagged uncorrectable) unless the deterministic miscorrection
        lottery — hash of the codeword index offset by ``key``, so distinct
        tensors draw distinct lotteries — additionally garbles their first
        symbol.  Returns the post-correction words and the
        :class:`EccReport` accounting for every codeword.
        """
        stored = np.asarray(stored, dtype=np.uint64)
        observed = np.asarray(observed, dtype=np.uint64)
        if stored.shape != observed.shape:
            raise ValueError("stored and observed must have the same shape")
        spec = self.spec
        num_bits = stored.size * bits_per_word
        report = EccReport()
        if num_bits == 0:
            return observed.copy(), report

        diff = stored ^ observed
        shifts = np.arange(bits_per_word, dtype=np.uint64)
        diff_bits = ((diff[:, None] >> shifts) & np.uint64(1)).astype(bool).ravel()

        data_bits = spec.data_bits
        n_codewords = -(-num_bits // data_bits)
        padded = np.zeros(n_codewords * data_bits, dtype=bool)
        padded[:num_bits] = diff_bits
        symbol_errors = padded.reshape(n_codewords, spec.data_symbols,
                                       spec.symbol_bits).any(axis=2)
        error_counts = symbol_errors.sum(axis=1)

        t = spec.correctable_symbols
        correctable = (error_counts > 0) & (error_counts <= t)
        uncorrectable = error_counts > t
        miscorrected = np.zeros(n_codewords, dtype=bool)
        if self.miscorrection_rate > 0.0 and uncorrectable.any():
            indices = np.arange(n_codewords, dtype=np.uint64) + np.uint64(key)
            lottery = _hash_uniform(indices, self.seed, stream=602)
            miscorrected = uncorrectable & (lottery < self.miscorrection_rate)

        report.codewords = int(n_codewords)
        report.corrected_codewords = int(correctable.sum())
        report.corrected_symbols = int(symbol_errors[correctable].sum())
        report.miscorrected_codewords = int(miscorrected.sum())
        report.uncorrectable_codewords = int(uncorrectable.sum()
                                             - miscorrected.sum())

        revert = padded & np.repeat(correctable, data_bits)
        if miscorrected.any():
            # A miscorrecting decoder writes garbage: garble the first
            # symbol of each miscorrected codeword on top of the raw flips.
            garble = np.zeros(n_codewords * data_bits, dtype=bool)
            starts = np.nonzero(miscorrected)[0] * data_bits
            for start in starts.tolist():
                garble[start:start + spec.symbol_bits] = True
            revert = revert ^ garble
        positions = np.nonzero(revert[:num_bits])[0]
        if positions.size == 0:
            return observed.copy(), report
        xor = xor_mask_from_positions(positions.astype(np.int64),
                                      stored.size, bits_per_word)
        return observed ^ xor, report


#: named codec registry for the ``correction=`` string API.
CODECS: Dict[str, RsCodecSpec] = {
    "rs72_64": RsCodecSpec(symbol_bits=8, data_symbols=64, parity_symbols=8),
}


def make_codec(name: str, seed: int = 0,
               miscorrection_rate: float = 0.0) -> RsCodecModel:
    """Build a registered codec model by name; returns an :class:`RsCodecModel`.

    ``name`` must be a key of :data:`CODECS` (currently ``"rs72_64"``);
    ``seed`` and ``miscorrection_rate`` configure the miscorrection lottery.
    """
    try:
        spec = CODECS[name]
    except KeyError:
        raise ValueError(
            f"unknown codec {name!r}; expected one of {sorted(CODECS)}"
        ) from None
    return RsCodecModel(spec, miscorrection_rate=miscorrection_rate, seed=seed)
