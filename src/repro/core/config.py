"""Configuration objects shared by the EDEN core steps."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class AccuracyTarget:
    """The user-specified accuracy requirement EDEN must strictly meet.

    The paper's headline results use "within 1% of the original DNN", i.e. a
    maximum relative accuracy drop of 0.01; it also evaluates a zero-drop
    target (Section 7.1).  ``max_relative_drop`` is relative to the baseline
    accuracy measured on reliable DRAM; ``min_absolute`` optionally sets an
    absolute floor as well.
    """

    max_relative_drop: float = 0.01
    min_absolute: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_relative_drop < 0:
            raise ValueError("max_relative_drop must be non-negative")
        if self.min_absolute is not None and not 0.0 <= self.min_absolute <= 1.0:
            raise ValueError("min_absolute must be in [0, 1]")

    def threshold(self, baseline_accuracy: float) -> float:
        """The lowest acceptable accuracy given the baseline accuracy."""
        relative_floor = baseline_accuracy * (1.0 - self.max_relative_drop)
        if self.min_absolute is None:
            return relative_floor
        return max(relative_floor, self.min_absolute)

    def is_met(self, accuracy: float, baseline_accuracy: float) -> bool:
        return accuracy >= self.threshold(baseline_accuracy) - 1e-12

    @classmethod
    def within_one_percent(cls) -> "AccuracyTarget":
        return cls(max_relative_drop=0.01)

    @classmethod
    def no_degradation(cls) -> "AccuracyTarget":
        return cls(max_relative_drop=0.0)


@dataclass
class EdenConfig:
    """Knobs of the overall EDEN flow.

    The defaults follow the paper: the curricular ramp raises the injected
    error rate every 2 epochs, 10-15 retraining epochs are enough to boost
    tolerable BERs 5-10x, coarse characterization does a logarithmic search
    over BER, and fine-grained characterization subsamples the validation set
    (10%) and sweeps per-tensor BERs in small steps.
    """

    # boosting / curricular retraining
    retrain_epochs: int = 10
    ramp_every_epochs: int = 2
    retrain_learning_rate: Optional[float] = None   # None: model default
    # characterization
    ber_search_low: float = 1e-5
    ber_search_high: float = 0.25
    ber_search_steps: int = 9          # logarithmic grid resolution
    evaluation_repeats: int = 2        # injection is stochastic; average a few runs
    fine_validation_fraction: float = 0.5
    fine_step_factor: float = 1.5      # multiplicative per-tensor BER increase
    fine_max_rounds: int = 6
    # outer loop
    max_outer_iterations: int = 2
    # numeric precision of the DNN stored in approximate DRAM
    bits: int = 32
    seed: int = 0
    # worker processes for the characterization / boosting evaluations
    # (> 1 routes through repro.parallel.SweepExecutor; results are
    # bit-identical to the serial run)
    processes: int = 0

    def __post_init__(self) -> None:
        if self.retrain_epochs < 0:
            raise ValueError("retrain_epochs must be non-negative")
        if self.ramp_every_epochs <= 0:
            raise ValueError("ramp_every_epochs must be positive")
        if not 0 < self.ber_search_low < self.ber_search_high <= 0.5:
            raise ValueError("require 0 < ber_search_low < ber_search_high <= 0.5")
        if self.ber_search_steps < 2:
            raise ValueError("ber_search_steps must be at least 2")
        if self.evaluation_repeats <= 0:
            raise ValueError("evaluation_repeats must be positive")
        if not 0 < self.fine_validation_fraction <= 1.0:
            raise ValueError("fine_validation_fraction must be in (0, 1]")
        if self.fine_step_factor <= 1.0:
            raise ValueError("fine_step_factor must exceed 1.0")
        if self.bits not in (4, 8, 16, 32):
            raise ValueError("bits must be one of 4, 8, 16, 32")
        if self.processes < 0:
            raise ValueError("processes must be non-negative")

    def ber_grid(self) -> Sequence[float]:
        """Logarithmically spaced BER candidates for the coarse search."""
        return list(
            np.logspace(
                np.log10(self.ber_search_low),
                np.log10(self.ber_search_high),
                self.ber_search_steps,
            )
        )
