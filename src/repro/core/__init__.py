"""EDEN core: the paper's contribution.

The three steps of the framework (paper Figure 4):

1. **Boosting DNN error tolerance** — :mod:`repro.core.boosting` implements
   curricular retraining with implausible-value correction
   (:mod:`repro.core.correction`).
2. **DNN error tolerance characterization** — :mod:`repro.core.characterization`
   implements the coarse-grained (whole-DNN) and fine-grained (per weight /
   IFM) searches for the maximum tolerable bit error rate.
3. **DNN to DRAM mapping** — :mod:`repro.core.mapping` implements Algorithm 1
   plus the coarse module-level mapping.

:mod:`repro.core.pipeline` orchestrates the full iterative flow, and
:mod:`repro.core.offload` builds the error-model-driven version of the flow
(EDEN offloading, Section 4) from a device profile.
"""

from repro.core.config import AccuracyTarget, EdenConfig
from repro.core.correction import ImplausibleValueCorrector, ThresholdStore
from repro.core.boosting import BoostResult, curricular_retrain, non_curricular_retrain
from repro.core.characterization import (
    CoarseCharacterization,
    FineCharacterization,
    coarse_grained_characterization,
    fine_grained_characterization,
)
from repro.core.mapping import (
    CoarseMapping,
    FineMapping,
    coarse_grained_mapping,
    fine_grained_mapping,
)
from repro.core.pipeline import Eden, EdenResult
from repro.core.offload import build_offload_injector, profile_and_fit

__all__ = [
    "AccuracyTarget",
    "EdenConfig",
    "ImplausibleValueCorrector",
    "ThresholdStore",
    "BoostResult",
    "curricular_retrain",
    "non_curricular_retrain",
    "CoarseCharacterization",
    "FineCharacterization",
    "coarse_grained_characterization",
    "fine_grained_characterization",
    "CoarseMapping",
    "FineMapping",
    "coarse_grained_mapping",
    "fine_grained_mapping",
    "Eden",
    "EdenResult",
    "build_offload_injector",
    "profile_and_fit",
]
