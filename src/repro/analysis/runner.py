"""Unified sweep runner for every injection experiment.

Before this module existed, :mod:`repro.analysis.sweep`,
:mod:`repro.core.characterization`, :mod:`repro.core.boosting` and the figure
benchmarks each carried their own copy of the same loop: install an injector
on the network, reseed it per repeat, evaluate, average, restore the previous
injector.  That loop now lives in
:class:`repro.engine.session.InferenceSession` (which also owns batching and
the static-store/per-read read semantics); :class:`ExperimentRunner` binds one
session to a (network, dataset, metric) triple and adds the sweep vocabulary
plus the things the historical copies could not share:

* **injector reuse** — one :class:`~repro.dram.injection.BitErrorInjector`
  (or :class:`~repro.dram.injection.DeviceBackedInjector`) is reused across
  all points of a sweep; per point only the error model / operating point is
  swapped and the RNG restarted, which is stream-identical to constructing a
  fresh injector with that seed;
* **memoized baseline scores** — the injection-free score of a
  (network, dataset, metric) triple is computed once per runner;
* **optional process-pool parallelism** — independent sweep points can be
  fanned out across worker processes (``processes=N``).  Each point is
  seeded independently, so parallel results are identical to serial ones.

Seeding conventions differ between the historical call sites (``seed +
repeat`` in the sweeps and retraining, ``seed + repeat * 101`` in the
characterization); ``reseed_stride`` preserves each convention so existing
results stay bit-exact.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.dram.device import ApproximateDram, DramOperatingPoint
from repro.dram.error_models import ErrorModel
from repro.dram.injection import BitErrorInjector, Corrector, DeviceBackedInjector
from repro.engine.session import InferenceSession, ReadSemantics
from repro.nn.datasets import Dataset
from repro.nn.network import Network

#: module-level worker state for process-pool sweeps (set by the initializer
#: once per worker instead of pickling the network into every task).
_WORKER_STATE: dict = {}


def _init_worker(network: Network, dataset: Dataset, metric: str,
                 semantics: ReadSemantics) -> None:
    _WORKER_STATE["runner"] = ExperimentRunner(network, dataset, metric=metric,
                                               semantics=semantics)


def _worker_ber_point(error_model: ErrorModel, ber: float, bits: int,
                      corrector: Optional[Corrector], repeats: int, seed: int,
                      stride: int) -> float:
    runner: ExperimentRunner = _WORKER_STATE["runner"]
    return runner._ber_point(error_model, ber, bits, corrector, repeats, seed, stride)


class ExperimentRunner:
    """Scores one network/dataset pair under many injection scenarios.

    The install/reseed/evaluate/restore loop itself lives in
    :class:`repro.engine.session.InferenceSession`; the runner binds one
    session to the (network, dataset, metric) triple and layers the sweep
    vocabulary (BER grids, device operating points, process-pool fan-out of
    sweep points) on top.  ``semantics`` selects the session's read
    semantics: the default :attr:`ReadSemantics.PER_READ` reproduces the
    historical per-batch injection results bit-exactly, while
    :attr:`ReadSemantics.STATIC_STORE` materializes corrupted weights once
    per operating point (paper-faithful, and integer factors faster on
    weight-dominated sweeps).

    ``seed``, ``repeats`` and ``reseed_stride`` set the default
    repeat-averaging loop (each repeat restarts the injection stream at
    ``seed + repeat * reseed_stride``); ``processes`` > 1 fans independent
    sweep points out over a worker pool.
    """

    def __init__(self, network: Network, dataset: Dataset, *,
                 metric: str = "accuracy", seed: int = 0,
                 repeats: int = 1, reseed_stride: int = 1,
                 processes: int = 0,
                 semantics: ReadSemantics = ReadSemantics.PER_READ):
        self.network = network
        self.dataset = dataset
        self.metric = metric
        self.seed = int(seed)
        self.repeats = int(repeats)
        self.reseed_stride = int(reseed_stride)
        self.processes = int(processes)
        self.semantics = semantics
        self.session = InferenceSession(
            network, dataset, semantics=semantics, metric=metric, seed=seed,
            repeats=repeats, reseed_stride=reseed_stride,
        )
        self._pool = None

    @property
    def stats(self) -> Dict[str, int]:
        """Evaluation counters of the underlying session (serial path only)."""
        return self.session.stats

    # -- the shared loop ----------------------------------------------------------
    def baseline(self, dataset: Optional[Dataset] = None) -> float:
        """Injection-free validation score on ``dataset``.

        Memoized only for the runner's own dataset: ad-hoc datasets (e.g.
        subsamples) are evaluated fresh, and a runner is bound to one network
        state — retraining the network warrants a new runner.  Returns the
        score.
        """
        return self.session.baseline(dataset)

    def score(self, injector, *, repeats: Optional[int] = None,
              seed: Optional[int] = None, stride: Optional[int] = None,
              dataset: Optional[Dataset] = None) -> float:
        """Mean validation score with ``injector`` installed.

        The injector's RNG is restarted at ``seed + repeat * stride`` before
        each of the ``repeats`` streams (injection is stochastic; averaging
        a few streams tames the noise), and the network's previous injector
        is always restored.  ``dataset`` defaults to the runner's own.
        Under static-store semantics the weights are materialized once per
        operating point and only the IFM stream is reseeded per repeat.
        Returns the score averaged over repeats.
        """
        return self.session.score(injector, repeats=repeats, seed=seed,
                                  stride=stride, dataset=dataset)

    def evaluate(self, injector=None, *, repeats: Optional[int] = None,
                 seed: Optional[int] = None, stride: Optional[int] = None,
                 dataset: Optional[Dataset] = None) -> float:
        """Score ``injector`` (or the baseline when it is None) in one call.

        ``repeats``/``seed``/``stride``/``dataset`` forward to :meth:`score`.
        Returns :meth:`baseline` for ``injector=None``, else :meth:`score`.
        """
        if injector is None:
            return self.baseline(dataset)
        return self.score(injector, repeats=repeats, seed=seed, stride=stride,
                          dataset=dataset)

    # -- model-driven sweeps ------------------------------------------------------
    def _ber_point(self, error_model: ErrorModel, ber: float, bits: int,
                   corrector: Optional[Corrector], repeats: int, seed: int,
                   stride: int) -> float:
        injector = BitErrorInjector(error_model.with_ber(ber), bits=bits,
                                    corrector=corrector, seed=seed)
        return self.score(injector, repeats=repeats, seed=seed, stride=stride)

    def ber_sweep(self, error_model: ErrorModel, bers: Sequence[float], *,
                  bits: int = 32, corrector: Optional[Corrector] = None,
                  repeats: Optional[int] = None, seed: Optional[int] = None,
                  stride: Optional[int] = None) -> Dict[float, float]:
        """Score at each bit error rate in ``bers`` (the Figure 8/10 x-axis).

        Every point rescales the base ``error_model`` to the target BER and
        restarts the injection stream (``repeats`` streams from ``seed``
        spaced by ``stride``), injecting at ``bits``-bit precision through
        the optional ``corrector`` — so points are order-independent, which
        is what makes the process-pool fan-out below legal.  Returns a
        ``{ber: score}`` dict.
        """
        repeats = self.repeats if repeats is None else int(repeats)
        seed = self.seed if seed is None else int(seed)
        stride = self.reseed_stride if stride is None else int(stride)

        if self.processes > 1 and len(bers) > 1:
            return self._ber_sweep_parallel(error_model, bers, bits, corrector,
                                            repeats, seed, stride)

        # Serial path: one injector object, reused across all points.
        injector = BitErrorInjector(error_model, bits=bits, corrector=corrector,
                                    seed=seed)
        results: Dict[float, float] = {}
        for ber in bers:
            injector.set_error_model(error_model.with_ber(ber))
            results[float(ber)] = self.score(injector, repeats=repeats, seed=seed,
                                             stride=stride)
        return results

    def _worker_pool(self):
        """Lazily created, cached process pool (workers hold the network).

        Spinning a pool per sweep would re-pickle the network into every
        worker for every call; caching pays that once per runner.  The pool
        is shut down by :meth:`close` / garbage collection / interpreter
        exit.  Workers snapshot the network at pool creation — a runner (like
        its serial memoization) is bound to one network state, so mutate or
        retrain the network and you need a fresh runner.  ``stats`` only
        counts serial evaluations; worker-side counts stay in the workers.
        """
        if self._pool is None:
            import concurrent.futures

            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.processes,
                initializer=_init_worker,
                initargs=(self.network, self.dataset, self.metric,
                          self.semantics),
            )
        return self._pool

    def close(self) -> None:
        """Shut down the worker pools, if any were started."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self.session.close()

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _ber_sweep_parallel(self, error_model: ErrorModel, bers: Sequence[float],
                            bits: int, corrector: Optional[Corrector],
                            repeats: int, seed: int, stride: int) -> Dict[float, float]:
        pool = self._worker_pool()
        futures = [
            pool.submit(_worker_ber_point, error_model, float(ber), bits,
                        corrector, repeats, seed, stride)
            for ber in bers
        ]
        return {float(ber): future.result() for ber, future in zip(bers, futures)}

    # -- device-backed sweeps -----------------------------------------------------
    def device_sweep(self, device: ApproximateDram,
                     op_points: Sequence[DramOperatingPoint], *,
                     bits: int = 32, corrector: Optional[Corrector] = None,
                     repeats: Optional[int] = None, seed: Optional[int] = None,
                     ) -> Dict[DramOperatingPoint, float]:
        """Score with tensors read from ``device`` at each of ``op_points``.

        One :class:`DeviceBackedInjector` (at ``bits``-bit precision, with
        the optional ``corrector``, averaging ``repeats`` streams from
        ``seed``) serves every point: tensor base addresses are assigned
        once (deterministically, in load order), so the same weak cells
        corrupt the same tensor elements at every operating point — matching
        real-device behaviour and the fresh-injector-per-point results of
        the historical loop.  Returns an ``{op_point: score}`` dict.
        """
        seed = self.seed if seed is None else int(seed)
        repeats = self.repeats if repeats is None else int(repeats)
        injector = DeviceBackedInjector(device, op_points[0] if op_points else
                                        DramOperatingPoint.nominal(),
                                        bits=bits, corrector=corrector, seed=seed)
        results: Dict[DramOperatingPoint, float] = {}
        for op_point in op_points:
            injector.set_operating_point(op_point)
            results[op_point] = self.score(injector, repeats=repeats, seed=seed)
        return results
