"""Unified sweep runner for every injection experiment.

Before this module existed, :mod:`repro.analysis.sweep`,
:mod:`repro.core.characterization`, :mod:`repro.core.boosting` and the figure
benchmarks each carried their own copy of the same loop: install an injector
on the network, reseed it per repeat, evaluate, average, restore the previous
injector.  That loop now lives in
:class:`repro.engine.session.InferenceSession` (which also owns batching and
the static-store/per-read read semantics); :class:`ExperimentRunner` binds one
session to a (network, dataset, metric) triple and adds the sweep vocabulary
plus the things the historical copies could not share:

* **injector reuse** — one :class:`~repro.dram.injection.BitErrorInjector`
  (or :class:`~repro.dram.injection.DeviceBackedInjector`) is reused across
  all points of a sweep; per point only the error model / operating point is
  swapped and the RNG restarted, which is stream-identical to constructing a
  fresh injector with that seed;
* **memoized baseline scores** — the injection-free score of a
  (network, dataset, metric) triple is computed once per runner;
* **shared-memory parallelism** — with ``processes=N`` the runner holds one
  :class:`repro.parallel.SweepExecutor`: the network and dataset are
  exported to shared memory once, worker processes attach zero-copy views,
  and every sweep family fans out through the same pool — BER grids
  (:meth:`~ExperimentRunner.ber_sweep`), device operating points
  (:meth:`~ExperimentRunner.device_sweep`), per-tensor BER assignments
  (:meth:`~ExperimentRunner.per_tensor_sweep`) and the repeat loop of a
  single point (:meth:`~ExperimentRunner.score`).  Each task is
  independently seeded with exactly the stream the serial loop would have
  restarted, so parallel results are bit-identical to serial ones.

Seeding conventions differ between the historical call sites (``seed +
repeat`` in the sweeps and retraining, ``seed + repeat * 101`` in the
characterization); ``reseed_stride`` preserves each convention so existing
results stay bit-exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.dram.device import ApproximateDram, DramOperatingPoint
from repro.dram.error_models import ErrorModel
from repro.dram.injection import BitErrorInjector, Corrector, DeviceBackedInjector
from repro.engine.session import InferenceSession, ReadSemantics, _resolve_codec
from repro.nn.datasets import Dataset
from repro.nn.network import Network


class ExperimentRunner:
    """Scores one network/dataset pair under many injection scenarios.

    The install/reseed/evaluate/restore loop itself lives in
    :class:`repro.engine.session.InferenceSession`; the runner binds one
    session to the (network, dataset, metric) triple and layers the sweep
    vocabulary (BER grids, device operating points, per-tensor BER
    assignments, shared-memory fan-out of sweep points) on top.
    ``semantics`` selects the session's read semantics: the default
    :attr:`ReadSemantics.PER_READ` reproduces the historical per-batch
    injection results bit-exactly, while :attr:`ReadSemantics.STATIC_STORE`
    materializes corrupted weights once per operating point (paper-faithful,
    and integer factors faster on weight-dominated sweeps).

    ``seed``, ``repeats`` and ``reseed_stride`` set the default
    repeat-averaging loop (each repeat restarts the injection stream at
    ``seed + repeat * reseed_stride``); ``processes`` > 1 routes independent
    work through a persistent :class:`repro.parallel.SweepExecutor` whose
    workers hold zero-copy shared-memory views of the network and dataset.
    """

    def __init__(self, network: Network, dataset: Dataset, *,
                 metric: str = "accuracy", seed: int = 0,
                 repeats: int = 1, reseed_stride: int = 1,
                 processes: int = 0,
                 semantics: ReadSemantics = ReadSemantics.PER_READ):
        self.network = network
        self.dataset = dataset
        self.metric = metric
        self.seed = int(seed)
        self.repeats = int(repeats)
        self.reseed_stride = int(reseed_stride)
        self.processes = int(processes)
        self.semantics = semantics
        self.session = InferenceSession(
            network, dataset, semantics=semantics, metric=metric, seed=seed,
            repeats=repeats, reseed_stride=reseed_stride,
        )
        self._executor = None

    @property
    def stats(self) -> Dict[str, int]:
        """Evaluation counters of the underlying session (serial path only)."""
        return self.session.stats

    # -- the shared loop ----------------------------------------------------------
    def baseline(self, dataset: Optional[Dataset] = None) -> float:
        """Injection-free validation score on ``dataset``.

        Memoized only for the runner's own dataset: ad-hoc datasets (e.g.
        subsamples) are evaluated fresh, and a runner is bound to one network
        state — retraining the network warrants a new runner.  Returns the
        score.
        """
        return self.session.baseline(dataset)

    def score(self, injector, *, repeats: Optional[int] = None,
              seed: Optional[int] = None, stride: Optional[int] = None,
              dataset: Optional[Dataset] = None) -> float:
        """Mean validation score with ``injector`` installed.

        The injector's RNG is restarted at ``seed + repeat * stride`` before
        each of the ``repeats`` streams (injection is stochastic; averaging
        a few streams tames the noise), and the network's previous injector
        is always restored.  ``dataset`` defaults to the runner's own.
        Under static-store semantics the weights are materialized once per
        operating point and only the IFM stream is reseeded per repeat.
        With ``processes`` > 1 and several repeats, per-read repeat streams
        are evaluated concurrently on the executor and averaged in repeat
        order — bit-identical to the serial mean.  (Static-store repeats
        stay serial: they share one weight store materialized at the base
        ``seed``, which an isolated per-repeat task would have to rebuild
        at its shifted seed, changing the stored weights.)  Returns the
        score averaged over repeats.
        """
        repeats = self.repeats if repeats is None else int(repeats)
        seed = self.seed if seed is None else int(seed)
        stride = self.reseed_stride if stride is None else int(stride)
        if (self.processes > 1 and repeats > 1 and injector is not None
                and self.semantics is ReadSemantics.PER_READ):
            return self._sweep_executor().score_repeats(
                injector, repeats=repeats, seed=seed, stride=stride,
                dataset=self._executor_dataset(dataset))
        return self.session.score(injector, repeats=repeats, seed=seed,
                                  stride=stride, dataset=dataset)

    def evaluate(self, injector=None, *, repeats: Optional[int] = None,
                 seed: Optional[int] = None, stride: Optional[int] = None,
                 dataset: Optional[Dataset] = None) -> float:
        """Score ``injector`` (or the baseline when it is None) in one call.

        ``repeats``/``seed``/``stride``/``dataset`` forward to :meth:`score`.
        Returns :meth:`baseline` for ``injector=None``, else :meth:`score`.
        """
        if injector is None:
            return self.baseline(dataset)
        return self.score(injector, repeats=repeats, seed=seed, stride=stride,
                          dataset=dataset)

    # -- model-driven sweeps ------------------------------------------------------
    def ber_sweep(self, error_model: ErrorModel, bers: Sequence[float], *,
                  bits: int = 32, corrector: Optional[Corrector] = None,
                  correction=None,
                  repeats: Optional[int] = None, seed: Optional[int] = None,
                  stride: Optional[int] = None) -> Dict[float, float]:
        """Score at each bit error rate in ``bers`` (the Figure 8/10 x-axis).

        Every point rescales the base ``error_model`` to the target BER and
        restarts the injection stream (``repeats`` streams from ``seed``
        spaced by ``stride``), injecting at ``bits``-bit precision through
        the optional ``corrector`` — so points are order-independent, which
        is what makes the executor fan-out below legal.  ``correction``
        (a codec name from :data:`repro.core.ecc.CODECS` or an
        :class:`~repro.core.ecc.RsCodecModel`) layers symbol-level ECC over
        every injected load, scoring the post-correction weights; see
        :meth:`ecc_sweep` for the variant that also returns the decode
        accounting.  Returns a ``{ber: score}`` dict.
        """
        repeats = self.repeats if repeats is None else int(repeats)
        seed = self.seed if seed is None else int(seed)
        stride = self.reseed_stride if stride is None else int(stride)
        codec = _resolve_codec(correction)

        if self.processes > 1 and len(bers) > 1:
            # One fresh injector per point, pickled into its task — the
            # stream each worker restarts is exactly the serial one.
            injectors = [
                BitErrorInjector(error_model.with_ber(ber), bits=bits,
                                 corrector=corrector, seed=seed, ecc=codec)
                for ber in bers
            ]
            scores = self._sweep_executor().score_many(
                injectors, repeats=repeats, seed=seed, stride=stride)
            return {float(ber): score for ber, score in zip(bers, scores)}

        # Serial path: one injector object, reused across all points.
        injector = BitErrorInjector(error_model, bits=bits, corrector=corrector,
                                    seed=seed, ecc=codec)
        results: Dict[float, float] = {}
        for ber in bers:
            injector.set_error_model(error_model.with_ber(ber))
            results[float(ber)] = self.score(injector, repeats=repeats, seed=seed,
                                             stride=stride)
        return results

    def ecc_sweep(self, error_model: ErrorModel, bers: Sequence[float], *,
                  bits: int = 32, correction="rs72_64",
                  repeats: Optional[int] = None, seed: Optional[int] = None,
                  stride: Optional[int] = None) -> Dict[float, Dict[str, float]]:
        """Raw vs ECC-corrected score plus decode accounting per BER point.

        At every rate in ``bers`` the base ``error_model`` is rescaled and
        scored twice under identical injection streams (``repeats`` streams
        from ``seed`` spaced by ``stride``, ``bits``-bit precision): once
        raw, once decoding each load through the ``correction`` codec (name
        or :class:`~repro.core.ecc.RsCodecModel`).  Points always run
        serially so the codec accounting stays in-process.  Returns
        ``{ber: {"raw", "corrected", "codewords", "corrected_codewords",
        "corrected_symbols", "uncorrectable_codewords",
        "miscorrected_codewords"}}``.
        """
        repeats = self.repeats if repeats is None else int(repeats)
        seed = self.seed if seed is None else int(seed)
        stride = self.reseed_stride if stride is None else int(stride)
        codec = _resolve_codec(correction)

        counters = ("codewords", "corrected_codewords", "corrected_symbols",
                    "uncorrectable_codewords", "miscorrected_codewords")
        raw_injector = BitErrorInjector(error_model, bits=bits, seed=seed)
        ecc_injector = BitErrorInjector(error_model, bits=bits, seed=seed,
                                        ecc=codec)
        results: Dict[float, Dict[str, float]] = {}
        for ber in bers:
            point_model = error_model.with_ber(ber)
            raw_injector.set_error_model(point_model)
            ecc_injector.set_error_model(point_model)
            raw = self.session.score(raw_injector, repeats=repeats,
                                     seed=seed, stride=stride)
            before = {key: ecc_injector.ecc_stats[key] for key in counters}
            corrected = self.session.score(ecc_injector, repeats=repeats,
                                           seed=seed, stride=stride)
            point = {"raw": raw, "corrected": corrected}
            for key in counters:
                point[key] = int(ecc_injector.ecc_stats[key]) - int(before[key])
            results[float(ber)] = point
        return results

    # -- device-backed sweeps -----------------------------------------------------
    def device_sweep(self, device: ApproximateDram,
                     op_points: Sequence[DramOperatingPoint], *,
                     bits: int = 32, corrector: Optional[Corrector] = None,
                     repeats: Optional[int] = None, seed: Optional[int] = None,
                     ) -> Dict[DramOperatingPoint, float]:
        """Score with tensors read from ``device`` at each of ``op_points``.

        One :class:`DeviceBackedInjector` (at ``bits``-bit precision, with
        the optional ``corrector``, averaging ``repeats`` streams from
        ``seed``) serves every point: tensor base addresses are assigned
        once (deterministically, in load order), so the same weak cells
        corrupt the same tensor elements at every operating point — matching
        real-device behaviour and the fresh-injector-per-point results of
        the historical loop.  With ``processes`` > 1 each point runs as its
        own executor task with a fresh, identically-addressed injector —
        bit-identical to the serial loop.  Returns an ``{op_point: score}``
        dict.
        """
        seed = self.seed if seed is None else int(seed)
        repeats = self.repeats if repeats is None else int(repeats)

        if self.processes > 1 and len(op_points) > 1:
            injectors = [
                DeviceBackedInjector(device, op_point, bits=bits,
                                     corrector=corrector, seed=seed)
                for op_point in op_points
            ]
            scores = self._sweep_executor().score_many(
                injectors, repeats=repeats, seed=seed,
                stride=self.reseed_stride)
            return {op: score for op, score in zip(op_points, scores)}

        injector = DeviceBackedInjector(device, op_points[0] if op_points else
                                        DramOperatingPoint.nominal(),
                                        bits=bits, corrector=corrector, seed=seed)
        results: Dict[DramOperatingPoint, float] = {}
        for op_point in op_points:
            injector.set_operating_point(op_point)
            results[op_point] = self.score(injector, repeats=repeats, seed=seed)
        return results

    # -- per-tensor sweeps --------------------------------------------------------
    def per_tensor_sweep(self, error_model: ErrorModel,
                         assignments: Sequence[Dict[str, float]], *,
                         bits: int = 32,
                         corrector: Optional[Corrector] = None,
                         repeats: Optional[int] = None,
                         seed: Optional[int] = None,
                         stride: Optional[int] = None,
                         dataset: Optional[Dataset] = None) -> List[float]:
        """Score a list of per-tensor BER ``assignments`` (fine-grained axis).

        Each assignment maps tensor names to the BER their DRAM partition
        would exhibit (the fine-grained mapping vocabulary); every one is
        scored with ``error_model`` rescaled per tensor, at ``bits``-bit
        precision through the optional ``corrector``, averaging ``repeats``
        streams from ``seed`` spaced by ``stride`` on ``dataset`` (the
        runner's own by default).  Assignments are independent, so with
        ``processes`` > 1 they fan out over the executor — bit-identical to
        the serial loop, which reuses one injector and swaps the assignment
        per point.  Returns the scores in assignment order.
        """
        repeats = self.repeats if repeats is None else int(repeats)
        seed = self.seed if seed is None else int(seed)
        stride = self.reseed_stride if stride is None else int(stride)

        if self.processes > 1 and len(assignments) > 1:
            injectors = [
                BitErrorInjector(error_model, bits=bits,
                                 per_tensor_ber=assignment,
                                 corrector=corrector, seed=seed)
                for assignment in assignments
            ]
            return self._sweep_executor().score_many(
                injectors, repeats=repeats, seed=seed, stride=stride,
                dataset=self._executor_dataset(dataset))

        injector = BitErrorInjector(error_model, bits=bits,
                                    corrector=corrector, seed=seed)
        scores: List[float] = []
        for assignment in assignments:
            injector.set_per_tensor_ber(assignment)
            scores.append(self.session.score(injector, repeats=repeats,
                                             seed=seed, stride=stride,
                                             dataset=dataset))
        return scores

    # -- executor plumbing --------------------------------------------------------
    def _executor_dataset(self, dataset):
        """Translate a per-call dataset into executor task form.

        ``None`` (and the runner's own dataset) mean "use the shared-memory
        copy the workers already hold"; anything else ships its arrays
        inline with each task.  Returns ``None`` or an ``(inputs, labels)``
        pair.
        """
        if dataset is None or dataset is self.dataset:
            return None
        if isinstance(dataset, Dataset):
            return (dataset.val_x, dataset.val_y)
        return dataset

    def _sweep_executor(self):
        """Lazily created, cached :class:`repro.parallel.SweepExecutor`.

        The executor exports the network and dataset to shared memory once
        and keeps its worker pool alive across sweeps; it is shut down by
        :meth:`close` / garbage collection / interpreter exit.  Workers
        snapshot the network at pool creation — a runner (like its serial
        memoization) is bound to one network state, so mutate or retrain
        the network and you need a fresh runner.  ``stats`` only counts
        serial evaluations; worker-side counts stay in the workers.
        Returns the executor.
        """
        if self._executor is None:
            from repro.parallel import SweepExecutor

            self._executor = SweepExecutor(
                self.network, self.dataset, metric=self.metric,
                semantics=self.semantics,
                batch_size=self.session.batch_size,
                processes=self.processes,
            )
        return self._executor

    def close(self) -> None:
        """Shut down the executor pool, if one was started."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None
        self.session.close()

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
