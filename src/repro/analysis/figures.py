"""Regeneration of the paper's figures as numeric data series.

Each function returns the data behind one figure (nested dictionaries keyed by
curve name and x value), so the benchmark harness can print the series and
assert on the qualitative shape the paper reports (orderings, crossovers,
monotonic collapse, retraining gains) without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.analysis.runner import ExperimentRunner
from repro.analysis.sweep import accuracy_on_device, ber_sweep, trcd_sweep, voltage_sweep_points
from repro.core.boosting import curricular_retrain, non_curricular_retrain
from repro.core.characterization import fine_grained_characterization
from repro.core.config import AccuracyTarget, EdenConfig
from repro.core.correction import ImplausibleValueCorrector, ThresholdStore
from repro.core.mapping import fine_grained_mapping
from repro.core.offload import profile_and_fit
from repro.dram.device import ApproximateDram, DramOperatingPoint
from repro.dram.error_models import UniformErrorModel, make_error_model
from repro.dram.geometry import DramGeometry, PartitionLevel
from repro.dram.partitions import PartitionTable
from repro.dram.profiler import DEFAULT_PATTERNS, SoftMCProfiler
from repro.dram.vendors import VENDOR_PROFILES
from repro.nn.models import build_model_with_dataset, get_spec
from repro.nn.quantization import QuantizedLoadTransform
from repro.nn.training import Trainer
from repro.nn.tensor import DataKind

#: small geometry used whenever a figure needs device profiling (keeps the
#: SoftMC-style sweeps fast while preserving many rows per bank).
PROFILING_GEOMETRY = DramGeometry(row_size_bytes=512, subarrays_per_bank=4,
                                  rows_per_subarray=64)


# ---------------------------------------------------------------------------
# Figure 5: BER vs supply voltage / tRCD per data pattern, three vendors
# ---------------------------------------------------------------------------

def fig05_ber_vs_parameters(vendors: Sequence[str] = ("A", "B", "C"),
                            patterns: Sequence[int] = DEFAULT_PATTERNS,
                            voltages: Sequence[float] = (1.05, 1.10, 1.15, 1.20, 1.25, 1.30),
                            trcd_values_ns: Sequence[float] = (2.5, 5.0, 7.5, 10.0),
                            rows_to_profile: int = 8, trials: int = 4,
                            seed: int = 0) -> Dict:
    """{"voltage"|"trcd": {vendor: {pattern: {x: BER}}}}."""
    result = {"voltage": {}, "trcd": {}}
    for vendor in vendors:
        device = ApproximateDram(vendor, geometry=PROFILING_GEOMETRY, seed=seed)
        profiler = SoftMCProfiler(device, rows_to_profile=rows_to_profile,
                                  trials=trials, seed=seed)
        voltage_curves: Dict[int, Dict[float, float]] = {p: {} for p in patterns}
        for vdd in voltages:
            profile = profiler.profile(
                DramOperatingPoint.from_reductions(delta_vdd=device.nominal_vdd - vdd),
                patterns=patterns,
            )
            for pattern in patterns:
                voltage_curves[pattern][vdd] = profile.ber_for_pattern(pattern)
        result["voltage"][vendor] = voltage_curves

        trcd_curves: Dict[int, Dict[float, float]] = {p: {} for p in patterns}
        for trcd in trcd_values_ns:
            profile = profiler.profile(
                DramOperatingPoint.from_reductions(
                    delta_trcd_ns=device.nominal_timing.trcd_ns - trcd),
                patterns=patterns,
            )
            for pattern in patterns:
                trcd_curves[pattern][trcd] = profile.ber_for_pattern(pattern)
        result["trcd"][vendor] = trcd_curves
    return result


# ---------------------------------------------------------------------------
# Figure 7: error-model validation against the (simulated) real device
# ---------------------------------------------------------------------------

def fig07_model_validation(model_name: str = "lenet",
                           vendors: Sequence[str] = ("A", "B", "C"),
                           voltages: Sequence[float] = (1.05, 1.15, 1.25, 1.35),
                           epochs: Optional[int] = None,
                           seed: int = 0) -> Dict:
    """{vendor: {"device": {V: acc}, "error_model": {V: acc}, "model_id": id}}."""
    spec = get_spec(model_name)
    network, dataset, _ = build_model_with_dataset(model_name, seed=seed)
    Trainer(network, dataset, spec.training_config(epochs=epochs)).fit()
    thresholds = ThresholdStore.from_network(network, dataset.train_x)
    corrector = ImplausibleValueCorrector(thresholds)

    # One runner (and one engine session) serves every vendor, operating
    # point and fitted model: each sweep call restarts its injection stream
    # at the runner seed, which is stream-identical to the fresh-runner-per-
    # point loops this replaces.
    result: Dict[str, Dict] = {}
    runner = ExperimentRunner(network, dataset, metric=spec.metric, seed=seed)
    for vendor in vendors:
        device = ApproximateDram(vendor, geometry=PROFILING_GEOMETRY, seed=seed + 1)
        op_points = voltage_sweep_points(device, voltages)

        device_curve_raw = runner.device_sweep(device, op_points, corrector=corrector)
        device_curve = {op.vdd: acc for op, acc in device_curve_raw.items()}

        model_curve: Dict[float, float] = {}
        fitted_id = 0
        for op_point in op_points:
            if device.expected_ber(op_point) <= 0:
                fitted_model = UniformErrorModel(0.0, 0.0, seed=seed)
            else:
                fitted = profile_and_fit(device, op_point, rows_to_profile=8,
                                         trials=4, seed=seed)
                fitted_model, fitted_id = fitted.model, fitted.model_id
            curve = runner.ber_sweep(fitted_model,
                                     [max(fitted_model.expected_ber(), 1e-12)],
                                     corrector=corrector)
            model_curve[op_point.vdd] = list(curve.values())[0]
        result[vendor] = {
            "device": device_curve,
            "error_model": model_curve,
            "model_id": fitted_id,
        }
    return result


# ---------------------------------------------------------------------------
# Figure 8: accuracy vs BER across error models and precisions
# ---------------------------------------------------------------------------

def fig08_error_model_sensitivity(model_name: str = "resnet101",
                                  bers: Sequence[float] = (1e-4, 1e-3, 1e-2, 5e-2, 1e-1),
                                  precisions: Sequence[int] = (4, 8, 16, 32),
                                  error_model_ids: Sequence[int] = (0, 1, 2, 3),
                                  epochs: Optional[int] = None,
                                  with_correction: bool = False,
                                  seed: int = 0,
                                  processes: int = 0,
                                  network=None, dataset=None) -> Dict:
    """{error_model_id: {bits: {BER: accuracy}}} for the baseline (unboosted) DNN.

    ``with_correction`` is off by default because Figure 8 studies the *raw*
    error tolerance of the baseline DNNs (Section 6.3), including the accuracy
    collapse from implausible FP32 values.  ``processes > 1`` parallelizes
    each BER sweep over a process pool (identical results, less wall clock).
    Pass a pre-trained ``network`` (with its ``dataset``) to skip the
    in-function training, e.g. when probing several correction settings of
    the same baseline.
    """
    spec = get_spec(model_name)
    if network is None or dataset is None:
        network, dataset, _ = build_model_with_dataset(model_name, seed=seed)
        Trainer(network, dataset, spec.training_config(epochs=epochs)).fit()
    corrector = None
    if with_correction:
        corrector = ImplausibleValueCorrector(
            ThresholdStore.from_network(network, dataset.train_x)
        )

    result: Dict[int, Dict[int, Dict[float, float]]] = {}
    with ExperimentRunner(network, dataset, metric=spec.metric, seed=seed,
                          processes=processes) as runner:
        for model_id in error_model_ids:
            error_model = make_error_model(model_id, 1e-3, seed=seed)
            result[model_id] = {}
            for bits in precisions:
                if bits == 4 and not spec.supports_int4:
                    continue
                result[model_id][bits] = runner.ber_sweep(
                    error_model, bers, bits=bits, corrector=corrector,
                )
    return result


# ---------------------------------------------------------------------------
# Figure 9: baseline vs boosted accuracy on the (simulated) real device
# ---------------------------------------------------------------------------

def fig09_boosted_on_device(model_name: str = "lenet",
                            vendor: str = "A",
                            voltages: Sequence[float] = (1.05, 1.07, 1.09, 1.35),
                            trcd_values_ns: Sequence[float] = (3.0, 3.5, 4.0, 12.5),
                            retrain_epochs: int = 12,
                            epochs: Optional[int] = None,
                            seed: int = 0) -> Dict:
    """{"voltage"|"trcd": {"baseline": {x: acc}, "boosted": {x: acc}}}.

    The default sweep points sit in the device's accuracy *transition*
    region (vendor A's BER rises from ~1e-4 to ~1e-1 between 1.09 V and
    1.05 V and between 4.0 ns and 3.0 ns) — at the paper-style coarse grids
    the simulated module jumps straight from full accuracy to collapse and
    no retraining effect is observable.  12 retraining epochs match the
    paper's 10-15 epoch budget; shorter budgets trade away too much clean
    accuracy on the scaled-down analogue.
    """
    spec = get_spec(model_name)
    network, dataset, _ = build_model_with_dataset(model_name, seed=seed)
    Trainer(network, dataset, spec.training_config(epochs=epochs)).fit()
    thresholds = ThresholdStore.from_network(network, dataset.train_x)
    corrector = ImplausibleValueCorrector(thresholds)

    device = ApproximateDram(vendor, geometry=PROFILING_GEOMETRY, seed=seed + 1)
    config = EdenConfig(retrain_epochs=retrain_epochs, evaluation_repeats=1, seed=seed)

    # Boost against the error model fitted at an aggressive operating point.
    boost_op = DramOperatingPoint.from_reductions(delta_vdd=0.25)
    fitted = profile_and_fit(device, boost_op, rows_to_profile=8, trials=4, seed=seed)
    target_ber = max(fitted.model.expected_ber() * 4.0, 1e-3)
    boost = curricular_retrain(network, dataset, fitted.model, target_ber, config, thresholds)
    boosted = boost.network

    result: Dict[str, Dict[str, Dict[float, float]]] = {"voltage": {}, "trcd": {}}

    voltage_ops = voltage_sweep_points(device, voltages)
    for label, net in (("baseline", network), ("boosted", boosted)):
        curve = accuracy_on_device(net, dataset, device, voltage_ops,
                                   corrector=corrector, metric=spec.metric, seed=seed)
        result["voltage"][label] = {op.vdd: acc for op, acc in curve.items()}

    trcd_ops = trcd_sweep(device, trcd_values_ns)
    for label, net in (("baseline", network), ("boosted", boosted)):
        curve = accuracy_on_device(net, dataset, device, trcd_ops,
                                   corrector=corrector, metric=spec.metric, seed=seed)
        result["trcd"][label] = {op.trcd_ns: acc for op, acc in curve.items()}
    return result


# ---------------------------------------------------------------------------
# Figure 10: good-fit vs poor-fit error model; curricular vs non-curricular
# ---------------------------------------------------------------------------

def fig10_retraining_ablation(model_name: str = "lenet",
                              bers: Sequence[float] = (1e-3, 5e-3, 1e-2, 5e-2),
                              target_ber: float = 1e-2,
                              retrain_epochs: int = 12,
                              epochs: Optional[int] = None,
                              seed: int = 0) -> Dict:
    """Left panel: baseline / poor-fit retrain / good-fit retrain accuracy-vs-BER.
    Right panel: baseline / non-curricular / curricular accuracy-vs-BER.

    12 retraining epochs (the paper's 10-15 range) are needed for the
    curricular ramp to both reach the target rate and recover clean
    accuracy; with 8 epochs the boosted analogue wins at the target BER but
    pays for it at low BER.
    """
    spec = get_spec(model_name)
    network, dataset, _ = build_model_with_dataset(model_name, seed=seed)
    Trainer(network, dataset, spec.training_config(epochs=epochs)).fit()
    thresholds = ThresholdStore.from_network(network, dataset.train_x)
    corrector = ImplausibleValueCorrector(thresholds)
    config = EdenConfig(retrain_epochs=retrain_epochs, evaluation_repeats=1, seed=seed)

    # The device is dominated by data-dependent 1->0 flips; the good-fit model
    # is Error Model 3 with the same bias, the poor-fit model has the bias
    # reversed (errors land on the wrong bit values during retraining).
    good_fit = make_error_model(3, target_ber, seed=seed)
    poor_fit = make_error_model(1, target_ber, seed=seed + 5)
    evaluation_model = good_fit

    def sweep(net) -> Dict[float, float]:
        return ber_sweep(net, dataset, evaluation_model, bers, corrector=corrector,
                         metric=spec.metric, seed=seed)

    good_boost = curricular_retrain(network, dataset, good_fit, target_ber, config, thresholds)
    poor_boost = curricular_retrain(network, dataset, poor_fit, target_ber, config, thresholds)
    noncurricular = non_curricular_retrain(network, dataset, good_fit, target_ber, config,
                                           thresholds)
    return {
        "fit_quality": {
            "baseline": sweep(network),
            "poor_fit": sweep(poor_boost.network),
            "good_fit": sweep(good_boost.network),
        },
        "curriculum": {
            "baseline": sweep(network),
            "non_curricular": sweep(noncurricular.network),
            "curricular": sweep(good_boost.network),
        },
    }


# ---------------------------------------------------------------------------
# Figures 11-12: fine-grained characterization and mapping
# ---------------------------------------------------------------------------

def fig11_fine_characterization(model_name: str = "resnet101",
                                epochs: Optional[int] = None,
                                config: Optional[EdenConfig] = None,
                                seed: int = 0):
    """Per-IFM/weight tolerable BER of the model (returns the FineCharacterization)."""
    spec = get_spec(model_name)
    network, dataset, _ = build_model_with_dataset(model_name, seed=seed)
    Trainer(network, dataset, spec.training_config(epochs=epochs)).fit()
    config = config or EdenConfig(evaluation_repeats=1, fine_max_rounds=4,
                                  fine_validation_fraction=0.5, seed=seed)
    error_model = make_error_model(0, 1e-3, seed=seed)
    fine = fine_grained_characterization(
        network, dataset, error_model, AccuracyTarget.within_one_percent(),
        config=config, metric=spec.metric,
    )
    return fine


def fig12_fine_mapping(fine, num_partitions: int = 16,
                       voltage_levels: Sequence[float] = (1.05, 1.15, 1.25, 1.325),
                       seed: int = 0) -> Dict:
    """Map a fine characterization onto partitions at four voltage levels.

    Returns {"mapping": FineMapping, "partition_voltages": {...},
    "tensor_voltage": {tensor: vdd}} — the data behind Figure 12.
    """
    device = ApproximateDram("A", seed=seed)
    op_bers = {}
    for vdd in voltage_levels:
        op = DramOperatingPoint.from_reductions(delta_vdd=device.nominal_vdd - vdd)
        op_bers[op] = device.expected_ber(op)
    total_bytes = sum(spec.size_bytes for spec in fine.specs)
    partition_size = max(64 * 1024, int(total_bytes / max(num_partitions // 2, 1)) + 1)
    table = PartitionTable.synthetic(num_partitions, partition_size, op_bers,
                                     spread=0.25, seed=seed)
    mapping = fine_grained_mapping(fine, table)
    tensor_voltage = {
        tensor: mapping.operating_points[pid].vdd
        for tensor, pid in mapping.assignments.items()
    }
    return {
        "mapping": mapping,
        "partition_voltages": {pid: op.vdd for pid, op in mapping.operating_points.items()},
        "tensor_voltage": tensor_voltage,
        "partition_bers": {op.vdd: ber for op, ber in op_bers.items()},
    }


# ---------------------------------------------------------------------------
# Figures 13-14 and Section 7.2: system-level results
# ---------------------------------------------------------------------------

def fig13_fig14_cpu(operating_points: Optional[Dict[str, Dict[str, float]]] = None,
                    models: Sequence[str] = ("yolo-tiny", "yolo", "resnet101", "vgg16",
                                             "squeezenet1.1", "densenet201"),
                    precisions: Sequence[int] = (32, 8)) -> Dict:
    """CPU DRAM-energy reduction (Fig. 13) and speedup (Fig. 14) per model/precision."""
    from repro.analysis.tables import PAPER_TABLE3_FP32, PAPER_TABLE3_INT8
    from repro.arch.system import Platform, evaluate_platform

    result: Dict[str, Dict[int, Dict[str, float]]] = {}
    for name in models:
        result[name] = {}
        for bits in precisions:
            if operating_points is not None:
                point = operating_points[name]
            else:
                point = (PAPER_TABLE3_FP32 if bits == 32 else PAPER_TABLE3_INT8)[name]
            platform_result = evaluate_platform(
                Platform.CPU, name, point["delta_vdd"], point["delta_trcd_ns"], bits=bits,
            )
            result[name][bits] = {
                "energy_reduction": platform_result.energy_reduction,
                "speedup": platform_result.speedup,
                "ideal_trcd_speedup": platform_result.ideal_trcd_speedup,
            }
    return result


def sec72_gpu(models: Sequence[str] = ("yolo", "yolo-tiny"),
              precisions: Sequence[int] = (32, 8)) -> Dict:
    """GPU DRAM-energy reduction and speedup (Section 7.2)."""
    from repro.analysis.tables import PAPER_TABLE3_FP32, PAPER_TABLE3_INT8
    from repro.arch.system import Platform, evaluate_platform

    result: Dict[str, Dict[int, Dict[str, float]]] = {}
    for name in models:
        result[name] = {}
        for bits in precisions:
            point = (PAPER_TABLE3_FP32 if bits == 32 else PAPER_TABLE3_INT8)[name]
            r = evaluate_platform(Platform.GPU, name, point["delta_vdd"],
                                  point["delta_trcd_ns"], bits=bits)
            result[name][bits] = {
                "energy_reduction": r.energy_reduction,
                "speedup": r.speedup,
                "ideal_trcd_speedup": r.ideal_trcd_speedup,
            }
    return result


def sec72_accelerators(models: Sequence[str] = ("alexnet", "yolo-tiny"),
                       memory_types: Sequence[str] = ("DDR4-2400", "LPDDR3-1600")) -> Dict:
    """Eyeriss / TPU DRAM-energy reduction with DDR4 and LPDDR3 (Section 7.2)."""
    from repro.analysis.tables import PAPER_TABLE3_INT8
    from repro.arch.accelerator import AcceleratorModel, EYERISS_CONFIG, TPU_CONFIG
    from repro.arch.traffic import workload_for
    from repro.dram.device import DramOperatingPoint

    lpddr_bandwidth = 12.8
    result: Dict[str, Dict[str, Dict[str, float]]] = {}
    for accel_name, base_config in (("eyeriss", EYERISS_CONFIG), ("tpu", TPU_CONFIG)):
        result[accel_name] = {}
        for memory_type in memory_types:
            config = base_config
            if memory_type != base_config.memory_type:
                config = base_config.with_memory(memory_type, lpddr_bandwidth)
            model = AcceleratorModel(config)
            for workload_name in models:
                point = PAPER_TABLE3_INT8[workload_name]
                workload = workload_for(workload_name, bits=8)
                eden_op = DramOperatingPoint.from_reductions(
                    delta_vdd=point["delta_vdd"], delta_trcd_ns=point["delta_trcd_ns"],
                )
                reduction = model.dram_energy_reduction(workload, eden_op)
                speedup = model.speedup(workload, eden_op)
                result[accel_name].setdefault(memory_type, {})[workload_name] = {
                    "energy_reduction": reduction,
                    "speedup": speedup,
                }
    return result
