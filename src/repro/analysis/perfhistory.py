"""Continuous performance history: the shared harness behind ``benchmarks/``.

Every ``benchmarks/bench_*.py`` script used to hand-roll the same four jobs:
argparse scaffolding, a ``BENCH_*.json`` snapshot that the next run silently
overwrote, ad-hoc ``--check-*`` threshold flags, and per-script environment
hacks ("auto-skip the speedup gate at 1 CPU").  This module owns all of it,
modeled on perun-style "performance version systems": per-commit profiles
plus degradation detection against history instead of fixed thresholds.

The pieces
----------

* :class:`EnvFingerprint` — where a measurement ran: CPU count, Python /
  NumPy / BLAS versions, machine, git commit.  Two fingerprints are
  *compatible* when everything but the commit matches, so a 1-CPU container
  run can never be compared against a 4-CPU CI run.
* :class:`BenchRecord` — one benchmark run: flat ``metrics`` (floats and
  bools), ``units``, the fingerprint, a timestamp.
* :class:`HistoryStore` — the append-only per-commit store
  (``BENCH_history.jsonl``, one record per line).  The legacy ``BENCH_*.json``
  snapshots are still written as the latest-run view (see
  :func:`write_snapshot`), now stamped with the fingerprint.
* :class:`GateSpec` / :func:`evaluate_gates` — the degradation detector.
  ``identity``/``positive`` gates are unconditional hard failures;
  ``speedup`` gates compare against the median of a baseline window of
  prior runs from a compatible environment (± tolerance), keep the CI
  floor as an absolute minimum, and *skip* (rather than silently pass)
  when the environment cannot express the measurement — the one documented
  skip policy, see ``docs/benchmarks.md``.
* :data:`BENCHMARKS` — the registry of all eight benchmarks and their
  gates; ``repro.cli perf {report,check,list}`` renders trends and
  evaluates gates from it.

Scripts call :func:`add_harness_arguments` and :func:`finish_run`; CI calls
``python -m repro.cli perf check``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import statistics
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

MetricValue = Union[float, int, bool]

#: current on-disk schema version of history entries and snapshot stamps.
SCHEMA_VERSION = 1

#: default file the append-only history lives in (one JSON object per line).
DEFAULT_HISTORY = "BENCH_history.jsonl"

#: baseline window: how many prior compatible runs feed the median.
DEFAULT_WINDOW = 5

#: tolerated fractional drop below the baseline-window median before a
#: speedup gate fails (shared-runner wall clocks are noisy).
DEFAULT_TOLERANCE = 0.25


def _blas_name() -> str:
    """Best-effort name of the BLAS NumPy was built against.

    Returns the build-dependency name from ``numpy.show_config`` when the
    introspection API exists (NumPy >= 1.26), else ``"unknown"``.
    """
    try:
        import numpy as np

        config = np.show_config(mode="dicts")
        return str(config["Build Dependencies"]["blas"]["name"])
    except Exception:
        return "unknown"


def _git_commit() -> str:
    """Short commit hash of the working tree, or a CI/unknown fallback.

    Returns ``git rev-parse --short=12 HEAD`` when a repository is
    reachable from the current directory, else ``$GITHUB_SHA`` (truncated),
    else ``"unknown"``.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, timeout=10)
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    sha = os.environ.get("GITHUB_SHA", "")
    return sha[:12] if sha else "unknown"


@dataclass(frozen=True)
class EnvFingerprint:
    """Environment a benchmark ran in, for trajectory and compatibility.

    ``cpu_count``, ``python``, ``numpy``, ``blas`` and ``machine`` define
    *compatibility* (measurements are only comparable across runs where all
    five match; ``python`` matches at major.minor); ``git_commit`` stamps
    the trajectory but never affects compatibility.
    """

    cpu_count: int
    python: str
    numpy: str
    blas: str
    machine: str
    git_commit: str

    @classmethod
    def capture(cls) -> "EnvFingerprint":
        """Capture the current process environment as a fingerprint and return it."""
        import numpy as np

        return cls(cpu_count=os.cpu_count() or 1,
                   python=platform.python_version(),
                   numpy=np.__version__,
                   blas=_blas_name(),
                   machine=platform.machine(),
                   git_commit=_git_commit())

    def _python_minor(self) -> str:
        return ".".join(self.python.split(".")[:2])

    def compatible_with(self, other: "EnvFingerprint") -> bool:
        """Return whether measurements from ``other`` are comparable to ours.

        Everything except ``git_commit`` must match; Python versions are
        compared at major.minor granularity.
        """
        return (self.cpu_count == other.cpu_count
                and self._python_minor() == other._python_minor()
                and self.numpy == other.numpy
                and self.blas == other.blas
                and self.machine == other.machine)

    def to_dict(self) -> Dict[str, object]:
        """Return the fingerprint as a JSON-ready dict."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "EnvFingerprint":
        """Rebuild a fingerprint from :meth:`to_dict` output ``data`` and return it."""
        return cls(cpu_count=int(data.get("cpu_count", 0)),
                   python=str(data.get("python", "")),
                   numpy=str(data.get("numpy", "")),
                   blas=str(data.get("blas", "unknown")),
                   machine=str(data.get("machine", "")),
                   git_commit=str(data.get("git_commit", "unknown")))


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark run: named metrics, their units, and the environment.

    ``benchmark`` is the registry key (e.g. ``"injection"``), ``metrics`` a
    flat mapping of metric name to float/int/bool, ``units`` an optional
    metric-name → unit-label mapping, ``env`` the fingerprint and
    ``timestamp`` an ISO-8601 UTC stamp.
    """

    benchmark: str
    metrics: Dict[str, MetricValue]
    units: Dict[str, str] = field(default_factory=dict)
    env: EnvFingerprint = field(default_factory=EnvFingerprint.capture)
    timestamp: str = ""

    @classmethod
    def create(cls, benchmark: str, metrics: Mapping[str, MetricValue],
               units: Optional[Mapping[str, str]] = None,
               env: Optional[EnvFingerprint] = None) -> "BenchRecord":
        """Build a record for ``benchmark`` with a fresh timestamp and return it.

        ``metrics`` and ``units`` are copied; ``env`` defaults to
        :meth:`EnvFingerprint.capture`.
        """
        return cls(benchmark=benchmark, metrics=dict(metrics),
                   units=dict(units or {}),
                   env=env if env is not None else EnvFingerprint.capture(),
                   timestamp=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()))

    def to_dict(self) -> Dict[str, object]:
        """Return the record as a JSON-ready dict (the history-line shape)."""
        return {"schema": SCHEMA_VERSION,
                "benchmark": self.benchmark,
                "timestamp": self.timestamp,
                "env": self.env.to_dict(),
                "metrics": dict(self.metrics),
                "units": dict(self.units)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "BenchRecord":
        """Rebuild a record from a parsed history line ``data`` and return it."""
        return cls(benchmark=str(data.get("benchmark", "")),
                   metrics=dict(data.get("metrics", {})),  # type: ignore[arg-type]
                   units=dict(data.get("units", {})),      # type: ignore[arg-type]
                   env=EnvFingerprint.from_dict(data.get("env", {})),  # type: ignore[arg-type]
                   timestamp=str(data.get("timestamp", "")))


class HistoryStore:
    """Append-only per-commit benchmark history (``BENCH_history.jsonl``).

    One JSON object per line, oldest first; :meth:`append` only ever adds a
    line, so prior entries are immutable — the degradation detector's
    baseline windows are read from here.  ``path`` is the history file
    location (created on first append).
    """

    def __init__(self, path: Union[str, Path] = DEFAULT_HISTORY) -> None:
        self.path = Path(path)

    def load(self) -> List[BenchRecord]:
        """Return every parseable record in the history, oldest first.

        A missing file is an empty history; unparseable lines are skipped
        rather than poisoning every future gate evaluation.
        """
        if not self.path.exists():
            return []
        records: List[BenchRecord] = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(BenchRecord.from_dict(json.loads(line)))
            except (ValueError, TypeError):
                continue
        return records

    def append(self, record: BenchRecord) -> None:
        """Append ``record`` as one new line; existing lines are never touched."""
        with self.path.open("a") as handle:
            handle.write(json.dumps(record.to_dict()) + "\n")

    def entries_for(self, benchmark: str) -> List[BenchRecord]:
        """Return the history entries of ``benchmark`` only, oldest first."""
        return [r for r in self.load() if r.benchmark == benchmark]


def baseline_window(prior: Sequence[BenchRecord], record: BenchRecord,
                    metric: str, window: int = DEFAULT_WINDOW) -> List[float]:
    """Baseline values for ``metric`` of ``record`` from prior runs.

    Filters ``prior`` down to entries of the same benchmark whose
    environment is compatible with ``record.env`` and that carry ``metric``,
    then returns the most recent ``window`` values (oldest first).
    """
    values = [float(entry.metrics[metric]) for entry in prior
              if entry.benchmark == record.benchmark
              and metric in entry.metrics
              and entry.env.compatible_with(record.env)]
    return values[-window:]


@dataclass(frozen=True)
class GateSpec:
    """Declarative regression gate over one metric of one benchmark.

    ``kind`` selects the semantics: ``"identity"`` (metric must be truthy —
    bit-identity style, unconditional hard failure), ``"positive"`` (metric
    must be ``> 0`` — e.g. a burst must shed, also hard), or ``"speedup"``
    (higher-is-better: must clear the absolute ``floor`` when set, and must
    not drop more than ``tolerance`` below the median of the last ``window``
    compatible history entries).  ``name`` labels the gate in reports,
    ``metric`` names the gated metric, and ``min_cpus`` (speedup gates only)
    skips the gate outright on machines with fewer visible CPUs — the
    environment-aware replacement for the old per-script auto-skip hacks.
    """

    name: str
    metric: str
    kind: str = "speedup"
    floor: Optional[float] = None
    min_cpus: Optional[int] = None
    window: int = DEFAULT_WINDOW
    tolerance: float = DEFAULT_TOLERANCE

    @property
    def hard(self) -> bool:
        """Whether this gate is an unconditional hard failure when violated."""
        return self.kind in ("identity", "positive")


@dataclass(frozen=True)
class GateResult:
    """Outcome of evaluating one :class:`GateSpec` against one record.

    ``status`` is ``"pass"``, ``"fail"`` or ``"skip"``; ``reason`` is the
    human-readable explanation; ``value`` the measured metric (``None`` when
    missing); ``baseline`` the window median and ``threshold`` the effective
    pass bar, when a baseline existed.  ``gate`` is the spec evaluated.
    """

    gate: GateSpec
    status: str
    reason: str
    value: Optional[float] = None
    baseline: Optional[float] = None
    threshold: Optional[float] = None

    @property
    def failed(self) -> bool:
        """Whether the gate failed."""
        return self.status == "fail"


def _evaluate_gate(gate: GateSpec, record: BenchRecord,
                   prior: Sequence[BenchRecord]) -> GateResult:
    value = record.metrics.get(gate.metric)
    if value is None:
        return GateResult(gate, "fail",
                          f"metric {gate.metric!r} missing from record")
    if gate.kind == "identity":
        if bool(value):
            return GateResult(gate, "pass", "bit-identity holds", float(bool(value)))
        return GateResult(gate, "fail", "bit-identity violated", 0.0)
    if gate.kind == "positive":
        if float(value) > 0:
            return GateResult(gate, "pass", f"{gate.metric} > 0", float(value))
        return GateResult(gate, "fail", f"{gate.metric} must be > 0",
                          float(value))

    # speedup: environment arming first, then floor, then baseline window.
    value = float(value)
    if gate.min_cpus is not None and record.env.cpu_count < gate.min_cpus:
        return GateResult(
            gate, "skip",
            f"needs >= {gate.min_cpus} CPUs, {record.env.cpu_count} visible",
            value)
    if gate.floor is not None and value < gate.floor:
        return GateResult(gate, "fail",
                          f"below absolute floor {gate.floor:g}x", value,
                          threshold=gate.floor)
    baseline = baseline_window(prior, record, gate.metric, gate.window)
    if not baseline:
        return GateResult(gate, "pass",
                          "no compatible baseline - this run seeds it", value)
    median = statistics.median(baseline)
    threshold = median * (1.0 - gate.tolerance)
    if value >= threshold:
        return GateResult(gate, "pass",
                          f"within {gate.tolerance:.0%} of window median",
                          value, baseline=median, threshold=threshold)
    return GateResult(
        gate, "fail",
        f"degraded: below window median {median:.3g} by more than "
        f"{gate.tolerance:.0%} (n={len(baseline)})",
        value, baseline=median, threshold=threshold)


def evaluate_gates(spec: "BenchmarkSpec", record: BenchRecord,
                   prior: Sequence[BenchRecord]) -> List[GateResult]:
    """Evaluate every gate of ``spec`` against ``record`` and return the results.

    ``prior`` is the history *before* ``record`` was appended (the baseline
    pool); incompatible-environment entries are filtered per gate.
    """
    return [_evaluate_gate(gate, record, prior) for gate in spec.gates]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Registry entry for one benchmark script.

    ``name`` is the registry key, ``snapshot`` the legacy latest-run JSON
    file, ``script`` the generating script under ``benchmarks/``, ``title``
    a human-readable one-liner and ``gates`` the regression gates evaluated
    by scripts and ``repro.cli perf check``.
    """

    name: str
    snapshot: str
    script: str
    title: str
    gates: Tuple[GateSpec, ...] = ()


#: all eight benchmarks and every CI gate decision, in one place.  Floors
#: mirror the historical ``--check-*`` thresholds; the skip policy for
#: ``min_cpus`` gates is documented in ``docs/benchmarks.md``.
BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.name: spec for spec in (
        BenchmarkSpec(
            "injection", "BENCH_injection.json",
            "bench_injection_throughput.py",
            "packed injection engine vs boolean reference",
            gates=(GateSpec("packed_vs_reference_identity", "bit_identical",
                            kind="identity"),
                   GateSpec("headline_cold_speedup", "headline_speedup",
                            floor=3.0))),
        BenchmarkSpec(
            "inference", "BENCH_inference.json",
            "bench_inference_throughput.py",
            "static-store vs per-read characterization sweep",
            gates=(GateSpec("sweep_speedup", "sweep_speedup", floor=3.0),)),
        BenchmarkSpec(
            "serving", "BENCH_serving.json", "bench_serving.py",
            "micro-batched gateway vs batch-1 serial",
            gates=(GateSpec("microbatch_bit_identity", "bit_identical",
                            kind="identity"),
                   GateSpec("microbatch_speedup", "microbatch_speedup",
                            floor=2.0))),
        BenchmarkSpec(
            "quantized", "BENCH_quantized.json", "bench_quantized.py",
            "fused integer-GEMM plan vs FP32 static store",
            gates=(GateSpec("quantized_speedup", "speedup", floor=2.0),)),
        BenchmarkSpec(
            "parallel", "BENCH_parallel.json", "bench_parallel.py",
            "shared-memory executor vs serial sweeps",
            gates=(GateSpec("characterization_sweep_identity",
                            "characterization_sweep_identical",
                            kind="identity"),
                   GateSpec("device_sweep_identity", "device_sweep_identical",
                            kind="identity"),
                   GateSpec("coarse_characterization_identity",
                            "coarse_characterization_identical",
                            kind="identity"),
                   GateSpec("serving_identity", "serving_identical",
                            kind="identity"),
                   GateSpec("characterization_sweep_speedup",
                            "characterization_sweep_speedup",
                            floor=2.0, min_cpus=4))),
        BenchmarkSpec(
            "server", "BENCH_server.json", "bench_server.py",
            "HTTP front end under generated load",
            gates=(GateSpec("steady_bit_identity", "bit_identical",
                            kind="identity"),
                   GateSpec("burst_sheds", "burst_shed", kind="positive"),
                   GateSpec("burst_admitted_correct", "burst_admitted_correct",
                            kind="identity"))),
        BenchmarkSpec(
            "router", "BENCH_router.json", "bench_router.py",
            "multi-replica router tier scale-out",
            gates=(GateSpec("router_bit_identity", "bit_identical",
                            kind="identity"),
                   GateSpec("scaleout_speedup", "scaleout_speedup",
                            floor=2.0, min_cpus=4))),
        BenchmarkSpec(
            "ecc", "BENCH_ecc.json", "bench_ecc.py",
            "ECC-corrected weight store vs raw burst corruption",
            gates=(GateSpec("corrected_store_identity", "store_bit_identical",
                            kind="identity"),
                   GateSpec("corrected_accounting", "corrected_symbols",
                            kind="positive"))),
    )
}


def write_snapshot(path: Union[str, Path], payload: Mapping[str, object],
                   record: BenchRecord) -> None:
    """Write the legacy latest-run snapshot ``payload`` to ``path``, stamped.

    The snapshot keeps its historical shape (``benchmark``, ``headline``,
    script-specific keys) for backward compatibility and gains a ``perf``
    block carrying the :class:`BenchRecord` — metrics, units, environment
    fingerprint and git commit — so a snapshot alone identifies where it
    was measured.  ``record`` supplies the stamp.
    """
    stamped = dict(payload)
    stamped["perf"] = record.to_dict()
    Path(path).write_text(json.dumps(stamped, indent=2) + "\n")


def add_harness_arguments(parser, spec: BenchmarkSpec) -> None:
    """Install the shared ``--output`` / ``--history`` options on ``parser``.

    ``spec`` provides the default snapshot filename; ``--history`` defaults
    to :data:`DEFAULT_HISTORY`.
    """
    parser.add_argument("--output", default=spec.snapshot,
                        help="where to write the latest-run JSON snapshot")
    parser.add_argument("--history", default=DEFAULT_HISTORY,
                        help="append-only perf history file (JSONL)")


def format_gate_results(benchmark: str,
                        results: Sequence[GateResult]) -> str:
    """Render gate ``results`` for ``benchmark`` as an aligned text table and return it."""
    from repro.analysis.reporting import format_table

    rows = []
    for result in results:
        value = "-" if result.value is None else f"{result.value:.4g}"
        bar = ""
        if result.threshold is not None:
            bar = f">= {result.threshold:.3g}"
            if result.baseline is not None:
                bar += f" (median {result.baseline:.3g})"
        rows.append((result.gate.name, result.gate.kind, value, bar,
                     result.status.upper(), result.reason))
    return format_table(
        ["gate", "kind", "value", "bar", "status", "reason"], rows,
        title=f"perf gates: {benchmark}")


def finish_run(spec: BenchmarkSpec, args, metrics: Mapping[str, MetricValue],
               payload: Mapping[str, object],
               units: Optional[Mapping[str, str]] = None,
               enforce: str = "hard") -> int:
    """Record a benchmark run and evaluate its gates; returns the exit code.

    The one epilogue every ``bench_*.py`` script shares: captures the
    environment fingerprint, builds the :class:`BenchRecord` from
    ``metrics``/``units``, writes the ``args.output`` snapshot (legacy
    ``payload`` + stamp), appends to the ``args.history`` store, evaluates
    ``spec``'s gates against the pre-append baseline and prints the gate
    table.  ``enforce`` selects which failures are fatal: ``"hard"`` (the
    script default — bit-identity/positive gates only; speedup gates are
    evaluated and printed, but CI enforces them through one shared
    ``repro.cli perf check`` step) or ``"all"``.
    """
    record = BenchRecord.create(spec.name, metrics, units)
    store = HistoryStore(args.history)
    prior = store.load()
    write_snapshot(args.output, payload, record)
    store.append(record)
    results = evaluate_gates(spec, record, prior)

    print()
    print(format_gate_results(spec.name, results))
    print(f"\nwrote {args.output}; appended run #"
          f"{len([r for r in prior if r.benchmark == spec.name]) + 1} "
          f"to {store.path} (commit {record.env.git_commit}, "
          f"{record.env.cpu_count} CPU(s))")

    enforced = [r for r in results
                if r.failed and (enforce == "all" or r.gate.hard)]
    advisory = [r for r in results
                if r.failed and not (enforce == "all" or r.gate.hard)]
    for result in enforced:
        print(f"FAIL: {spec.name}/{result.gate.name}: {result.reason}",
              file=sys.stderr)
    for result in advisory:
        print(f"WARN: {spec.name}/{result.gate.name}: {result.reason} "
              "(enforced by `repro.cli perf check`)", file=sys.stderr)
    return 1 if enforced else 0


def check_benchmarks(history: Union[str, Path] = DEFAULT_HISTORY,
                     benchmarks: Optional[Sequence[str]] = None,
                     ) -> Tuple[Dict[str, List[GateResult]], int]:
    """Evaluate every gate of the selected benchmarks' latest history runs.

    ``history`` locates the store; ``benchmarks`` restricts the set (default:
    every registered benchmark that has at least one history entry — naming a
    benchmark explicitly makes a missing record a failure).  Returns
    ``(results_by_benchmark, exit_code)`` where the exit code is non-zero on
    any failed gate of any kind — this is the single CI gate step.
    """
    store = HistoryStore(history)
    entries = store.load()
    explicit = benchmarks is not None
    names = list(benchmarks) if explicit else list(BENCHMARKS)

    all_results: Dict[str, List[GateResult]] = {}
    exit_code = 0
    for name in names:
        spec = BENCHMARKS.get(name)
        if spec is None:
            print(f"FAIL: unknown benchmark {name!r} "
                  f"(known: {', '.join(sorted(BENCHMARKS))})", file=sys.stderr)
            exit_code = 1
            continue
        last_index = max((i for i, r in enumerate(entries)
                          if r.benchmark == name), default=None)
        if last_index is None:
            if explicit:
                print(f"FAIL: no history entry for {name!r} in {store.path}",
                      file=sys.stderr)
                exit_code = 1
            continue
        latest, prior = entries[last_index], entries[:last_index]
        results = evaluate_gates(spec, latest, prior)
        all_results[name] = results
        if any(r.failed for r in results):
            exit_code = 1
    return all_results, exit_code
