"""Parameter sweep utilities shared by figures, examples and benchmarks.

The injection sweeps are thin wrappers over
:class:`repro.analysis.runner.ExperimentRunner`, which owns the shared
install/reseed/evaluate/restore loop; only the operating-point constructors
live here.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.runner import ExperimentRunner
from repro.dram.device import ApproximateDram, DramOperatingPoint
from repro.dram.error_models import ErrorModel
from repro.engine.session import ReadSemantics
from repro.nn.datasets import Dataset
from repro.nn.network import Network


def voltage_sweep_points(device: ApproximateDram,
                         voltages: Sequence[float]) -> List[DramOperatingPoint]:
    """Operating points at each supply voltage (nominal timing)."""
    return [
        DramOperatingPoint.from_reductions(
            delta_vdd=device.nominal_vdd - vdd,
            nominal_vdd=device.nominal_vdd, nominal_timing=device.nominal_timing,
        )
        for vdd in voltages
    ]


def trcd_sweep(device: ApproximateDram,
               trcd_values_ns: Sequence[float]) -> List[DramOperatingPoint]:
    """Operating points at each tRCD (nominal voltage)."""
    return [
        DramOperatingPoint.from_reductions(
            delta_trcd_ns=device.nominal_timing.trcd_ns - trcd,
            nominal_vdd=device.nominal_vdd, nominal_timing=device.nominal_timing,
        )
        for trcd in trcd_values_ns
    ]


def ber_sweep(network: Network, dataset: Dataset, error_model: ErrorModel,
              bers: Sequence[float], bits: int = 32, corrector=None,
              repeats: int = 1, metric: str = "accuracy",
              seed: int = 0, processes: int = 0,
              semantics: ReadSemantics = ReadSemantics.PER_READ,
              ) -> Dict[float, float]:
    """Accuracy of ``network`` at each bit error rate (the Figure 8/10 x-axis).

    ``processes > 1`` fans the (independent, independently-seeded) sweep
    points out over a process pool; results are identical to the serial run.
    The pool lives only for this call — callers sweeping repeatedly in
    parallel should hold an :class:`ExperimentRunner`, which caches its pool
    across sweeps.  ``semantics`` defaults to per-read (the historical,
    bit-exact results); static-store models the paper's static weight
    storage and is faster.
    """
    with ExperimentRunner(network, dataset, metric=metric, seed=seed,
                          repeats=repeats, processes=processes,
                          semantics=semantics) as runner:
        return runner.ber_sweep(error_model, bers, bits=bits, corrector=corrector)


def accuracy_on_device(network: Network, dataset: Dataset, device: ApproximateDram,
                       op_points: Sequence[DramOperatingPoint], bits: int = 32,
                       corrector=None, metric: str = "accuracy", seed: int = 0,
                       processes: int = 0,
                       semantics: ReadSemantics = ReadSemantics.PER_READ,
                       ) -> Dict[DramOperatingPoint, float]:
    """Accuracy of ``network`` when its tensors are read from ``device``.

    Used for the real-DRAM experiments (Figures 7 and 9): every weight/IFM
    load goes through the behavioural device at the given operating point
    (``semantics`` and ``processes`` as in :func:`ber_sweep` — operating
    points fan out over the shared-memory executor with bit-identical
    results).
    """
    with ExperimentRunner(network, dataset, metric=metric, seed=seed,
                          processes=processes, semantics=semantics) as runner:
        return runner.device_sweep(device, op_points, bits=bits,
                                   corrector=corrector)
