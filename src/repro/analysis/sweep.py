"""Parameter sweep utilities shared by figures, examples and benchmarks."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dram.device import ApproximateDram, DramOperatingPoint
from repro.dram.error_models import ErrorModel
from repro.dram.injection import BitErrorInjector
from repro.nn.datasets import Dataset
from repro.nn.metrics import evaluate
from repro.nn.network import Network


def voltage_sweep_points(device: ApproximateDram,
                         voltages: Sequence[float]) -> List[DramOperatingPoint]:
    """Operating points at each supply voltage (nominal timing)."""
    return [
        DramOperatingPoint.from_reductions(
            delta_vdd=device.nominal_vdd - vdd,
            nominal_vdd=device.nominal_vdd, nominal_timing=device.nominal_timing,
        )
        for vdd in voltages
    ]


def trcd_sweep(device: ApproximateDram,
               trcd_values_ns: Sequence[float]) -> List[DramOperatingPoint]:
    """Operating points at each tRCD (nominal voltage)."""
    return [
        DramOperatingPoint.from_reductions(
            delta_trcd_ns=device.nominal_timing.trcd_ns - trcd,
            nominal_vdd=device.nominal_vdd, nominal_timing=device.nominal_timing,
        )
        for trcd in trcd_values_ns
    ]


def ber_sweep(network: Network, dataset: Dataset, error_model: ErrorModel,
              bers: Sequence[float], bits: int = 32, corrector=None,
              repeats: int = 1, metric: str = "accuracy",
              seed: int = 0) -> Dict[float, float]:
    """Accuracy of ``network`` at each bit error rate (the Figure 8/10 x-axis)."""
    results: Dict[float, float] = {}
    previous = network.fault_injector
    try:
        for ber in bers:
            scores = []
            for repeat in range(repeats):
                injector = BitErrorInjector(
                    error_model.with_ber(ber), bits=bits, corrector=corrector,
                    seed=seed + repeat,
                )
                network.set_fault_injector(injector)
                scores.append(
                    evaluate(network, dataset.val_x, dataset.val_y, metric=metric)
                )
            results[float(ber)] = float(np.mean(scores))
    finally:
        network.set_fault_injector(previous)
    return results


def accuracy_on_device(network: Network, dataset: Dataset, device: ApproximateDram,
                       op_points: Sequence[DramOperatingPoint], bits: int = 32,
                       corrector=None, metric: str = "accuracy",
                       seed: int = 0) -> Dict[DramOperatingPoint, float]:
    """Accuracy of ``network`` when its tensors are read from ``device``.

    Used for the real-DRAM experiments (Figures 7 and 9): every weight/IFM
    load goes through the behavioural device at the given operating point.
    """
    from repro.dram.injection import DeviceBackedInjector

    results: Dict[DramOperatingPoint, float] = {}
    previous = network.fault_injector
    try:
        for op_point in op_points:
            injector = DeviceBackedInjector(device, op_point, bits=bits,
                                            corrector=corrector, seed=seed)
            network.set_fault_injector(injector)
            results[op_point] = float(
                evaluate(network, dataset.val_x, dataset.val_y, metric=metric)
            )
    finally:
        network.set_fault_injector(previous)
    return results
