"""Regeneration of the paper's tables as structured rows.

Each function returns a list of dictionaries (one per table row) so the
benchmark harness can both print them (via :mod:`repro.analysis.reporting`)
and assert on the qualitative properties the paper reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import AccuracyTarget, EdenConfig
from repro.core.characterization import coarse_grained_characterization
from repro.core.correction import ThresholdStore
from repro.core.offload import reductions_for_ber
from repro.dram.device import ApproximateDram
from repro.dram.error_models import make_error_model
from repro.engine import ReadSemantics
from repro.engine import evaluate as engine_evaluate
from repro.nn.models import MODEL_SPECS, build_model_with_dataset, get_spec
from repro.nn.quantization import QuantizedLoadTransform
from repro.nn.training import Trainer

#: numeric precisions of Table 2 (YOLO models only support int8 / FP32).
TABLE2_PRECISIONS = (4, 8, 16, 32)


def table1_model_zoo(models: Optional[Sequence[str]] = None) -> List[Dict]:
    """Table 1: the model zoo with paper sizes and measured analogue footprints."""
    rows = []
    for name in models or list(MODEL_SPECS):
        spec = get_spec(name)
        network, dataset, _ = build_model_with_dataset(name)
        rows.append({
            "model": spec.paper_name,
            "dataset": spec.dataset,
            "metric": spec.metric,
            "paper_model_size_mb": spec.paper_model_size_mb,
            "paper_ifm_weight_size_mb": spec.paper_ifm_weight_size_mb,
            "analogue_parameters": network.num_parameters(),
            "analogue_footprint_bytes": network.footprint_bytes(),
            "analogue_depth": network.depth,
        })
    return rows


def table2_baseline_accuracy(models: Optional[Sequence[str]] = None,
                             precisions: Sequence[int] = TABLE2_PRECISIONS,
                             epochs: Optional[int] = None,
                             seed: int = 0) -> List[Dict]:
    """Table 2: baseline accuracy of each model at each precision on reliable DRAM."""
    rows = []
    for name in models or list(MODEL_SPECS):
        spec = get_spec(name)
        network, dataset, _ = build_model_with_dataset(name, seed=seed)
        Trainer(network, dataset, spec.training_config(epochs=epochs)).fit()
        row: Dict = {"model": spec.paper_name, "metric": spec.metric}
        for bits in precisions:
            if bits == 4 and not spec.supports_int4:
                row[f"int{bits}"] = None
                continue
            if bits == 16 and not spec.supports_int16:
                row[f"int{bits}"] = None
                continue
            # Quantization is deterministic, so static-store semantics (the
            # weights fake-quantized once, not per batch) is bit-identical to
            # the historical per-load transform — just cheaper.
            transform = None if bits == 32 else QuantizedLoadTransform(bits)
            score = engine_evaluate(network, dataset, transform,
                                    metric=spec.metric,
                                    semantics=ReadSemantics.STATIC_STORE)
            key = "fp32" if bits == 32 else f"int{bits}"
            row[key] = score
        rows.append(row)
    return rows


def table3_coarse_characterization(models: Optional[Sequence[str]] = None,
                                   precisions: Sequence[int] = (32, 8),
                                   device: Optional[ApproximateDram] = None,
                                   target: Optional[AccuracyTarget] = None,
                                   config: Optional[EdenConfig] = None,
                                   epochs: Optional[int] = None,
                                   seed: int = 0,
                                   processes: int = 0) -> List[Dict]:
    """Table 3: per-DNN maximum tolerable BER and the ΔVDD/ΔtRCD it permits.

    For each model and precision: train the baseline, run the coarse-grained
    characterization against Error Model 0, then translate the tolerable BER
    into the most aggressive (ΔVDD, ΔtRCD) of the target device.
    ``processes`` > 1 fans the characterization grid out over the
    shared-memory executor (bit-identical results).
    """
    device = device or ApproximateDram("A", seed=seed)
    target = target or AccuracyTarget.within_one_percent()
    rows = []
    for name in models or list(MODEL_SPECS):
        spec = get_spec(name)
        network, dataset, _ = build_model_with_dataset(name, seed=seed)
        Trainer(network, dataset, spec.training_config(epochs=epochs)).fit()
        thresholds = ThresholdStore.from_network(network, dataset.train_x)
        for bits in precisions:
            model_config = config or EdenConfig(evaluation_repeats=1)
            model_config = EdenConfig(
                retrain_epochs=model_config.retrain_epochs,
                ramp_every_epochs=model_config.ramp_every_epochs,
                ber_search_low=model_config.ber_search_low,
                ber_search_high=model_config.ber_search_high,
                ber_search_steps=model_config.ber_search_steps,
                evaluation_repeats=model_config.evaluation_repeats,
                bits=bits,
                seed=seed,
                processes=processes or model_config.processes,
            )
            error_model = make_error_model(0, 1e-3, seed=seed)
            coarse = coarse_grained_characterization(
                network, dataset, error_model, target, model_config,
                metric=spec.metric, thresholds=thresholds,
            )
            delta_vdd, delta_trcd = reductions_for_ber(device, coarse.max_tolerable_ber)
            rows.append({
                "model": spec.paper_name,
                "bits": bits,
                "baseline_score": coarse.baseline_score,
                "max_tolerable_ber": coarse.max_tolerable_ber,
                "score_at_max_ber": coarse.accuracy_at_max,
                "delta_vdd": delta_vdd,
                "delta_trcd_ns": delta_trcd,
            })
    return rows


#: The paper's Table 3 (FP32 columns), used by the system-level benchmarks to
#: evaluate the platforms at the operating points the paper derived on its
#: full-scale networks (our analogues produce their own, smaller-scale Table 3
#: via :func:`table3_coarse_characterization`).
PAPER_TABLE3_FP32: Dict[str, Dict[str, float]] = {
    "resnet101":     {"ber": 0.040, "delta_vdd": 0.30, "delta_trcd_ns": 5.5},
    "mobilenetv2":   {"ber": 0.010, "delta_vdd": 0.25, "delta_trcd_ns": 1.0},
    "vgg16":         {"ber": 0.050, "delta_vdd": 0.35, "delta_trcd_ns": 6.0},
    "densenet201":   {"ber": 0.015, "delta_vdd": 0.25, "delta_trcd_ns": 2.0},
    "squeezenet1.1": {"ber": 0.005, "delta_vdd": 0.10, "delta_trcd_ns": 1.0},
    "alexnet":       {"ber": 0.030, "delta_vdd": 0.30, "delta_trcd_ns": 4.5},
    "yolo":          {"ber": 0.050, "delta_vdd": 0.35, "delta_trcd_ns": 6.0},
    "yolo-tiny":     {"ber": 0.035, "delta_vdd": 0.30, "delta_trcd_ns": 5.0},
}

PAPER_TABLE3_INT8: Dict[str, Dict[str, float]] = {
    "resnet101":     {"ber": 0.040, "delta_vdd": 0.30, "delta_trcd_ns": 5.5},
    "mobilenetv2":   {"ber": 0.005, "delta_vdd": 0.10, "delta_trcd_ns": 1.0},
    "vgg16":         {"ber": 0.050, "delta_vdd": 0.35, "delta_trcd_ns": 6.0},
    "densenet201":   {"ber": 0.015, "delta_vdd": 0.25, "delta_trcd_ns": 2.0},
    "squeezenet1.1": {"ber": 0.005, "delta_vdd": 0.10, "delta_trcd_ns": 1.0},
    "alexnet":       {"ber": 0.030, "delta_vdd": 0.30, "delta_trcd_ns": 4.5},
    "yolo":          {"ber": 0.040, "delta_vdd": 0.30, "delta_trcd_ns": 5.5},
    "yolo-tiny":     {"ber": 0.030, "delta_vdd": 0.30, "delta_trcd_ns": 4.5},
}


def system_configurations() -> List[Dict]:
    """Tables 4-6: the simulated CPU, GPU and accelerator configurations."""
    from repro.arch.accelerator import EYERISS_CONFIG, TPU_CONFIG
    from repro.arch.cpu import CpuConfig
    from repro.arch.gpu import GpuConfig

    cpu, gpu = CpuConfig(), GpuConfig()
    return [
        {"platform": "CPU", "name": cpu.name, "compute_units": cpu.cores,
         "frequency_ghz": cpu.frequency_ghz, "memory": cpu.memory_type},
        {"platform": "GPU", "name": gpu.name, "compute_units": gpu.streaming_multiprocessors,
         "frequency_ghz": gpu.frequency_ghz, "memory": gpu.memory_type},
        {"platform": "Eyeriss", "name": EYERISS_CONFIG.name,
         "compute_units": EYERISS_CONFIG.num_pes,
         "frequency_ghz": EYERISS_CONFIG.frequency_ghz, "memory": EYERISS_CONFIG.memory_type},
        {"platform": "TPU", "name": TPU_CONFIG.name, "compute_units": TPU_CONFIG.num_pes,
         "frequency_ghz": TPU_CONFIG.frequency_ghz, "memory": TPU_CONFIG.memory_type},
    ]
