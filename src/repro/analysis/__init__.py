"""Analysis helpers: parameter sweeps and regeneration of the paper's artifacts.

* :mod:`repro.analysis.runner`    — the unified sweep/score engine every
  injection experiment runs on (injector reuse, memoized baselines,
  optional process-pool parallelism);
* :mod:`repro.analysis.sweep`     — voltage / tRCD / BER sweep utilities;
* :mod:`repro.analysis.figures`   — data series for each figure of the paper;
* :mod:`repro.analysis.tables`    — structured rows for each table;
* :mod:`repro.analysis.reporting` — plain-text rendering used by the examples
  and the benchmark harness (no plotting dependencies are available offline);
* :mod:`repro.analysis.perfhistory` — the perf-history harness behind every
  ``benchmarks/bench_*.py`` script: benchmark/gate registry, environment
  fingerprints, the append-only ``BENCH_history.jsonl`` store, and
  baseline-window degradation gates (see ``docs/benchmarks.md``).
"""

from repro.analysis.runner import ExperimentRunner
from repro.analysis.sweep import ber_sweep, trcd_sweep, voltage_sweep_points
from repro.analysis.reporting import format_series, format_table

__all__ = [
    "ExperimentRunner",
    "ber_sweep",
    "trcd_sweep",
    "voltage_sweep_points",
    "format_series",
    "format_table",
]
