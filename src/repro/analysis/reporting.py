"""Plain-text rendering of tables and data series.

No plotting libraries are available offline, so every figure is regenerated as
the numeric series behind it and every table as aligned text rows; the
benchmark harness prints these so the reproduction can be compared with the
paper side by side.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "",
                 float_format: str = "{:.4g}") -> str:
    """Render ``rows`` as an aligned plain-text table.

    ``headers`` labels the columns, ``title`` (optional) becomes the first
    line, and float cells are rendered with ``float_format``.  Returns the
    table as one newline-joined string.

    >>> print(format_table(["x", "y"], [(1, 2.0), (10, 0.5)]))  # doctest: +NORMALIZE_WHITESPACE
    x   y
    --  ---
    1   2
    10  0.5
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row([str(h) for h in headers]))
    lines.append(render_row(["-" * w for w in widths]))
    lines.extend(render_row(row) for row in rendered_rows)
    return "\n".join(lines)


def format_serving_report(snapshot: Mapping) -> str:
    """Render a serving telemetry snapshot as plain-text tables.

    ``snapshot`` is the dict produced by
    :meth:`repro.serve.ServingTelemetry.snapshot` /
    :meth:`repro.serve.ServingGateway.snapshot`: per-model request counts,
    shed (refused by admission control) and expired (dropped past deadline)
    counts, ECC decode counters (corrected / uncorrectable codewords),
    latency percentiles, throughput and batch occupancy under ``"models"``,
    plus (optionally) the session registry's cache counters under
    ``"registry"``.  Returns one printable string with a table per section.
    """
    sections: List[str] = []
    models = snapshot.get("models", {})
    rows = []
    for name in sorted(models):
        m = models[name]
        rows.append((name, m["requests"], m.get("shed", 0),
                     m.get("expired", 0),
                     m.get("ecc_corrected", 0),
                     m.get("ecc_uncorrectable", 0), m["batches"],
                     f"{m['mean_occupancy']:.1f}",
                     f"{m['throughput_rps']:.0f}",
                     f"{m['p50_ms']:.2f}", f"{m['p95_ms']:.2f}",
                     f"{m['p99_ms']:.2f}"))
    sections.append(format_table(
        ["model", "requests", "shed", "expired", "corrected",
         "uncorrectable", "batches", "occupancy", "req/s", "p50 ms",
         "p95 ms", "p99 ms"],
        rows, title="Serving telemetry"))
    registry = snapshot.get("registry")
    if registry is not None:
        total = registry.get("hits", 0) + registry.get("misses", 0)
        hit_rate = registry.get("hits", 0) / total if total else float("nan")
        sections.append(format_table(
            ["hits", "misses", "hit rate", "compilations", "evictions",
             "stored MiB"],
            [(registry.get("hits", 0), registry.get("misses", 0),
              f"{hit_rate:.2f}", registry.get("compilations", 0),
              registry.get("evictions", 0),
              f"{registry.get('stored_bytes', 0) / 2**20:.2f}")],
            title="Session registry"))
    return "\n\n".join(sections)


def format_series(series: Mapping, title: str = "", x_label: str = "x",
                  y_label: str = "y", float_format: str = "{:.4g}") -> str:
    """Render an {x: y} ``series`` (one curve of a figure) as two columns.

    ``x_label``/``y_label`` head the columns; ``title`` and
    ``float_format`` forward to :func:`format_table`.  Returns the rendered
    table string.
    """
    rows = [(k, v) for k, v in series.items()]
    return format_table([x_label, y_label], rows, title=title, float_format=float_format)


def format_multi_series(curves: Mapping[str, Mapping], title: str = "",
                        x_label: str = "x", float_format: str = "{:.4g}") -> str:
    """Render ``curves`` ({curve_name: {x: y}}) as one column per curve.

    Rows are the union of every curve's x values under ``x_label``; missing
    points render empty.  ``title`` and ``float_format`` forward to
    :func:`format_table`.  Returns the rendered table string.
    """
    all_x: List = sorted({x for series in curves.values() for x in series})
    headers = [x_label] + list(curves)
    rows = []
    for x in all_x:
        row = [x]
        for name in curves:
            value = curves[name].get(x, "")
            row.append(value)
        rows.append(row)
    return format_table(headers, rows, title=title, float_format=float_format)
