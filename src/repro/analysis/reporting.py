"""Plain-text rendering of tables and data series.

No plotting libraries are available offline, so every figure is regenerated as
the numeric series behind it and every table as aligned text rows; the
benchmark harness prints these so the reproduction can be compared with the
paper side by side.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "",
                 float_format: str = "{:.4g}") -> str:
    """Render rows as an aligned plain-text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row([str(h) for h in headers]))
    lines.append(render_row(["-" * w for w in widths]))
    lines.extend(render_row(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series(series: Mapping, title: str = "", x_label: str = "x",
                  y_label: str = "y", float_format: str = "{:.4g}") -> str:
    """Render an {x: y} mapping (one curve of a figure) as two aligned columns."""
    rows = [(k, v) for k, v in series.items()]
    return format_table([x_label, y_label], rows, title=title, float_format=float_format)


def format_multi_series(curves: Mapping[str, Mapping], title: str = "",
                        x_label: str = "x", float_format: str = "{:.4g}") -> str:
    """Render {curve_name: {x: y}} as one table with a column per curve."""
    all_x: List = sorted({x for series in curves.values() for x in series})
    headers = [x_label] + list(curves)
    rows = []
    for x in all_x:
        row = [x]
        for name in curves:
            value = curves[name].get(x, "")
            row.append(value)
        rows.append(row)
    return format_table(headers, rows, title=title, float_format=float_format)
