"""EDEN reproduction: energy-efficient DNN inference using approximate DRAM.

This package reproduces *EDEN: Enabling Energy-Efficient, High-Performance
Deep Neural Network Inference Using Approximate DRAM* (Koppula et al.,
MICRO-52, 2019) as a self-contained Python library:

* :mod:`repro.nn`   -- a from-scratch numpy DNN substrate (layers, training,
  quantization, pruning, a model zoo of scaled-down analogues of the paper's
  networks, and synthetic datasets);
* :mod:`repro.dram` -- the approximate-DRAM substrate (behavioural device,
  SoftMC-style profiler, EDEN's four error models, MLE fitting, bit-error
  injection, DRAMPower-style energy model, partitions);
* :mod:`repro.core` -- EDEN itself (curricular retraining, implausible-value
  correction, coarse/fine characterization, Algorithm-1 mapping, pipeline);
* :mod:`repro.arch` -- the system-level evaluation substrate (CPU, GPU,
  Eyeriss/TPU accelerator models and the memory controller support);
* :mod:`repro.memsys` -- the cycle-level DDR4 memory-system model;
* :mod:`repro.engine` -- the inference engine (compiled sessions with
  static-store / per-read read semantics);
* :mod:`repro.serve` -- the serving gateway (session registry,
  micro-batching, telemetry) over compiled sessions;
* :mod:`repro.analysis` -- sweeps and table/figure regeneration used by the
  benchmark harness.

The ``docs/`` tree is the reference: ``docs/architecture.md`` (layer map and
data flow), ``docs/error-models.md``, ``docs/engine.md``, and
``docs/serving.md``.
"""

__version__ = "1.0.0"

from repro.core.pipeline import Eden, EdenResult
from repro.core.config import AccuracyTarget, EdenConfig

__all__ = ["Eden", "EdenResult", "AccuracyTarget", "EdenConfig", "__version__"]
