"""Command-level DRAM power model (DRAMPower / Micron TN-40-07 style).

The paper estimates DRAM energy by feeding Ramulator/SCALE-Sim command traces
into DRAMPower.  This module reproduces that flow: it consumes the command
trace and background-state cycle counts produced by
:class:`repro.memsys.controller.MemoryController` and converts them into
energy using datasheet IDD currents and the Micron power-calculation formulas
the paper cites (TN-40-07):

* activation/precharge energy per ACT-PRE pair derived from IDD0 against the
  active/precharged background floor;
* read/write burst energy from IDD4R/IDD4W against the active background;
* refresh energy from IDD5B over tRFC;
* background energy from IDD3N (any bank open) and IDD2N (all banks closed).

Voltage scaling follows the paper's Section 2.3: dynamic energy scales with
``(VDD / VDD_nominal)^2`` and background/static power with the ratio itself,
which is how EDEN's supply-voltage reduction turns into the DRAM energy
savings of Figure 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dram.voltage import NOMINAL_VDD
from repro.memsys.commands import CommandTrace, CommandType
from repro.memsys.controller import ControllerResult
from repro.memsys.ddr4 import DeviceTiming


@dataclass(frozen=True)
class IddCurrents:
    """Datasheet IDD currents (milliamps) and nominal supply voltage (volts)."""

    name: str = "DDR4-2133-x8"
    idd0: float = 55.0       # one-bank activate-precharge current
    idd2n: float = 34.0      # precharged standby
    idd3n: float = 44.0      # active standby
    idd4r: float = 140.0     # burst read
    idd4w: float = 150.0     # burst write
    idd5b: float = 190.0     # burst auto-refresh
    vdd: float = 1.2
    devices_per_rank: int = 8   # x8 chips on a 64-bit bus

    def __post_init__(self) -> None:
        for name in ("idd0", "idd2n", "idd3n", "idd4r", "idd4w", "idd5b", "vdd"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.idd3n < self.idd2n:
            raise ValueError("active standby current cannot be below precharged standby")


#: IDD sets for the memory types used by the paper's platforms.
IDD_SETS: Dict[str, IddCurrents] = {
    "DDR4-2133": IddCurrents(),
    "DDR4-2400": IddCurrents(name="DDR4-2400-x8", idd0=58.0, idd2n=36.0, idd3n=47.0,
                             idd4r=150.0, idd4w=160.0, idd5b=200.0, vdd=1.2),
    "LPDDR3-1600": IddCurrents(name="LPDDR3-1600", idd0=12.0, idd2n=3.0, idd3n=8.0,
                               idd4r=130.0, idd4w=145.0, idd5b=65.0, vdd=1.2,
                               devices_per_rank=2),
    "GDDR5": IddCurrents(name="GDDR5", idd0=95.0, idd2n=55.0, idd3n=75.0,
                         idd4r=260.0, idd4w=280.0, idd5b=300.0, vdd=1.5,
                         devices_per_rank=12),
}


@dataclass
class PowerBreakdown:
    """Energy of one command trace split by component (nanojoules)."""

    activate_nj: float
    read_nj: float
    write_nj: float
    refresh_nj: float
    background_active_nj: float
    background_precharged_nj: float

    @property
    def dynamic_nj(self) -> float:
        return self.activate_nj + self.read_nj + self.write_nj + self.refresh_nj

    @property
    def background_nj(self) -> float:
        return self.background_active_nj + self.background_precharged_nj

    @property
    def total_nj(self) -> float:
        return self.dynamic_nj + self.background_nj

    @property
    def total_mj(self) -> float:
        return self.total_nj * 1e-6

    def as_dict(self) -> Dict[str, float]:
        return {
            "activate_nj": self.activate_nj,
            "read_nj": self.read_nj,
            "write_nj": self.write_nj,
            "refresh_nj": self.refresh_nj,
            "background_active_nj": self.background_active_nj,
            "background_precharged_nj": self.background_precharged_nj,
            "total_nj": self.total_nj,
        }


class CommandEnergyModel:
    """Turns controller command traces into DRAM energy at a given VDD."""

    def __init__(self, memory_type: str = "DDR4-2133",
                 idd: Optional[IddCurrents] = None,
                 nominal_vdd: float = NOMINAL_VDD):
        if idd is None:
            if memory_type not in IDD_SETS:
                raise KeyError(f"unknown memory type {memory_type!r}; expected one of "
                               f"{sorted(IDD_SETS)}")
            idd = IDD_SETS[memory_type]
        self.memory_type = memory_type
        self.idd = idd
        self.nominal_vdd = float(nominal_vdd)

    # -- per-event energies ------------------------------------------------------------
    def _scales(self, vdd: Optional[float]) -> tuple:
        vdd = self.nominal_vdd if vdd is None else float(vdd)
        if vdd <= 0:
            raise ValueError("vdd must be positive")
        ratio = vdd / self.nominal_vdd
        return ratio * ratio, ratio        # (dynamic scale, static scale)

    def activate_energy_nj(self, timing: DeviceTiming, vdd: Optional[float] = None) -> float:
        """Energy of one ACT+PRE pair above the background floor (Micron eq. 3)."""
        dynamic_scale, _ = self._scales(vdd)
        idd = self.idd
        background = (idd.idd3n * timing.tras + idd.idd2n * (timing.trc - timing.tras)) / timing.trc
        current_ma = max(idd.idd0 - background, 0.0)
        charge = current_ma * timing.trc * timing.tck_ns * idd.devices_per_rank
        return charge * idd.vdd * 1e-6 * dynamic_scale

    def read_energy_nj(self, timing: DeviceTiming, vdd: Optional[float] = None) -> float:
        dynamic_scale, _ = self._scales(vdd)
        idd = self.idd
        current_ma = max(idd.idd4r - idd.idd3n, 0.0)
        charge = current_ma * timing.burst_cycles * timing.tck_ns * idd.devices_per_rank
        return charge * idd.vdd * 1e-6 * dynamic_scale

    def write_energy_nj(self, timing: DeviceTiming, vdd: Optional[float] = None) -> float:
        dynamic_scale, _ = self._scales(vdd)
        idd = self.idd
        current_ma = max(idd.idd4w - idd.idd3n, 0.0)
        charge = current_ma * timing.burst_cycles * timing.tck_ns * idd.devices_per_rank
        return charge * idd.vdd * 1e-6 * dynamic_scale

    def refresh_energy_nj(self, timing: DeviceTiming, vdd: Optional[float] = None) -> float:
        dynamic_scale, _ = self._scales(vdd)
        idd = self.idd
        current_ma = max(idd.idd5b - idd.idd3n, 0.0)
        charge = current_ma * timing.trfc * timing.tck_ns * idd.devices_per_rank
        return charge * idd.vdd * 1e-6 * dynamic_scale

    def background_power_mw(self, active: bool, vdd: Optional[float] = None) -> float:
        _, static_scale = self._scales(vdd)
        idd = self.idd
        current_ma = idd.idd3n if active else idd.idd2n
        return current_ma * idd.vdd * idd.devices_per_rank * static_scale

    # -- trace-level energy ---------------------------------------------------------------
    def energy_of_trace(self, trace: CommandTrace, timing: DeviceTiming,
                        active_cycles: int, precharged_cycles: int,
                        vdd: Optional[float] = None) -> PowerBreakdown:
        counts = trace.counts()
        tck = timing.tck_ns
        background_active = (self.background_power_mw(True, vdd)
                             * active_cycles * tck * 1e-6)
        background_precharged = (self.background_power_mw(False, vdd)
                                 * precharged_cycles * tck * 1e-6)
        return PowerBreakdown(
            activate_nj=counts[CommandType.ACT] * self.activate_energy_nj(timing, vdd),
            read_nj=counts[CommandType.RD] * self.read_energy_nj(timing, vdd),
            write_nj=counts[CommandType.WR] * self.write_energy_nj(timing, vdd),
            refresh_nj=counts[CommandType.REF] * self.refresh_energy_nj(timing, vdd),
            background_active_nj=background_active,
            background_precharged_nj=background_precharged,
        )

    def energy_of_run(self, result: ControllerResult,
                      vdd: Optional[float] = None) -> PowerBreakdown:
        """Energy of a full controller run (the common entry point)."""
        return self.energy_of_trace(
            result.trace, result.timing,
            active_cycles=result.stats.active_cycles(),
            precharged_cycles=result.stats.precharged_cycles(),
            vdd=vdd,
        )

    def energy_reduction(self, baseline: ControllerResult, reduced: ControllerResult,
                         reduced_vdd: float) -> float:
        """Fractional energy reduction of a reduced-VDD run versus nominal."""
        base = self.energy_of_run(baseline).total_nj
        new = self.energy_of_run(reduced, vdd=reduced_vdd).total_nj
        if base <= 0:
            return 0.0
        return 1.0 - new / base
