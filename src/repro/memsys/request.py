"""Memory requests and physical address mapping for the cycle-level controller.

A request is a cache-line sized read or write arriving at the memory
controller (typically an LLC miss or write-back produced by the cache
hierarchy in :mod:`repro.memsys.cache`).  The address mapper splits a physical
byte address into (channel, rank, bank group, bank, row, column) coordinates.

Two mappings are provided, mirroring the two standard Ramulator layouts:

* ``ROW_BANK_COL`` — row bits above bank bits: consecutive lines walk through
  one row of one bank before moving to the next bank (maximizes row-buffer
  hits for streaming accesses, the default for the paper's CPU config);
* ``BANK_INTERLEAVED`` — bank bits above column bits only: consecutive lines
  round-robin across banks (maximizes bank-level parallelism).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class RequestType(enum.Enum):
    """Kind of memory request presented to the controller."""

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class DramCoordinates:
    """Decoded location of one cache line inside the memory system."""

    channel: int
    rank: int
    bank_group: int
    bank: int
    row: int
    column: int

    @property
    def flat_bank(self) -> int:
        """Globally unique bank index (used to index bank state machines)."""
        return self.bank_group * 4 + self.bank

    def same_row(self, other: "DramCoordinates") -> bool:
        return (self.channel == other.channel and self.rank == other.rank
                and self.flat_bank == other.flat_bank and self.row == other.row)


@dataclass
class MemoryRequest:
    """One cache-line request as seen by the memory controller."""

    address: int
    type: RequestType
    arrival_cycle: int = 0
    request_id: int = 0
    coordinates: Optional[DramCoordinates] = None
    issue_cycle: Optional[int] = field(default=None, compare=False)
    completion_cycle: Optional[int] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("address must be non-negative")
        if self.arrival_cycle < 0:
            raise ValueError("arrival_cycle must be non-negative")

    @property
    def is_write(self) -> bool:
        return self.type is RequestType.WRITE

    @property
    def latency(self) -> Optional[int]:
        """Cycles from arrival to completion, if the request has completed."""
        if self.completion_cycle is None:
            return None
        return self.completion_cycle - self.arrival_cycle


class AddressMapping(enum.Enum):
    """Physical-address-to-DRAM-coordinate interleaving schemes."""

    ROW_BANK_COL = "row_bank_col"
    BANK_INTERLEAVED = "bank_interleaved"


@dataclass(frozen=True)
class AddressMapperConfig:
    """Shape of the memory system the address mapper decodes into."""

    channels: int = 2
    ranks_per_channel: int = 1
    bank_groups: int = 4
    banks_per_group: int = 4
    rows_per_bank: int = 1 << 16
    columns_per_row: int = 128           # cache lines per row (8KB row / 64B line)
    line_bytes: int = 64
    mapping: AddressMapping = AddressMapping.ROW_BANK_COL

    def __post_init__(self) -> None:
        for name in ("channels", "ranks_per_channel", "bank_groups", "banks_per_group",
                     "rows_per_bank", "columns_per_row", "line_bytes"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def banks_per_rank(self) -> int:
        return self.bank_groups * self.banks_per_group

    @property
    def capacity_bytes(self) -> int:
        return (self.channels * self.ranks_per_channel * self.banks_per_rank
                * self.rows_per_bank * self.columns_per_row * self.line_bytes)


class AddressMapper:
    """Decodes physical byte addresses into DRAM coordinates."""

    def __init__(self, config: Optional[AddressMapperConfig] = None):
        self.config = config or AddressMapperConfig()

    def decode(self, address: int) -> DramCoordinates:
        """Map a physical byte address to (channel, rank, bank group, bank, row, col).

        Addresses beyond the configured capacity wrap around, so synthetic
        traces never fall outside the module.
        """
        cfg = self.config
        if address < 0:
            raise ValueError("address must be non-negative")
        line = (address // cfg.line_bytes) % (cfg.capacity_bytes // cfg.line_bytes)

        if cfg.mapping is AddressMapping.ROW_BANK_COL:
            # low -> high: column, channel, bank, bank group, rank, row
            line, column = divmod(line, cfg.columns_per_row)
            line, channel = divmod(line, cfg.channels)
            line, bank = divmod(line, cfg.banks_per_group)
            line, bank_group = divmod(line, cfg.bank_groups)
            line, rank = divmod(line, cfg.ranks_per_channel)
            row = line % cfg.rows_per_bank
        else:
            # low -> high: channel, bank, bank group, column, rank, row
            line, channel = divmod(line, cfg.channels)
            line, bank = divmod(line, cfg.banks_per_group)
            line, bank_group = divmod(line, cfg.bank_groups)
            line, column = divmod(line, cfg.columns_per_row)
            line, rank = divmod(line, cfg.ranks_per_channel)
            row = line % cfg.rows_per_bank
        return DramCoordinates(channel=channel, rank=rank, bank_group=bank_group,
                               bank=bank, row=row, column=column)

    def attach(self, request: MemoryRequest) -> MemoryRequest:
        """Fill in the request's decoded coordinates (idempotent)."""
        if request.coordinates is None:
            request.coordinates = self.decode(request.address)
        return request
