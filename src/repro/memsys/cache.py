"""Set-associative cache hierarchy with stream prefetchers (ZSim stand-in).

The paper's CPU evaluation runs DNN inference through ZSim's cache hierarchy
(32KB L1, 512KB L2, 8MB L3, stream prefetchers at L2/L3 — Table 4) and sends
the resulting LLC misses to Ramulator.  This module provides the same filter:
a configurable multi-level write-back cache simulator that consumes a DNN
address trace and emits the DRAM request stream for the cycle-level memory
controller in :mod:`repro.memsys.controller`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.memsys.request import MemoryRequest, RequestType


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and behaviour of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int = 64
    write_back: bool = True
    write_allocate: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry values must be positive")
        if self.size_bytes % (self.associativity * self.line_bytes) != 0:
            raise ValueError(
                f"{self.name}: size must be a multiple of associativity * line size")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    prefetches: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.accesses else 0.0


class Cache:
    """One set-associative, LRU, write-back/write-allocate cache level."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        # set index -> OrderedDict(tag -> dirty flag); least recently used first.
        self._sets: Dict[int, "OrderedDict[int, bool]"] = {}

    def _locate(self, address: int) -> Tuple[int, int]:
        line = address // self.config.line_bytes
        return line % self.config.num_sets, line // self.config.num_sets

    def lookup(self, address: int) -> bool:
        """Check residency without updating replacement state or counters."""
        set_index, tag = self._locate(address)
        return tag in self._sets.get(set_index, {})

    def access(self, address: int, is_write: bool,
               count: bool = True) -> Tuple[bool, Optional[int]]:
        """Access one address; returns (hit, evicted dirty line address or None)."""
        set_index, tag = self._locate(address)
        ways = self._sets.setdefault(set_index, OrderedDict())
        if count:
            self.stats.accesses += 1

        if tag in ways:
            if count:
                self.stats.hits += 1
            ways.move_to_end(tag)
            if is_write:
                ways[tag] = True
            return True, None

        if count:
            self.stats.misses += 1
        if is_write and not self.config.write_allocate:
            return False, None
        return False, self._fill(set_index, tag, dirty=is_write and self.config.write_back)

    def fill(self, address: int, dirty: bool = False) -> Optional[int]:
        """Install a line (e.g. a prefetch); returns an evicted dirty line address."""
        set_index, tag = self._locate(address)
        ways = self._sets.setdefault(set_index, OrderedDict())
        if tag in ways:
            ways.move_to_end(tag)
            ways[tag] = ways[tag] or dirty
            return None
        return self._fill(set_index, tag, dirty)

    def _fill(self, set_index: int, tag: int, dirty: bool) -> Optional[int]:
        ways = self._sets.setdefault(set_index, OrderedDict())
        victim_address = None
        if len(ways) >= self.config.associativity:
            victim_tag, victim_dirty = ways.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
                victim_line = victim_tag * self.config.num_sets + set_index
                victim_address = victim_line * self.config.line_bytes
        ways[tag] = dirty
        return victim_address


class StreamPrefetcher:
    """Simple next-line stream prefetcher (the paper's Table 4 configuration).

    A stream is confirmed after ``threshold`` consecutive line addresses; each
    subsequent miss on the stream prefetches the next ``degree`` lines.
    """

    def __init__(self, degree: int = 4, threshold: int = 2, max_streams: int = 16,
                 line_bytes: int = 64):
        if degree < 0 or threshold < 1 or max_streams < 1:
            raise ValueError("invalid prefetcher configuration")
        self.degree = degree
        self.threshold = threshold
        self.max_streams = max_streams
        self.line_bytes = line_bytes
        self._streams: "OrderedDict[int, int]" = OrderedDict()   # next line -> run length

    def observe(self, address: int) -> List[int]:
        """Observe a demand access; return the addresses to prefetch."""
        line = address // self.line_bytes
        run_length = self._streams.pop(line, 0) + 1
        self._streams[line + 1] = run_length
        while len(self._streams) > self.max_streams:
            self._streams.popitem(last=False)
        if run_length < self.threshold or self.degree == 0:
            return []
        return [(line + 1 + i) * self.line_bytes for i in range(self.degree)]


#: The paper's Table 4 cache hierarchy (per-core L1/L2, shared L3).
PAPER_CACHE_CONFIGS: Tuple[CacheConfig, ...] = (
    CacheConfig(name="L1", size_bytes=32 * 1024, associativity=8),
    CacheConfig(name="L2", size_bytes=512 * 1024, associativity=8),
    CacheConfig(name="L3", size_bytes=8 * 1024 * 1024, associativity=16),
)


@dataclass
class HierarchyResult:
    """DRAM traffic produced by filtering an address trace through the caches."""

    dram_requests: List[MemoryRequest]
    level_stats: Dict[str, CacheStats]
    demand_accesses: int

    @property
    def dram_reads(self) -> int:
        return sum(1 for r in self.dram_requests if r.type is RequestType.READ)

    @property
    def dram_writes(self) -> int:
        return sum(1 for r in self.dram_requests if r.type is RequestType.WRITE)

    @property
    def llc_miss_rate(self) -> float:
        last = list(self.level_stats.values())[-1]
        return last.miss_rate


class CacheHierarchy:
    """Multi-level cache hierarchy that converts core accesses into DRAM requests."""

    def __init__(self, configs: Sequence[CacheConfig] = PAPER_CACHE_CONFIGS,
                 prefetch_levels: Sequence[str] = ("L2", "L3"),
                 prefetch_degree: int = 4,
                 cycles_per_access: float = 1.0):
        if not configs:
            raise ValueError("at least one cache level is required")
        self.levels = [Cache(config) for config in configs]
        self.prefetchers: Dict[str, StreamPrefetcher] = {
            name: StreamPrefetcher(degree=prefetch_degree)
            for name in prefetch_levels
            if any(c.name == name for c in configs)
        }
        self.cycles_per_access = float(cycles_per_access)

    @property
    def llc(self) -> Cache:
        return self.levels[-1]

    def _dram_request(self, address: int, is_write: bool, cycle: int,
                      requests: List[MemoryRequest]) -> None:
        requests.append(MemoryRequest(
            address=address,
            type=RequestType.WRITE if is_write else RequestType.READ,
            arrival_cycle=cycle,
        ))

    def _handle_writeback(self, level_index: int, victim_address: int, cycle: int,
                          requests: List[MemoryRequest]) -> None:
        """A dirty eviction from level i becomes a write into level i+1 (or DRAM)."""
        next_index = level_index + 1
        if next_index >= len(self.levels):
            self._dram_request(victim_address, True, cycle, requests)
            return
        hit, victim = self.levels[next_index].access(victim_address, is_write=True,
                                                     count=False)
        if victim is not None:
            self._handle_writeback(next_index, victim, cycle, requests)
        if not hit and not self.levels[next_index].config.write_allocate:
            self._dram_request(victim_address, True, cycle, requests)

    def access(self, address: int, is_write: bool, cycle: int,
               requests: List[MemoryRequest]) -> int:
        """Access the hierarchy; returns the level index that hit (len == DRAM)."""
        for index, cache in enumerate(self.levels):
            hit, victim = cache.access(address, is_write)
            if victim is not None:
                self._handle_writeback(index, victim, cycle, requests)
            if hit:
                return index
            # miss: consult this level's prefetcher before falling through
            prefetcher = self.prefetchers.get(cache.config.name)
            if prefetcher is not None:
                for prefetch_address in prefetcher.observe(address):
                    if not cache.lookup(prefetch_address):
                        cache.stats.prefetches += 1
                        victim = cache.fill(prefetch_address)
                        if victim is not None:
                            self._handle_writeback(index, victim, cycle, requests)
                        if index == len(self.levels) - 1:
                            self._dram_request(prefetch_address, False, cycle, requests)
        # LLC miss: demand fetch from DRAM (writes allocate then dirty the line).
        self._dram_request(address, False, cycle, requests)
        return len(self.levels)

    def filter_trace(self, trace: Sequence[Tuple[int, bool]],
                     start_cycle: int = 0) -> HierarchyResult:
        """Run an (address, is_write) trace through the hierarchy.

        Consecutive accesses are spaced ``cycles_per_access`` apart, which
        becomes the arrival schedule of the DRAM requests.
        """
        requests: List[MemoryRequest] = []
        cycle = float(start_cycle)
        for address, is_write in trace:
            self.access(address, is_write, int(cycle), requests)
            cycle += self.cycles_per_access
        stats = {cache.config.name: cache.stats for cache in self.levels}
        return HierarchyResult(dram_requests=requests, level_stats=stats,
                               demand_accesses=len(trace))
