"""DDR4 / LPDDR3 / GDDR5 device timing expressed in memory-controller cycles.

The paper's CPU evaluation drives Ramulator with a DDR4-2133 configuration
(Table 4) and reduces the activation latency tRCD below the datasheet value;
the accelerator evaluation additionally uses LPDDR3-1600 and the GPU uses
GDDR5.  This module provides the cycle-domain timing sets consumed by the
cycle-level memory controller in :mod:`repro.memsys.controller`.

All values are stored as integer controller cycles (one cycle = ``tck_ns``)
because the bank state machine advances in cycles.  ``from_nanoseconds``
bridges from the nanosecond-domain :class:`repro.dram.timing.TimingParameters`
used elsewhere in the library, so EDEN's tRCD reductions translate directly
into fewer activation cycles here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.dram.timing import TimingParameters


def _cycles(value_ns: float, tck_ns: float) -> int:
    """Round a nanosecond quantity up to whole controller cycles (JEDEC rounding)."""
    if value_ns <= 0:
        return 0
    return max(1, int(math.ceil(value_ns / tck_ns - 1e-9)))


@dataclass(frozen=True)
class DeviceTiming:
    """Complete timing constraint set for one memory device, in cycles.

    Field names follow the JEDEC DDR4 datasheet.  Suffix ``_s``/``_l`` denotes
    the short (different bank group) / long (same bank group) variants of the
    column-to-column and activate-to-activate constraints.
    """

    name: str
    tck_ns: float          # clock period of the command/data bus
    cl: int                # CAS latency (READ to first data)
    cwl: int               # CAS write latency
    trcd: int              # ACT to internal READ/WRITE
    trp: int               # PRE to ACT
    tras: int              # ACT to PRE
    trc: int               # ACT to ACT, same bank
    tccd_s: int            # column-to-column, different bank group
    tccd_l: int            # column-to-column, same bank group
    trrd_s: int            # ACT to ACT, different bank group
    trrd_l: int            # ACT to ACT, same bank group
    tfaw: int              # four-activate window
    twr: int               # write recovery (last data to PRE)
    trtp: int              # READ to PRE
    twtr: int              # write-to-read turnaround
    trfc: int              # refresh cycle time
    trefi: int             # average refresh interval
    burst_cycles: int = 4  # BL8 on a DDR bus occupies 4 controller cycles

    def __post_init__(self) -> None:
        if self.tck_ns <= 0:
            raise ValueError("tck_ns must be positive")
        for field_name in ("cl", "cwl", "trcd", "trp", "tras", "trc", "tccd_s",
                           "tccd_l", "trrd_s", "trrd_l", "tfaw", "twr", "trtp",
                           "twtr", "trfc", "trefi", "burst_cycles"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")
        if self.tras + self.trp > self.trc:
            raise ValueError("tRC must be at least tRAS + tRP")
        if self.tccd_l < self.tccd_s:
            raise ValueError("tCCD_L must be >= tCCD_S")
        if self.trrd_l < self.trrd_s:
            raise ValueError("tRRD_L must be >= tRRD_S")

    # -- derived quantities -------------------------------------------------------
    @property
    def read_latency(self) -> int:
        """Cycles from READ issue to the end of its data burst."""
        return self.cl + self.burst_cycles

    @property
    def write_latency(self) -> int:
        """Cycles from WRITE issue to the end of its data burst."""
        return self.cwl + self.burst_cycles

    @property
    def row_miss_penalty(self) -> int:
        """Extra cycles a row-buffer miss pays over a hit (tRP + tRCD)."""
        return self.trp + self.trcd

    def ns(self, cycles: int) -> float:
        """Convert a cycle count back into nanoseconds."""
        return cycles * self.tck_ns

    # -- derivation and reduction --------------------------------------------------
    def with_reduced_trcd(self, delta_ns: float) -> "DeviceTiming":
        """Return a copy with tRCD reduced by ``delta_ns`` (EDEN's latency knob).

        The reduction is clamped so at least one cycle of activation remains;
        a non-positive tRCD is not representable by a real controller.
        """
        if delta_ns < 0:
            raise ValueError("tRCD reduction must be non-negative")
        reduced = max(1, self.trcd - int(round(delta_ns / self.tck_ns)))
        return replace(self, trcd=reduced)

    def with_trcd_cycles(self, trcd: int) -> "DeviceTiming":
        if trcd < 1:
            raise ValueError("tRCD must be at least one cycle")
        return replace(self, trcd=trcd)

    def with_reduced_trp(self, delta_ns: float) -> "DeviceTiming":
        if delta_ns < 0:
            raise ValueError("tRP reduction must be non-negative")
        reduced = max(1, self.trp - int(round(delta_ns / self.tck_ns)))
        new_trc = max(self.tras + reduced, self.trc - (self.trp - reduced))
        return replace(self, trp=reduced, trc=new_trc)

    @classmethod
    def from_nanoseconds(cls, params: TimingParameters, name: str = "custom",
                         tck_ns: float = 0.938, **overrides) -> "DeviceTiming":
        """Build a cycle-domain timing set from nanosecond-domain parameters.

        Constraints the nanosecond model does not carry (tFAW, tCCD, ...) are
        filled from DDR4-2133 defaults scaled to the requested clock.
        """
        base = SPEED_BINS["DDR4-2133"]
        trcd = _cycles(params.trcd_ns, tck_ns)
        trp = _cycles(params.trp_ns, tck_ns)
        tras = _cycles(params.tras_ns, tck_ns)
        cl = _cycles(params.cl_ns, tck_ns)
        timing = cls(
            name=name, tck_ns=tck_ns, cl=cl, cwl=max(1, cl - 2),
            trcd=trcd, trp=trp, tras=tras, trc=tras + trp,
            tccd_s=base.tccd_s, tccd_l=base.tccd_l,
            trrd_s=base.trrd_s, trrd_l=base.trrd_l, tfaw=base.tfaw,
            twr=_cycles(15.0, tck_ns), trtp=_cycles(7.5, tck_ns),
            twtr=base.twtr, trfc=_cycles(350.0, tck_ns),
            trefi=_cycles(7800.0, tck_ns),
        )
        if overrides:
            timing = replace(timing, **overrides)
        return timing


def _ddr4_bin(name: str, data_rate_mtps: int) -> DeviceTiming:
    """Construct a JEDEC-style DDR4 speed bin from its data rate."""
    tck_ns = 2000.0 / data_rate_mtps          # two transfers per clock
    tras = _cycles(32.0, tck_ns)
    trp = _cycles(13.32, tck_ns)
    return DeviceTiming(
        name=name, tck_ns=tck_ns,
        cl=_cycles(13.32, tck_ns), cwl=_cycles(10.0, tck_ns),
        trcd=_cycles(13.32, tck_ns), trp=trp,
        tras=tras, trc=tras + trp,
        tccd_s=4, tccd_l=max(4, _cycles(5.0, tck_ns)),
        trrd_s=max(4, _cycles(3.7, tck_ns)), trrd_l=max(4, _cycles(5.3, tck_ns)),
        tfaw=_cycles(21.0, tck_ns),
        twr=_cycles(15.0, tck_ns), trtp=_cycles(7.5, tck_ns),
        twtr=max(2, _cycles(2.5, tck_ns)),
        trfc=_cycles(350.0, tck_ns), trefi=_cycles(7800.0, tck_ns),
    )


#: Timing sets for the memory types used across the paper's four platforms.
SPEED_BINS: Dict[str, DeviceTiming] = {}
SPEED_BINS["DDR4-2133"] = _ddr4_bin("DDR4-2133", 2133)
SPEED_BINS["DDR4-2400"] = _ddr4_bin("DDR4-2400", 2400)
SPEED_BINS["LPDDR3-1600"] = DeviceTiming(
    name="LPDDR3-1600", tck_ns=1.25,
    cl=12, cwl=6, trcd=15, trp=15, tras=34, trc=49,
    tccd_s=4, tccd_l=4, trrd_s=8, trrd_l=8, tfaw=40,
    twr=12, trtp=6, twtr=6, trfc=168, trefi=3120,
)
SPEED_BINS["GDDR5"] = DeviceTiming(
    name="GDDR5", tck_ns=0.8,
    cl=18, cwl=6, trcd=18, trp=18, tras=40, trc=58,
    tccd_s=2, tccd_l=3, trrd_s=6, trrd_l=8, tfaw=28,
    twr=19, trtp=5, twtr=7, trfc=320, trefi=4750,
)


def speed_bin(name: str) -> DeviceTiming:
    """Look up one of the predefined device timing sets."""
    if name not in SPEED_BINS:
        raise KeyError(f"unknown speed bin {name!r}; expected one of {sorted(SPEED_BINS)}")
    return SPEED_BINS[name]
