"""DRAM command vocabulary and command traces.

The cycle-level controller issues JEDEC commands (ACT, RD, WR, PRE, REF) to
the banks; the resulting command trace is both the controller's ground truth
for statistics and the input of the DRAMPower-style energy model in
:mod:`repro.memsys.power` (the paper feeds Ramulator traces into DRAMPower the
same way).
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List


class CommandType(enum.Enum):
    """JEDEC DDR4 command types issued by the controller."""

    ACT = "ACT"         # activate a row into the row buffer
    PRE = "PRE"         # precharge (close) the open row
    RD = "RD"           # column read burst
    WR = "WR"           # column write burst
    REF = "REF"         # all-bank auto refresh

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_column(self) -> bool:
        return self in (CommandType.RD, CommandType.WR)


@dataclass(frozen=True)
class Command:
    """One command as it appears on the command bus."""

    cycle: int
    type: CommandType
    channel: int = 0
    rank: int = 0
    bank_group: int = 0
    bank: int = 0
    row: int = 0
    column: int = 0

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError("cycle must be non-negative")

    @property
    def flat_bank(self) -> int:
        return self.bank_group * 4 + self.bank


class CommandTrace:
    """Ordered record of every command the controller issued."""

    def __init__(self) -> None:
        self._commands: List[Command] = []

    def append(self, command: Command) -> None:
        if self._commands and command.cycle < self._commands[-1].cycle:
            raise ValueError("command trace must be appended in cycle order")
        self._commands.append(command)

    def extend(self, commands: Iterable[Command]) -> None:
        for command in commands:
            self.append(command)

    def __len__(self) -> int:
        return len(self._commands)

    def __iter__(self):
        return iter(self._commands)

    def __getitem__(self, index):
        return self._commands[index]

    @property
    def last_cycle(self) -> int:
        return self._commands[-1].cycle if self._commands else 0

    def counts(self) -> Dict[CommandType, int]:
        """Number of commands of each type (missing types map to zero)."""
        counter = Counter(command.type for command in self._commands)
        return {command_type: counter.get(command_type, 0) for command_type in CommandType}

    def count(self, command_type: CommandType) -> int:
        return sum(1 for command in self._commands if command.type is command_type)

    def per_bank_counts(self) -> Dict[int, Dict[CommandType, int]]:
        """Command counts keyed by flat bank index (refreshes excluded)."""
        result: Dict[int, Dict[CommandType, int]] = {}
        for command in self._commands:
            if command.type is CommandType.REF:
                continue
            bank_counts = result.setdefault(command.flat_bank, {t: 0 for t in CommandType})
            bank_counts[command.type] += 1
        return result
