"""DNN memory-access trace generation for the cycle-level memory system.

The paper's CPU/GPU evaluations obtain memory traces by running the DNN
inference binaries inside ZSim/GPGPU-Sim.  Here the traces are synthesized
directly from the structure of the workload: per-layer weight reads are
streamed sequentially, IFM reads are streamed with partial reuse, OFM writes
are streamed sequentially, and a configurable fraction of reads is scattered
randomly across the footprint, modelling the arbitrary indexing the paper
blames for YOLO's latency sensitivity (non-maximum suppression, confidence
and IoU thresholding — Section 7.1).

Two producers are provided:

* :func:`trace_from_network` — walk an in-repo analogue network's tensor
  inventory and lay every weight/IFM/OFM region out contiguously (the paper's
  "IFMs and weights are aligned in DRAM"), then emit per-layer access
  streams;
* :func:`trace_from_workload` — synthesize a bounded trace with the byte
  proportions and random-access fraction of a paper workload descriptor, used
  by the system-level benchmarks where the full-size footprints matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.traffic import WorkloadDescriptor
from repro.nn.network import Network
from repro.nn.tensor import DataKind, TensorSpec

#: An access is (byte address, is_write).
Access = Tuple[int, bool]


@dataclass(frozen=True)
class TensorRegion:
    """A contiguous DRAM region holding one DNN tensor."""

    name: str
    kind: DataKind
    base_address: int
    size_bytes: int

    def __post_init__(self) -> None:
        if self.base_address < 0 or self.size_bytes <= 0:
            raise ValueError("region must have non-negative base and positive size")

    @property
    def end_address(self) -> int:
        return self.base_address + self.size_bytes

    def line_addresses(self, line_bytes: int = 64) -> Iterator[int]:
        """Yield the address of every cache line the region touches, in order."""
        address = (self.base_address // line_bytes) * line_bytes
        while address < self.end_address:
            yield address
            address += line_bytes


class AddressSpaceLayout:
    """Sequential placement of DNN tensors in the physical address space."""

    def __init__(self, base_address: int = 0, alignment: int = 4096):
        if alignment <= 0:
            raise ValueError("alignment must be positive")
        self._next = base_address
        self.alignment = alignment
        self.regions: Dict[str, TensorRegion] = {}

    def allocate(self, name: str, kind: DataKind, size_bytes: int) -> TensorRegion:
        if name in self.regions:
            return self.regions[name]
        size = max(int(size_bytes), 1)
        region = TensorRegion(name=name, kind=kind, base_address=self._next, size_bytes=size)
        self.regions[name] = region
        padded = ((size + self.alignment - 1) // self.alignment) * self.alignment
        self._next += padded
        return region

    def allocate_specs(self, specs: Sequence[TensorSpec]) -> List[TensorRegion]:
        return [self.allocate(spec.name, spec.kind, spec.size_bytes) for spec in specs]

    @property
    def footprint_bytes(self) -> int:
        return self._next


def _stream(region: TensorRegion, is_write: bool, line_bytes: int,
            stride_lines: int = 1) -> List[Access]:
    addresses = list(region.line_addresses(line_bytes))
    return [(address, is_write) for address in addresses[::max(1, stride_lines)]]


def _scatter(regions: Sequence[TensorRegion], count: int, line_bytes: int,
             rng: np.random.Generator) -> List[Access]:
    """Random-indexed reads across the given regions (NMS/thresholding style)."""
    if count <= 0 or not regions:
        return []
    accesses: List[Access] = []
    sizes = np.array([region.size_bytes for region in regions], dtype=float)
    probabilities = sizes / sizes.sum()
    choices = rng.choice(len(regions), size=count, p=probabilities)
    offsets = rng.random(count)
    for region_index, offset in zip(choices, offsets):
        region = regions[region_index]
        lines = max(1, region.size_bytes // line_bytes)
        line = int(offset * lines)
        accesses.append((region.base_address + line * line_bytes, False))
    return accesses


@dataclass
class LayerTrace:
    """The access stream of one layer plus bookkeeping for reporting."""

    layer_name: str
    accesses: List[Access]

    @property
    def reads(self) -> int:
        return sum(1 for _, is_write in self.accesses if not is_write)

    @property
    def writes(self) -> int:
        return sum(1 for _, is_write in self.accesses if is_write)

    @property
    def bytes_touched(self) -> int:
        return len(self.accesses) * 64


def trace_from_network(network: Network, line_bytes: int = 64,
                       dtype_bits: int = 32,
                       random_access_fraction: float = 0.0,
                       ifm_reuse_reads: int = 2,
                       seed: int = 0) -> List[LayerTrace]:
    """Generate per-layer access traces for an in-repo analogue network.

    Each layer reads its weights once, reads its IFM ``ifm_reuse_reads`` times
    (modelling the partial reuse a blocked convolution achieves), writes its
    OFM once, and issues ``random_access_fraction`` extra scattered reads.
    """
    if not 0.0 <= random_access_fraction <= 1.0:
        raise ValueError("random_access_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    layout = AddressSpaceLayout()
    specs = network.data_type_specs(dtype_bits=dtype_bits)
    layout.allocate_specs(specs)

    traces: List[LayerTrace] = []
    ifm_by_layer: Dict[str, TensorRegion] = {}
    weight_by_layer: Dict[str, List[TensorRegion]] = {}
    for spec in specs:
        region = layout.regions[spec.name]
        layer_name = spec.name.rsplit(".", 1)[0]
        if spec.kind is DataKind.IFM:
            ifm_by_layer[layer_name] = region
        elif spec.kind is DataKind.WEIGHT:
            weight_by_layer.setdefault(layer_name, []).append(region)

    layer_names = list(dict.fromkeys(list(weight_by_layer) + list(ifm_by_layer)))
    for layer_name in layer_names:
        accesses: List[Access] = []
        regions_here: List[TensorRegion] = []
        for region in weight_by_layer.get(layer_name, []):
            accesses.extend(_stream(region, is_write=False, line_bytes=line_bytes))
            regions_here.append(region)
        ifm_region = ifm_by_layer.get(layer_name)
        if ifm_region is not None:
            for _ in range(max(1, ifm_reuse_reads)):
                accesses.extend(_stream(ifm_region, is_write=False, line_bytes=line_bytes))
            # The layer's OFM is the next layer's IFM; model the write into it.
            accesses.extend(_stream(ifm_region, is_write=True, line_bytes=line_bytes))
            regions_here.append(ifm_region)
        scatter_count = int(len(accesses) * random_access_fraction)
        accesses.extend(_scatter(regions_here, scatter_count, line_bytes, rng))
        traces.append(LayerTrace(layer_name=layer_name, accesses=accesses))
    return traces


def flatten(traces: Sequence[LayerTrace]) -> List[Access]:
    """Concatenate per-layer traces into one stream in execution order."""
    accesses: List[Access] = []
    for trace in traces:
        accesses.extend(trace.accesses)
    return accesses


def trace_from_workload(workload: WorkloadDescriptor, max_accesses: int = 20000,
                        line_bytes: int = 64, seed: int = 0) -> List[Access]:
    """Synthesize a bounded trace with a paper workload's traffic proportions.

    The full workloads move hundreds of megabytes per inference, far too much
    for a cycle-level Python simulation, so the trace is a scaled sample: the
    read/write mix, the sequential/random mix and the footprint proportions
    match the descriptor while the total access count is capped.
    """
    if max_accesses <= 0:
        raise ValueError("max_accesses must be positive")
    rng = np.random.default_rng(seed)
    total_bytes = workload.total_bytes
    if total_bytes <= 0:
        return []
    read_fraction = workload.read_bytes / total_bytes
    sequential_reads = int(max_accesses * read_fraction * (1.0 - workload.random_access_fraction))
    random_reads = int(max_accesses * read_fraction * workload.random_access_fraction)
    writes = max_accesses - sequential_reads - random_reads

    layout = AddressSpaceLayout()
    weight_region = layout.allocate("weights", DataKind.WEIGHT,
                                    max(workload.weight_bytes, line_bytes))
    ifm_region = layout.allocate("ifms", DataKind.IFM, max(workload.ifm_bytes, line_bytes))
    ofm_region = layout.allocate("ofms", DataKind.OFM, max(workload.ofm_bytes, line_bytes))

    # Sequential reads walk the weight + IFM regions proportionally to their size.
    read_bytes = workload.weight_bytes + workload.ifm_bytes
    weight_share = workload.weight_bytes / read_bytes if read_bytes else 0.5
    weight_reads = int(sequential_reads * weight_share)
    ifm_reads = sequential_reads - weight_reads
    streams = [
        _sample_stream(weight_region, weight_reads, False, line_bytes),
        _sample_stream(ifm_region, ifm_reads, False, line_bytes),
        _sample_stream(ofm_region, writes, True, line_bytes),
        _scatter([weight_region, ifm_region], random_reads, line_bytes, rng),
    ]
    return _interleave(streams, chunk=8)


def _interleave(streams: Sequence[List[Access]], chunk: int = 8) -> List[Access]:
    """Round-robin merge of streams in small chunks.

    A real execution alternates between reading weights, reading IFMs and
    writing OFMs within each layer; chunked interleaving preserves each
    stream's sequential locality (and therefore its row-buffer behaviour)
    while still mixing the streams the way the core would.
    """
    cursors = [0] * len(streams)
    merged: List[Access] = []
    while any(cursors[i] < len(stream) for i, stream in enumerate(streams)):
        for index, stream in enumerate(streams):
            start = cursors[index]
            if start >= len(stream):
                continue
            merged.extend(stream[start:start + chunk])
            cursors[index] = start + chunk
    return merged


def _sample_stream(region: TensorRegion, count: int, is_write: bool,
                   line_bytes: int, run_lines: int = 64) -> List[Access]:
    """Sample ``count`` line addresses as contiguous runs spread across a region.

    Real weight/feature-map streaming walks long contiguous stretches of the
    address space (which is what gives streaming workloads their high
    row-buffer hit rates), so the sample keeps runs of ``run_lines``
    consecutive lines and spreads the runs evenly across the region instead of
    striding line-by-line through it.
    """
    if count <= 0:
        return []
    lines = max(1, region.size_bytes // line_bytes)
    run_lines = max(1, min(run_lines, lines))
    num_runs = max(1, count // run_lines)
    run_stride = max(run_lines, lines // num_runs)
    accesses: List[Access] = []
    run_start = 0
    while len(accesses) < count:
        for offset in range(run_lines):
            if len(accesses) >= count:
                break
            line = (run_start + offset) % lines
            accesses.append((region.base_address + line * line_bytes, is_write))
        run_start += run_stride
    return accesses
