"""Bank and rank state machines enforcing DDR4 timing constraints.

Each DRAM bank tracks its open row and the earliest cycle at which each
command type may legally be issued to it; each rank additionally enforces the
constraints that span banks (tRRD, tFAW, tCCD, bus turnaround and refresh).
The cycle-level controller consults these state machines before putting a
command on the bus, exactly as Ramulator's DRAM state machine does for the
paper's CPU evaluation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.memsys.commands import Command, CommandType
from repro.memsys.ddr4 import DeviceTiming

#: Sentinel for "no constraint yet".
_NEVER = -(10 ** 12)


@dataclass
class BankState:
    """Timing state of a single DRAM bank."""

    timing: DeviceTiming
    bank_group: int = 0
    bank: int = 0
    open_row: Optional[int] = None
    act_ready: int = 0
    pre_ready: int = 0
    column_ready: int = 0
    last_act_cycle: int = _NEVER

    @property
    def is_open(self) -> bool:
        return self.open_row is not None

    def row_hit(self, row: int) -> bool:
        return self.open_row == row

    # -- legality -----------------------------------------------------------------
    def earliest(self, command_type: CommandType) -> int:
        """Earliest cycle at which the bank itself allows ``command_type``.

        Rank-level constraints (tRRD, tFAW, tCCD, turnaround) are layered on
        top by :class:`RankState`; a column command additionally requires the
        right row to be open, which the scheduler checks.
        """
        if command_type is CommandType.ACT:
            return self.act_ready
        if command_type is CommandType.PRE:
            return self.pre_ready
        if command_type in (CommandType.RD, CommandType.WR):
            return self.column_ready
        raise ValueError(f"bank cannot accept command {command_type}")

    # -- state transitions ----------------------------------------------------------
    def issue_act(self, cycle: int, row: int) -> None:
        if self.is_open:
            raise RuntimeError("ACT issued to a bank with an open row")
        if cycle < self.act_ready:
            raise RuntimeError(f"ACT at {cycle} violates tRC/tRP (ready {self.act_ready})")
        t = self.timing
        self.open_row = row
        self.last_act_cycle = cycle
        self.column_ready = max(self.column_ready, cycle + t.trcd)
        self.pre_ready = max(self.pre_ready, cycle + t.tras)
        self.act_ready = max(self.act_ready, cycle + t.trc)

    def issue_read(self, cycle: int) -> None:
        self._check_column(cycle, CommandType.RD)
        t = self.timing
        self.pre_ready = max(self.pre_ready, cycle + t.trtp)

    def issue_write(self, cycle: int) -> None:
        self._check_column(cycle, CommandType.WR)
        t = self.timing
        self.pre_ready = max(self.pre_ready, cycle + t.cwl + t.burst_cycles + t.twr)

    def issue_pre(self, cycle: int) -> None:
        if not self.is_open:
            raise RuntimeError("PRE issued to an already-closed bank")
        if cycle < self.pre_ready:
            raise RuntimeError(f"PRE at {cycle} violates tRAS/tRTP/tWR (ready {self.pre_ready})")
        self.open_row = None
        self.act_ready = max(self.act_ready, cycle + self.timing.trp)

    def force_closed(self, ready_cycle: int) -> None:
        """Close the bank as part of a refresh; next ACT no earlier than ``ready_cycle``."""
        self.open_row = None
        self.act_ready = max(self.act_ready, ready_cycle)

    def _check_column(self, cycle: int, command_type: CommandType) -> None:
        if not self.is_open:
            raise RuntimeError(f"{command_type} issued to a closed bank")
        if cycle < self.column_ready:
            raise RuntimeError(
                f"{command_type} at {cycle} violates tRCD/tCCD (ready {self.column_ready})"
            )


class RankState:
    """Rank-wide timing state: activation window, column bus and refresh."""

    def __init__(self, timing: DeviceTiming, num_bank_groups: int = 4,
                 banks_per_group: int = 4, refresh_enabled: bool = True):
        self.timing = timing
        self.refresh_enabled = refresh_enabled
        self.banks: List[BankState] = [
            BankState(timing=timing, bank_group=group, bank=bank)
            for group in range(num_bank_groups) for bank in range(banks_per_group)
        ]
        self._act_history: Deque[int] = deque(maxlen=4)      # for tFAW
        self._last_act_cycle = _NEVER
        self._last_act_group: Optional[int] = None
        self._last_column_cycle = _NEVER
        self._last_column_group: Optional[int] = None
        self._last_read_end = _NEVER
        self._last_write_end = _NEVER
        self.next_refresh_due = timing.trefi if refresh_enabled else None
        self.refresh_count = 0

    # -- lookup ---------------------------------------------------------------------
    def bank_state(self, flat_bank: int) -> BankState:
        return self.banks[flat_bank]

    @property
    def open_bank_count(self) -> int:
        return sum(1 for bank in self.banks if bank.is_open)

    # -- rank-level earliest-issue --------------------------------------------------
    def earliest(self, command_type: CommandType, flat_bank: int) -> int:
        """Earliest cycle the rank allows ``command_type`` for ``flat_bank``."""
        bank = self.banks[flat_bank]
        t = self.timing
        ready = bank.earliest(command_type)
        if command_type is CommandType.ACT:
            if self._last_act_cycle != _NEVER:
                spacing = t.trrd_l if self._last_act_group == bank.bank_group else t.trrd_s
                ready = max(ready, self._last_act_cycle + spacing)
            if len(self._act_history) == self._act_history.maxlen:
                ready = max(ready, self._act_history[0] + t.tfaw)
        elif command_type in (CommandType.RD, CommandType.WR):
            if self._last_column_cycle != _NEVER:
                spacing = t.tccd_l if self._last_column_group == bank.bank_group else t.tccd_s
                ready = max(ready, self._last_column_cycle + spacing)
            if command_type is CommandType.RD and self._last_write_end != _NEVER:
                ready = max(ready, self._last_write_end + t.twtr)
            if command_type is CommandType.WR and self._last_read_end != _NEVER:
                ready = max(ready, self._last_read_end + 2)
        return ready

    def earliest_refresh(self) -> Optional[int]:
        """Earliest cycle an all-bank refresh could be issued.

        Refresh requires every bank to be precharged; while any bank is still
        open the controller must first issue PREs, so this returns ``None``.
        Once all banks are closed, REF obeys the same tRP spacing an ACT
        would, which is already folded into each bank's ``act_ready``.
        """
        if any(bank.is_open for bank in self.banks):
            return None
        return max(bank.act_ready for bank in self.banks)

    # -- transitions ------------------------------------------------------------------
    def issue(self, command: Command) -> None:
        """Apply a command to the rank and bank state machines."""
        t = self.timing
        cycle = command.cycle
        if command.type is CommandType.REF:
            for bank in self.banks:
                if bank.is_open:
                    raise RuntimeError("REF issued while a bank still has an open row")
                bank.force_closed(cycle + t.trfc)
            self.refresh_count += 1
            if self.next_refresh_due is not None:
                self.next_refresh_due += t.trefi
            return

        bank = self.banks[command.flat_bank]
        if command.type is CommandType.ACT:
            bank.issue_act(cycle, command.row)
            self._act_history.append(cycle)
            self._last_act_cycle = cycle
            self._last_act_group = bank.bank_group
        elif command.type is CommandType.RD:
            bank.issue_read(cycle)
            self._last_column_cycle = cycle
            self._last_column_group = bank.bank_group
            self._last_read_end = cycle + t.cl + t.burst_cycles
        elif command.type is CommandType.WR:
            bank.issue_write(cycle)
            self._last_column_cycle = cycle
            self._last_column_group = bank.bank_group
            self._last_write_end = cycle + t.cwl + t.burst_cycles
        elif command.type is CommandType.PRE:
            bank.issue_pre(cycle)
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown command type {command.type}")

    def refresh_due(self, cycle: int) -> bool:
        return (self.next_refresh_due is not None) and cycle >= self.next_refresh_due
