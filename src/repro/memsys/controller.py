"""Cycle-level DDR4 memory controller (Ramulator stand-in).

The controller accepts cache-line read/write requests, schedules JEDEC
commands against per-bank/per-rank state machines, handles periodic refresh,
and records a full command trace plus the statistics the system-level models
and the DRAMPower-style energy model need:

* row-buffer hits / misses / conflicts and the resulting request latencies,
  which is where EDEN's tRCD reduction shows up as a speedup;
* per-command counts and per-rank background (active vs precharged) cycles,
  which the energy model turns into DRAM energy;
* end-to-end execution cycles of the request stream.

The paper drives Ramulator with ZSim memory traces and DRAMPower with
Ramulator command traces; :class:`MemoryController` plays both trace-producer
roles here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.memsys.bank import RankState
from repro.memsys.commands import Command, CommandTrace, CommandType
from repro.memsys.ddr4 import DeviceTiming, speed_bin
from repro.memsys.request import (
    AddressMapper,
    AddressMapperConfig,
    MemoryRequest,
    RequestType,
)
from repro.memsys.scheduler import SchedulingPolicy, choose, next_command_for


@dataclass(frozen=True)
class ControllerConfig:
    """Static configuration of the cycle-level memory controller."""

    timing: DeviceTiming = field(default_factory=lambda: speed_bin("DDR4-2133"))
    mapper: AddressMapperConfig = field(default_factory=AddressMapperConfig)
    queue_depth: int = 32
    scheduling: SchedulingPolicy = SchedulingPolicy.FRFCFS
    refresh_enabled: bool = True
    precharge_idle_banks: bool = False   # closed-page-like eager precharge

    def __post_init__(self) -> None:
        if self.queue_depth <= 0:
            raise ValueError("queue_depth must be positive")

    def with_timing(self, timing: DeviceTiming) -> "ControllerConfig":
        return ControllerConfig(timing=timing, mapper=self.mapper,
                                queue_depth=self.queue_depth, scheduling=self.scheduling,
                                refresh_enabled=self.refresh_enabled,
                                precharge_idle_banks=self.precharge_idle_banks)


@dataclass
class ControllerStats:
    """Counters accumulated while servicing a request stream."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    refreshes: int = 0
    total_cycles: int = 0
    read_latency_sum: int = 0
    write_latency_sum: int = 0
    rank_active_cycles: Dict[Tuple[int, int], int] = field(default_factory=dict)
    rank_precharged_cycles: Dict[Tuple[int, int], int] = field(default_factory=dict)
    command_counts: Dict[CommandType, int] = field(
        default_factory=lambda: {t: 0 for t in CommandType})

    @property
    def requests(self) -> int:
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses + self.row_conflicts
        return self.row_hits / total if total else 0.0

    @property
    def average_read_latency(self) -> float:
        return self.read_latency_sum / self.reads if self.reads else 0.0

    @property
    def average_write_latency(self) -> float:
        return self.write_latency_sum / self.writes if self.writes else 0.0

    def active_cycles(self) -> int:
        return sum(self.rank_active_cycles.values())

    def precharged_cycles(self) -> int:
        return sum(self.rank_precharged_cycles.values())


@dataclass
class ControllerResult:
    """Outcome of running a request stream through the controller."""

    stats: ControllerStats
    trace: CommandTrace
    completed: List[MemoryRequest]
    timing: DeviceTiming

    @property
    def total_cycles(self) -> int:
        return self.stats.total_cycles

    @property
    def execution_time_ns(self) -> float:
        return self.stats.total_cycles * self.timing.tck_ns

    @property
    def average_read_latency_ns(self) -> float:
        return self.stats.average_read_latency * self.timing.tck_ns


class MemoryController:
    """A multi-channel, cycle-accurate DRAM memory controller."""

    def __init__(self, config: Optional[ControllerConfig] = None):
        self.config = config or ControllerConfig()
        self.timing = self.config.timing
        self.mapper = AddressMapper(self.config.mapper)
        cfg = self.config.mapper
        self._ranks: Dict[Tuple[int, int], RankState] = {
            (channel, rank): RankState(
                self.timing, num_bank_groups=cfg.bank_groups,
                banks_per_group=cfg.banks_per_group,
                refresh_enabled=self.config.refresh_enabled)
            for channel in range(cfg.channels)
            for rank in range(cfg.ranks_per_channel)
        }
        self._queues: Dict[int, List[MemoryRequest]] = {
            channel: [] for channel in range(cfg.channels)}
        self.stats = ControllerStats()
        self.trace = CommandTrace()
        self.completed: List[MemoryRequest] = []
        self.cycle = 0

    # -- public API -------------------------------------------------------------------
    def run(self, requests: Iterable[MemoryRequest]) -> ControllerResult:
        """Service ``requests`` to completion and return statistics and traces.

        Requests are admitted in arrival order subject to the per-channel
        queue depth; the simulated clock fast-forwards over cycles in which
        no command can legally be issued.
        """
        pending = sorted(self._prepare(requests), key=lambda r: (r.arrival_cycle, r.request_id))
        next_pending = 0

        while next_pending < len(pending) or self._queued_requests():
            next_pending = self._admit(pending, next_pending)
            issued_any, earliest_next = self._issue_cycle()
            if issued_any:
                self._advance_to(self.cycle + 1)
            else:
                targets = [earliest_next] if earliest_next is not None else []
                if next_pending < len(pending) and not self._all_queues_full():
                    targets.append(pending[next_pending].arrival_cycle)
                jump = max(self.cycle + 1, min(targets)) if targets else self.cycle + 1
                self._advance_to(jump)

        self._drain_tail()
        self.stats.total_cycles = self.cycle
        return ControllerResult(stats=self.stats, trace=self.trace,
                                completed=self.completed, timing=self.timing)

    # -- request admission --------------------------------------------------------------
    def _prepare(self, requests: Iterable[MemoryRequest]) -> List[MemoryRequest]:
        prepared = []
        for index, request in enumerate(requests):
            if request.request_id == 0:
                request.request_id = index + 1
            self.mapper.attach(request)
            prepared.append(request)
        return prepared

    def _admit(self, pending: Sequence[MemoryRequest], next_pending: int) -> int:
        while next_pending < len(pending):
            request = pending[next_pending]
            if request.arrival_cycle > self.cycle:
                break
            queue = self._queues[request.coordinates.channel]
            if len(queue) >= self.config.queue_depth:
                break
            queue.append(request)
            next_pending += 1
        return next_pending

    def _queued_requests(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def _all_queues_full(self) -> bool:
        return all(len(queue) >= self.config.queue_depth for queue in self._queues.values())

    # -- per-cycle issue ------------------------------------------------------------------
    def _issue_cycle(self) -> Tuple[bool, Optional[int]]:
        """Try to issue one command per channel at the current cycle.

        Returns whether anything was issued and, if not, the earliest cycle at
        which some channel could issue its preferred command (for
        fast-forwarding).
        """
        issued_any = False
        earliest_next: Optional[int] = None

        for channel, queue in self._queues.items():
            refresh_wait = self._handle_refresh(channel)
            if refresh_wait is not None:
                if refresh_wait == self.cycle:
                    issued_any = True
                else:
                    earliest_next = self._min_cycle(earliest_next, refresh_wait)
                continue

            decision = choose(queue, self._rank_for, self.cycle, self.config.scheduling)
            if decision is None:
                if self.config.precharge_idle_banks:
                    if self._precharge_idle(channel):
                        issued_any = True
                continue
            if decision.ready(self.cycle):
                self._issue(channel, decision.request, decision.command_type,
                            decision.is_row_hit)
                issued_any = True
            else:
                earliest_next = self._min_cycle(earliest_next, decision.earliest_cycle)

        return issued_any, earliest_next

    def _handle_refresh(self, channel: int) -> Optional[int]:
        """Progress refresh for the channel's ranks.

        Returns ``None`` when no refresh work is pending, the current cycle if
        a command was issued for refresh, or the cycle at which refresh work
        can continue.
        """
        for (chan, rank_index), rank in self._ranks.items():
            if chan != channel or not rank.refresh_due(self.cycle):
                continue
            # Close any open bank first.
            open_banks = [bank for bank in rank.banks if bank.is_open]
            if open_banks:
                ready = min(bank.pre_ready for bank in open_banks)
                if ready > self.cycle:
                    return ready
                bank = min(open_banks, key=lambda b: b.pre_ready)
                self._emit(Command(cycle=self.cycle, type=CommandType.PRE, channel=chan,
                                   rank=rank_index, bank_group=bank.bank_group,
                                   bank=bank.bank, row=bank.open_row or 0), rank)
                return self.cycle
            ready = rank.earliest_refresh()
            if ready is None or ready > self.cycle:
                return ready
            self._emit(Command(cycle=self.cycle, type=CommandType.REF, channel=chan,
                               rank=rank_index), rank)
            self.stats.refreshes += 1
            return self.cycle
        return None

    def _precharge_idle(self, channel: int) -> bool:
        """Eagerly precharge open banks with no queued row hits (closed-page flavour)."""
        queue = self._queues[channel]
        wanted_rows = {(r.coordinates.rank, r.coordinates.flat_bank, r.coordinates.row)
                       for r in queue}
        for (chan, rank_index), rank in self._ranks.items():
            if chan != channel:
                continue
            for bank in rank.banks:
                flat = bank.bank_group * 4 + bank.bank
                if (bank.is_open and bank.pre_ready <= self.cycle
                        and (rank_index, flat, bank.open_row) not in wanted_rows):
                    self._emit(Command(cycle=self.cycle, type=CommandType.PRE, channel=chan,
                                       rank=rank_index, bank_group=bank.bank_group,
                                       bank=bank.bank, row=bank.open_row), rank)
                    return True
        return False

    def _issue(self, channel: int, request: MemoryRequest,
               command_type: CommandType, is_row_hit: bool) -> None:
        coords = request.coordinates
        rank = self._rank_for(request)
        command = Command(cycle=self.cycle, type=command_type, channel=channel,
                          rank=coords.rank, bank_group=coords.bank_group,
                          bank=coords.bank, row=coords.row, column=coords.column)
        # Classify the access the first time we touch its bank for this request.
        if request.issue_cycle is None:
            if command_type in (CommandType.RD, CommandType.WR):
                self.stats.row_hits += 1
            elif command_type is CommandType.ACT:
                self.stats.row_misses += 1
            elif command_type is CommandType.PRE:
                self.stats.row_conflicts += 1
            request.issue_cycle = self.cycle

        self._emit(command, rank)

        if command_type.is_column:
            self._complete(channel, request, command_type)

    def _complete(self, channel: int, request: MemoryRequest,
                  command_type: CommandType) -> None:
        t = self.timing
        if command_type is CommandType.RD:
            request.completion_cycle = self.cycle + t.cl + t.burst_cycles
            self.stats.reads += 1
            self.stats.read_latency_sum += request.completion_cycle - request.arrival_cycle
        else:
            request.completion_cycle = self.cycle + t.cwl + t.burst_cycles
            self.stats.writes += 1
            self.stats.write_latency_sum += request.completion_cycle - request.arrival_cycle
        self._queues[channel].remove(request)
        self.completed.append(request)

    def _emit(self, command: Command, rank: RankState) -> None:
        rank.issue(command)
        self.trace.append(command)
        self.stats.command_counts[command.type] += 1

    # -- time keeping ----------------------------------------------------------------------
    def _advance_to(self, cycle: int) -> None:
        """Move the clock forward, integrating per-rank background-state cycles."""
        if cycle <= self.cycle:
            return
        delta = cycle - self.cycle
        for key, rank in self._ranks.items():
            if rank.open_bank_count > 0:
                self.stats.rank_active_cycles[key] = (
                    self.stats.rank_active_cycles.get(key, 0) + delta)
            else:
                self.stats.rank_precharged_cycles[key] = (
                    self.stats.rank_precharged_cycles.get(key, 0) + delta)
        self.cycle = cycle

    def _drain_tail(self) -> None:
        """Account for the cycles needed to finish the last in-flight data burst."""
        if self.completed:
            last = max(request.completion_cycle or 0 for request in self.completed)
            self._advance_to(max(self.cycle, last))

    def _rank_for(self, request: MemoryRequest) -> RankState:
        coords = request.coordinates
        return self._ranks[(coords.channel, coords.rank)]

    @staticmethod
    def _min_cycle(current: Optional[int], candidate: Optional[int]) -> Optional[int]:
        if candidate is None:
            return current
        if current is None:
            return candidate
        return min(current, candidate)


def run_trace(requests: Iterable[MemoryRequest],
              config: Optional[ControllerConfig] = None) -> ControllerResult:
    """Convenience wrapper: run a request stream through a fresh controller."""
    return MemoryController(config).run(requests)
