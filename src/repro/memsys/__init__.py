"""Cycle-level memory-system substrate (Ramulator / DRAMPower / ZSim stand-ins).

The paper's system-level evaluation (Section 7) is built on a simulation
stack: ZSim provides the cores and cache hierarchy, Ramulator provides the
cycle-level DRAM model whose tRCD the paper reduces, and DRAMPower converts
the resulting command traces into DRAM energy.  :mod:`repro.arch` models those
platforms analytically for the headline figures; this package provides the
cycle-level counterpart used for validation and ablation:

* :mod:`repro.memsys.ddr4`       — JEDEC timing sets in controller cycles;
* :mod:`repro.memsys.request`    — memory requests and address mapping;
* :mod:`repro.memsys.commands`   — the DRAM command vocabulary and traces;
* :mod:`repro.memsys.bank`       — bank/rank state machines enforcing timing;
* :mod:`repro.memsys.scheduler`  — FCFS and FR-FCFS request scheduling;
* :mod:`repro.memsys.controller` — the cycle-level memory controller;
* :mod:`repro.memsys.power`      — command-trace energy (DRAMPower style);
* :mod:`repro.memsys.cache`      — set-associative caches + stream prefetchers;
* :mod:`repro.memsys.tracegen`   — DNN address-trace synthesis.
"""

from repro.memsys.ddr4 import DeviceTiming, SPEED_BINS, speed_bin
from repro.memsys.request import (
    AddressMapper,
    AddressMapperConfig,
    AddressMapping,
    DramCoordinates,
    MemoryRequest,
    RequestType,
)
from repro.memsys.commands import Command, CommandTrace, CommandType
from repro.memsys.bank import BankState, RankState
from repro.memsys.scheduler import SchedulingDecision, SchedulingPolicy, choose, next_command_for
from repro.memsys.controller import (
    ControllerConfig,
    ControllerResult,
    ControllerStats,
    MemoryController,
    run_trace,
)
from repro.memsys.power import CommandEnergyModel, IddCurrents, IDD_SETS, PowerBreakdown
from repro.memsys.cache import (
    Cache,
    CacheConfig,
    CacheHierarchy,
    CacheStats,
    HierarchyResult,
    PAPER_CACHE_CONFIGS,
    StreamPrefetcher,
)
from repro.memsys.tracegen import (
    Access,
    AddressSpaceLayout,
    LayerTrace,
    TensorRegion,
    flatten,
    trace_from_network,
    trace_from_workload,
)

__all__ = [
    "DeviceTiming", "SPEED_BINS", "speed_bin",
    "AddressMapper", "AddressMapperConfig", "AddressMapping", "DramCoordinates",
    "MemoryRequest", "RequestType",
    "Command", "CommandTrace", "CommandType",
    "BankState", "RankState",
    "SchedulingDecision", "SchedulingPolicy", "choose", "next_command_for",
    "ControllerConfig", "ControllerResult", "ControllerStats", "MemoryController", "run_trace",
    "CommandEnergyModel", "IddCurrents", "IDD_SETS", "PowerBreakdown",
    "Cache", "CacheConfig", "CacheHierarchy", "CacheStats", "HierarchyResult",
    "PAPER_CACHE_CONFIGS", "StreamPrefetcher",
    "Access", "AddressSpaceLayout", "LayerTrace", "TensorRegion",
    "flatten", "trace_from_network", "trace_from_workload",
]
