"""Request scheduling policies for the cycle-level memory controller.

Two classic policies are provided:

* **FCFS** — serve requests strictly in arrival order; a stalled head-of-queue
  request blocks everything behind it.
* **FR-FCFS** (first-ready, first-come-first-served) — prefer requests that
  hit the currently open row (they only need a column command), falling back
  to the oldest request otherwise.  This is the policy used by Ramulator's
  default controller and assumed by the paper's CPU configuration.

The scheduler does not mutate any state; it inspects the queue and the rank
state machines and returns a :class:`SchedulingDecision` describing which
command could be issued for which request and when.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.memsys.bank import RankState
from repro.memsys.commands import CommandType
from repro.memsys.request import MemoryRequest, RequestType


class SchedulingPolicy(enum.Enum):
    """Supported request-scheduling policies."""

    FCFS = "fcfs"
    FRFCFS = "frfcfs"

    @classmethod
    def from_name(cls, name: str) -> "SchedulingPolicy":
        try:
            return cls(name.lower())
        except ValueError:
            raise ValueError(
                f"unknown scheduling policy {name!r}; expected one of "
                f"{[p.value for p in cls]}"
            ) from None


@dataclass(frozen=True)
class SchedulingDecision:
    """The next command the channel would like to issue.

    ``earliest_cycle`` is when the command becomes legal; the controller
    issues it immediately if ``earliest_cycle <= now`` and otherwise uses the
    value to fast-forward time.
    """

    request: MemoryRequest
    command_type: CommandType
    earliest_cycle: int
    is_row_hit: bool

    def ready(self, cycle: int) -> bool:
        return self.earliest_cycle <= cycle


def next_command_for(request: MemoryRequest, rank: RankState) -> SchedulingDecision:
    """Work out the next command a request needs given the bank's current state."""
    coords = request.coordinates
    if coords is None:
        raise ValueError("request must have decoded coordinates before scheduling")
    bank = rank.bank_state(coords.flat_bank)
    column_type = CommandType.WR if request.type is RequestType.WRITE else CommandType.RD

    if bank.row_hit(coords.row):
        earliest = rank.earliest(column_type, coords.flat_bank)
        return SchedulingDecision(request, column_type, earliest, is_row_hit=True)
    if bank.is_open:
        earliest = rank.earliest(CommandType.PRE, coords.flat_bank)
        return SchedulingDecision(request, CommandType.PRE, earliest, is_row_hit=False)
    earliest = rank.earliest(CommandType.ACT, coords.flat_bank)
    return SchedulingDecision(request, CommandType.ACT, earliest, is_row_hit=False)


def choose(queue: Sequence[MemoryRequest],
           rank_lookup: Callable[[MemoryRequest], RankState],
           cycle: int,
           policy: SchedulingPolicy) -> Optional[SchedulingDecision]:
    """Pick the best decision for this channel at ``cycle``.

    Returns ``None`` for an empty queue.  If no candidate is ready at
    ``cycle``, the returned decision is the one with the smallest
    ``earliest_cycle`` so the controller can skip idle cycles.
    """
    if not queue:
        return None

    if policy is SchedulingPolicy.FCFS:
        head = queue[0]
        return next_command_for(head, rank_lookup(head))

    decisions: List[SchedulingDecision] = [
        next_command_for(request, rank_lookup(request)) for request in queue
    ]
    ready_hits = [d for d in decisions if d.is_row_hit and d.ready(cycle)]
    if ready_hits:
        return min(ready_hits, key=lambda d: d.request.arrival_cycle)
    ready = [d for d in decisions if d.ready(cycle)]
    if ready:
        return min(ready, key=lambda d: d.request.arrival_cycle)
    return min(decisions, key=lambda d: (d.earliest_cycle, d.request.arrival_cycle))
