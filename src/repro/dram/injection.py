"""Bit-error injection into DNN tensors (the paper's Figure 6 methodology).

The paper integrates its DRAM error models into PyTorch by intercepting the
loading of weights and IFMs, flipping bits according to the model, and then
applying implausible-value correction.  Here the equivalent hook is an object
with an ``apply(array, spec)`` method installed on a
:class:`~repro.nn.network.Network`:

* :class:`BitErrorInjector` — drives injection from a fitted/parametric
  :class:`~repro.dram.error_models.ErrorModel` (EDEN *offloading*: no device
  needed), optionally with different error rates per DNN data type
  (fine-grained mapping) and an optional value corrector applied after the
  flips (implausible-value correction, Section 3.2).
* :class:`DeviceBackedInjector` — reads the tensor's bits directly "from" an
  :class:`~repro.dram.device.ApproximateDram` at a chosen operating point,
  used for the real-device experiments (Figures 7 and 9).

Both understand the numeric precision of the stored tensor: integers are
flipped in their two's-complement codes, FP32 values in their IEEE-754 words.

The hot path is *packed*: error models emit sparse flip positions / packed
XOR masks directly (:meth:`~repro.dram.error_models.ErrorModel.flip_word_mask`,
:meth:`~repro.dram.device.ApproximateDram.read_words`), so no per-bit boolean
arrays are ever materialized.  For a fixed seed the results are bit-exact
with the original boolean expansion, which survives as
:func:`inject_bit_errors_reference` for property tests and benchmarking.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Optional

import numpy as np

from repro.dram.device import ApproximateDram, DramOperatingPoint
from repro.dram.error_models import DramLayout, ErrorModel
from repro.nn.quantization import bits_to_tensor, tensor_to_bits
from repro.nn.tensor import DataKind, TensorSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.ecc import RsCodecModel

#: signature of a post-load value corrector (implausible-value correction).
Corrector = Callable[[np.ndarray, TensorSpec], np.ndarray]


def flip_bits_in_words(words: np.ndarray, bits_per_word: int, flip_mask_bits: np.ndarray
                       ) -> np.ndarray:
    """XOR per-bit flips (flat bit mask, LSB-first within each word) into words."""
    if flip_mask_bits.size != words.size * bits_per_word:
        raise ValueError("flip mask size does not match words * bits_per_word")
    flips = flip_mask_bits.reshape(words.size, bits_per_word)
    if not flips.any():
        return words.copy()
    bit_values = (np.uint64(1) << np.arange(bits_per_word, dtype=np.uint64))
    xor_mask = (flips.astype(np.uint64) * bit_values).sum(axis=1).astype(np.uint64)
    return (words ^ xor_mask).astype(np.uint64)


def inject_bit_errors(values: np.ndarray, bits: int, error_model: ErrorModel,
                      layout: DramLayout, rng: np.random.Generator) -> np.ndarray:
    """Flip bits of ``values`` (stored at ``bits`` precision) per ``error_model``."""
    values = np.asarray(values, dtype=np.float32)
    original_shape = values.shape
    words, codec_state = tensor_to_bits(values.ravel(), bits)
    xor_mask = error_model.flip_word_mask(words, bits, layout, rng)
    corrupted = bits_to_tensor(words ^ xor_mask, bits, codec_state)
    return corrupted.reshape(original_shape)


def inject_bit_errors_reference(values: np.ndarray, bits: int, error_model: ErrorModel,
                                layout: DramLayout, rng: np.random.Generator) -> np.ndarray:
    """The original boolean-expansion injection path (32x memory blowup).

    Kept as the ground truth the packed engine is verified against: for the
    same RNG state, :func:`inject_bit_errors` must return the same corrupted
    tensor and leave ``rng`` in the same state.
    """
    values = np.asarray(values, dtype=np.float32)
    original_shape = values.shape
    flat = values.ravel()
    words, codec_state = tensor_to_bits(flat, bits)
    stored_bits = ((words[:, None] >> np.arange(bits, dtype=np.uint64)) & np.uint64(1)).astype(bool)
    flip_mask = error_model.flip_mask(stored_bits.ravel(), layout, rng)
    corrupted_words = flip_bits_in_words(words, bits, flip_mask)
    corrupted = bits_to_tensor(corrupted_words, bits, codec_state)
    return corrupted.reshape(original_shape)


def _new_stats() -> Dict[str, int]:
    return {"loads": 0, "values_loaded": 0}


def _new_ecc_stats() -> Dict[str, object]:
    return {"codewords": 0, "corrected_codewords": 0, "corrected_symbols": 0,
            "uncorrectable_codewords": 0, "miscorrected_codewords": 0,
            "per_tensor": {}}


def _record_ecc(stats: Dict[str, object], name: str, report) -> None:
    """Fold one tensor's :class:`~repro.core.ecc.EccReport` into injector stats."""
    counts = report.as_dict()
    for key, value in counts.items():
        stats[key] += value
    tensor = stats["per_tensor"].setdefault(
        name, {key: 0 for key in counts})
    for key, value in counts.items():
        tensor[key] += value


def _consume_ecc_delta(stats: Dict[str, object],
                       reported: Dict[str, int]) -> Dict[str, int]:
    """Return corrected/uncorrectable counter deltas since the last consume."""
    corrected = int(stats["corrected_codewords"])
    uncorrectable = int(stats["uncorrectable_codewords"]) + int(
        stats["miscorrected_codewords"])
    delta = {"corrected": corrected - reported["corrected"],
             "uncorrectable": uncorrectable - reported["uncorrectable"]}
    reported["corrected"] = corrected
    reported["uncorrectable"] = uncorrectable
    return delta


class BitErrorInjector:
    """Injects model-driven bit errors into every weight/IFM load.

    Parameters
    ----------
    error_model:
        The default error model applied to every data type.
    bits:
        Storage precision of the tensors in DRAM (4, 8, 16 or 32).
    per_tensor_ber:
        Optional mapping from tensor name to a BER overriding the default
        model's rate for that tensor — this is how fine-grained DNN-to-DRAM
        mapping exposes different partitions' error rates to the DNN.
    corrector:
        Optional implausible-value corrector applied after injection.
    ecc:
        Optional :class:`~repro.core.ecc.RsCodecModel`.  When set, every
        injected load is decoded through the codec before it reaches the
        network: correctable codewords are reverted to the stored bits,
        uncorrectable ones stay corrupted, and per-tensor counts accumulate
        in :attr:`ecc_stats` (drain deltas via :meth:`consume_ecc_stats`).
    data_kinds:
        Optional subset of :class:`~repro.nn.tensor.DataKind` to inject into;
        loads of any other kind pass through untouched.  ``{DataKind.WEIGHT}``
        models a mapping that stores only the weights in approximate DRAM
        while IFMs stay in a reliable partition.  None (the default) injects
        into every load.
    enabled:
        Injection can be toggled without uninstalling the hook (used by the
        curricular retraining ramp when the current error rate is zero).
    """

    def __init__(self, error_model: ErrorModel, bits: int = 32,
                 per_tensor_ber: Optional[Dict[str, float]] = None,
                 corrector: Optional[Corrector] = None,
                 layout: Optional[DramLayout] = None,
                 data_kinds: Optional[Iterable[DataKind]] = None,
                 seed: int = 0, ecc: Optional["RsCodecModel"] = None):
        self.error_model = error_model
        self.bits = int(bits)
        self.per_tensor_ber = dict(per_tensor_ber or {})
        self.corrector = corrector
        self.layout = layout or DramLayout()
        self.data_kinds = frozenset(data_kinds) if data_kinds is not None else None
        self.enabled = True
        self.ecc = ecc
        self.ecc_stats = _new_ecc_stats()
        self._ecc_reported = {"corrected": 0, "uncorrectable": 0}
        self._rng = np.random.default_rng(seed)
        self._model_cache: Dict[float, ErrorModel] = {}
        self.stats = _new_stats()

    # -- configuration -----------------------------------------------------------
    def set_error_model(self, error_model: ErrorModel) -> None:
        self.error_model = error_model
        self._model_cache.clear()

    def set_global_ber(self, ber: float) -> None:
        """Rescale the default model to a new aggregate BER (curricular ramp)."""
        self.set_error_model(self.error_model.with_ber(ber))

    def set_per_tensor_ber(self, per_tensor_ber: Dict[str, float]) -> None:
        """Swap the per-tensor BER overrides (fine-grained sweep).

        The derived-model cache is keyed by BER against the unchanged base
        model, so previously derived models stay valid across assignments.
        """
        self.per_tensor_ber = dict(per_tensor_ber)

    def reseed(self, seed: int) -> None:
        """Restart the injection RNG stream (per-repeat determinism)."""
        self._rng = np.random.default_rng(seed)

    def _model_for(self, spec: TensorSpec) -> ErrorModel:
        ber = self.per_tensor_ber.get(spec.name)
        if ber is None:
            return self.error_model
        cached = self._model_cache.get(ber)
        if cached is None:
            cached = self.error_model.with_ber(ber)
            self._model_cache[ber] = cached
        return cached

    # -- Network hook ---------------------------------------------------------------
    def apply(self, array: np.ndarray, spec: TensorSpec) -> np.ndarray:
        self.stats["loads"] += 1
        self.stats["values_loaded"] += int(np.asarray(array).size)
        if not self.enabled:
            return array
        if self.data_kinds is not None and spec.kind not in self.data_kinds:
            return array
        model = self._model_for(spec)
        if model.expected_ber() <= 0.0:
            out = array
        elif self.ecc is not None:
            values = np.asarray(array, dtype=np.float32)
            words, codec_state = tensor_to_bits(values.ravel(), self.bits)
            xor_mask = model.flip_word_mask(words, self.bits, self.layout, self._rng)
            corrected, report = self.ecc.correct_words(
                words, words ^ xor_mask, self.bits,
                key=zlib.crc32(spec.name.encode()))
            _record_ecc(self.ecc_stats, spec.name, report)
            out = bits_to_tensor(corrected, self.bits, codec_state).reshape(values.shape)
        else:
            out = inject_bit_errors(array, self.bits, model, self.layout, self._rng)
        if self.corrector is not None:
            out = self.corrector(out, spec)
        return out

    def consume_ecc_stats(self) -> Dict[str, int]:
        """Return corrected/uncorrectable deltas since the last call.

        Telemetry harvesters call this on every snapshot; the delta contract
        means repeated snapshots never double-count a codeword.
        """
        return _consume_ecc_delta(self.ecc_stats, self._ecc_reported)


class DeviceBackedInjector:
    """Injects bit errors by "reading" tensors from an approximate DRAM device.

    Each tensor is assigned a stable base address in the device (tensors are
    packed sequentially from the start of a bank), so its elements always map
    to the same cells: the same weak cells corrupt the same tensor elements
    across inference runs, matching real-device behaviour.  An optional
    ``ecc`` codec decodes every read like
    :class:`BitErrorInjector`'s, with the same :attr:`ecc_stats` accounting.
    """

    def __init__(self, device: ApproximateDram, op_point: DramOperatingPoint,
                 bits: int = 32, corrector: Optional[Corrector] = None,
                 bank: int = 0, seed: int = 0,
                 ecc: Optional["RsCodecModel"] = None):
        self.device = device
        self.op_point = op_point
        self.bits = int(bits)
        self.corrector = corrector
        self.bank = int(bank)
        self.enabled = True
        self.ecc = ecc
        self.ecc_stats = _new_ecc_stats()
        self._ecc_reported = {"corrected": 0, "uncorrectable": 0}
        self._rng = np.random.default_rng(seed)
        self._addresses: Dict[str, int] = {}
        self._next_bit = bank * device.geometry.bank_size_bytes * 8
        self.stats = _new_stats()

    def set_operating_point(self, op_point: DramOperatingPoint) -> None:
        self.op_point = op_point

    def reseed(self, seed: int) -> None:
        """Restart the injection RNG stream (per-repeat determinism)."""
        self._rng = np.random.default_rng(seed)

    def _address_of(self, spec: TensorSpec) -> int:
        address = self._addresses.get(spec.name)
        if address is None:
            size_bits = spec.num_elements * self.bits
            capacity = self.device.geometry.capacity_bits
            if self._next_bit + size_bits > capacity:
                # Wrap around (the synthetic tensors are far smaller than the
                # module; wrapping only matters for pathological configs).
                self._next_bit = 0
            address = self._next_bit
            self._addresses[spec.name] = address
            self._next_bit += size_bits
        return address

    def apply(self, array: np.ndarray, spec: TensorSpec) -> np.ndarray:
        self.stats["loads"] += 1
        self.stats["values_loaded"] += int(np.asarray(array).size)
        if not self.enabled:
            return array
        values = np.asarray(array, dtype=np.float32)
        words, codec_state = tensor_to_bits(values.ravel(), self.bits)
        address = self._address_of(spec)
        read_back = self.device.read_words(words, self.bits, address, self.op_point,
                                           rng=self._rng)
        if self.ecc is not None:
            read_back, report = self.ecc.correct_words(
                words, read_back, self.bits, key=zlib.crc32(spec.name.encode()))
            _record_ecc(self.ecc_stats, spec.name, report)
        out = bits_to_tensor(read_back, self.bits, codec_state).reshape(values.shape)
        if self.corrector is not None:
            out = self.corrector(out, spec)
        return out

    def consume_ecc_stats(self) -> Dict[str, int]:
        """Return corrected/uncorrectable deltas since the last call.

        Same delta contract as
        :meth:`BitErrorInjector.consume_ecc_stats`: repeated telemetry
        snapshots never double-count a codeword.
        """
        return _consume_ecc_delta(self.ecc_stats, self._ecc_reported)
