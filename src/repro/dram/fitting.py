"""Fitting EDEN's error models to profiling data and selecting the best one.

The paper applies maximum likelihood estimation to decide (1) the parameters
of each of the four error models and (2) which model most plausibly produced
the flips observed on the real chip, preferring Error Model 0 when two models
explain the data comparably well because software injection with the uniform
model is ~1.3x faster (Section 4, "Model Selection").

This module follows the same recipe against :class:`ProfileResult` data from
the simulated device: moment-based parameter estimation per model, a binomial
log-likelihood for scoring, and a selection rule with the Model-0 preference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.dram.error_models import (
    BitlineErrorModel,
    DataDependentErrorModel,
    DramLayout,
    ErrorModel,
    UniformErrorModel,
    WordlineErrorModel,
)
from repro.dram.profiler import ProfileResult

#: relative log-likelihood slack within which Model 0 is preferred (the paper
#: favors Model 0 when two models explain the observations comparably well).
MODEL0_PREFERENCE_TOLERANCE = 0.05


@dataclass
class FittedModel:
    """One fitted error model together with its goodness of fit."""

    model: ErrorModel
    log_likelihood: float

    @property
    def model_id(self) -> int:
        return self.model.model_id


def _weak_cell_stats(profile: ProfileResult):
    """Return (weak_mask, per-bit accesses, per-bit flips) pooled over patterns."""
    flips = profile.combined_flip_counts()
    accesses = profile.total_accesses_per_bit
    weak = flips > 0
    return weak, accesses, flips


def fit_uniform(profile: ProfileResult, seed: int = 0) -> UniformErrorModel:
    """Error Model 0: P = observed weak-cell fraction, F = flip rate of weak cells."""
    weak, accesses, flips = _weak_cell_stats(profile)
    num_bits = flips.size
    weak_count = int(weak.sum())
    if weak_count == 0:
        return UniformErrorModel(0.0, 0.0, seed=seed)
    weak_fraction = weak_count / num_bits
    failure = float(flips[weak].sum() / (weak_count * accesses))
    return UniformErrorModel(weak_fraction, failure, seed=seed)


def fit_bitline(profile: ProfileResult, seed: int = 0) -> BitlineErrorModel:
    """Error Model 1: split bitlines into weak/normal groups by flip rate.

    A bitline is only classified as weak if it both fails at more than twice
    the mean rate *and* fails in at least two distinct rows — an isolated weak
    cell should not masquerade as a weak bitline (that distinction is exactly
    what makes Error Model 0 "a reasonable approximation of Error Model 1"
    in the paper's selection rule).
    """
    rates = profile.per_bitline_flip_rate()
    uniform = fit_uniform(profile, seed=seed)
    if rates.max() <= 0:
        return BitlineErrorModel(0.0, 0.0, 0.0, 0.0, seed=seed)
    mean_rate = rates.mean()
    row_support = profile.per_bitline_row_support()
    weak_bitlines = (rates > 2.0 * mean_rate) & (row_support >= 2)
    weak_fraction = float(weak_bitlines.mean())
    failure = max(uniform.failure_probability, 1e-6)
    if weak_fraction in (0.0, 1.0):
        # No detectable bitline structure: degenerate to near-uniform.
        p = float(rates.mean() / failure)
        return BitlineErrorModel(0.5, min(1.0, p), min(1.0, p), failure, seed=seed)
    p_weak = float(np.clip(rates[weak_bitlines].mean() / failure, 0.0, 1.0))
    p_normal = float(np.clip(rates[~weak_bitlines].mean() / failure, 0.0, 1.0))
    return BitlineErrorModel(weak_fraction, p_weak, p_normal, failure, seed=seed)


def fit_wordline(profile: ProfileResult, seed: int = 0) -> WordlineErrorModel:
    """Error Model 2: split wordlines into weak/normal groups by flip rate."""
    rates = profile.per_wordline_flip_rate()
    uniform = fit_uniform(profile, seed=seed)
    if rates.max() <= 0:
        return WordlineErrorModel(0.0, 0.0, 0.0, 0.0, seed=seed)
    mean_rate = rates.mean()
    weak_wordlines = rates > 2.0 * mean_rate
    weak_fraction = float(weak_wordlines.mean())
    failure = max(uniform.failure_probability, 1e-6)
    if weak_fraction in (0.0, 1.0):
        p = float(rates.mean() / failure)
        return WordlineErrorModel(0.5, min(1.0, p), min(1.0, p), failure, seed=seed)
    p_weak = float(np.clip(rates[weak_wordlines].mean() / failure, 0.0, 1.0))
    p_normal = float(np.clip(rates[~weak_wordlines].mean() / failure, 0.0, 1.0))
    return WordlineErrorModel(weak_fraction, p_weak, p_normal, failure, seed=seed)


def fit_data_dependent(profile: ProfileResult, seed: int = 0) -> DataDependentErrorModel:
    """Error Model 3: separate failure probabilities for stored 1s and 0s."""
    weak, accesses, flips = _weak_cell_stats(profile)
    num_bits = flips.size
    weak_count = int(weak.sum())
    if weak_count == 0:
        return DataDependentErrorModel(0.0, 0.0, 0.0, seed=seed)
    weak_fraction = weak_count / num_bits

    one_flips = one_accesses = 0
    zero_flips = zero_accesses = 0
    for obs in profile.observations:
        ones = obs.stored_bits & weak
        zeros = (~obs.stored_bits) & weak
        one_flips += int(obs.flip_counts[ones].sum())
        one_accesses += int(ones.sum()) * obs.trials
        zero_flips += int(obs.flip_counts[zeros].sum())
        zero_accesses += int(zeros.sum()) * obs.trials
    fv1 = one_flips / one_accesses if one_accesses else 0.0
    fv0 = zero_flips / zero_accesses if zero_accesses else 0.0
    return DataDependentErrorModel(weak_fraction, fv1, fv0, seed=seed)


def _expected_flip_probability(model: ErrorModel, profile: ProfileResult,
                               obs_index: int) -> np.ndarray:
    """Per-bit expected flip probability of ``obs`` under ``model``.

    The fitted models carry synthetic weak-cell positions (they only need to
    be statistically representative for injection), so for likelihood scoring
    we align each model's *structural* parameters with the device's observed
    structure: Model 1's weak/normal bitline probabilities are applied to the
    bitlines the profile actually shows as weak, Model 2 likewise for
    wordlines, and Model 3 conditions on the stored value.  Model 0 predicts a
    flat rate.  Each model therefore has only its few fitted parameters to
    explain the data with, and the best-scoring model is the one whose
    structure matches the device.
    """
    obs = profile.observations[obs_index]
    stored = obs.stored_bits
    num_bits = stored.size
    if isinstance(model, DataDependentErrorModel):
        ber_one = model.weak_cell_fraction * model.failure_probability_one
        ber_zero = model.weak_cell_fraction * model.failure_probability_zero
        return np.where(stored, ber_one, ber_zero)
    if isinstance(model, BitlineErrorModel):
        rates = profile.per_bitline_flip_rate()
        if rates.max() > 0:
            weak_bitlines = (rates > 2.0 * rates.mean()) & (profile.per_bitline_row_support() >= 2)
        else:
            weak_bitlines = np.zeros_like(rates, bool)
        bitline_of_bit = np.arange(num_bits) % profile.row_size_bits
        is_weak = weak_bitlines[bitline_of_bit]
        p_weak = model.weak_cell_fraction_on_weak * model.failure_probability
        p_normal = model.weak_cell_fraction_on_normal * model.failure_probability
        return np.where(is_weak, p_weak, p_normal)
    if isinstance(model, WordlineErrorModel):
        rates = profile.per_wordline_flip_rate()
        weak_wordlines = rates > 2.0 * rates.mean() if rates.max() > 0 else np.zeros_like(rates, bool)
        wordline_of_bit = np.minimum(
            np.arange(num_bits) // profile.row_size_bits, len(rates) - 1
        )
        is_weak = weak_wordlines[wordline_of_bit]
        p_weak = model.weak_cell_fraction_on_weak * model.failure_probability
        p_normal = model.weak_cell_fraction_on_normal * model.failure_probability
        return np.where(is_weak, p_weak, p_normal)
    # Error Model 0 (and any other): flat expected rate.
    return np.full(num_bits, model.expected_ber(), dtype=np.float64)


def log_likelihood(model: ErrorModel, profile: ProfileResult,
                   epsilon: float = 1e-9) -> float:
    """Mean per-access binomial log-likelihood of the profile under ``model``."""
    total = 0.0
    count = 0
    for obs_index, obs in enumerate(profile.observations):
        expected = _expected_flip_probability(model, profile, obs_index)
        p = np.clip(expected, epsilon, 1.0 - epsilon)
        k = obs.flip_counts
        n = obs.trials
        total += float(np.sum(k * np.log(p) + (n - k) * np.log1p(-p)))
        count += obs.stored_bits.size * n
    return total / max(count, 1)


def fit_error_models(profile: ProfileResult, seed: int = 0) -> List[FittedModel]:
    """Fit all four error models to a profile and score each with the likelihood."""
    models: List[ErrorModel] = [
        fit_uniform(profile, seed=seed),
        fit_bitline(profile, seed=seed),
        fit_wordline(profile, seed=seed),
        fit_data_dependent(profile, seed=seed),
    ]
    return [FittedModel(model, log_likelihood(model, profile)) for model in models]


def select_error_model(profile: ProfileResult, seed: int = 0,
                       tolerance: float = MODEL0_PREFERENCE_TOLERANCE
                       ) -> FittedModel:
    """Pick the best-fitting model, preferring Error Model 0 on near ties.

    ``tolerance`` is the relative log-likelihood slack (paper: when two models
    have very similar probability of producing the observed errors, choose
    Error Model 0 because software injection with it is fastest).
    """
    fitted = fit_error_models(profile, seed=seed)
    best = max(fitted, key=lambda fm: fm.log_likelihood)
    model0 = next(fm for fm in fitted if fm.model_id == 0)
    slack = abs(best.log_likelihood) * tolerance
    if best.model_id != 0 and (best.log_likelihood - model0.log_likelihood) <= slack:
        return model0
    return best
