"""DRAM supply voltage domain and the power impact of reducing it.

The paper's real-device experiments treat 1.35 V as the nominal supply
voltage (Table 3, Figure 9) and reduce it in steps; DRAM power is
proportional to VDD^2 * f (Section 2.3), so the dynamic-energy scaling factor
of a reduced-voltage operating point is (V / V_nominal)^2.
"""

from __future__ import annotations

from dataclasses import dataclass

#: nominal supply voltage used throughout the paper's characterization.
NOMINAL_VDD = 1.35

#: the lowest voltage the paper's characterization sweeps reach (Figure 5).
MIN_OPERATING_VDD = 1.00


@dataclass(frozen=True)
class VoltageDomain:
    """One DRAM supply-voltage operating point."""

    vdd: float = NOMINAL_VDD
    nominal_vdd: float = NOMINAL_VDD

    def __post_init__(self) -> None:
        if self.vdd <= 0 or self.nominal_vdd <= 0:
            raise ValueError("voltages must be positive")
        if self.vdd > self.nominal_vdd + 1e-9:
            raise ValueError(
                f"operating voltage {self.vdd} V above nominal {self.nominal_vdd} V"
            )

    @property
    def reduction_volts(self) -> float:
        """How far below nominal this operating point sits (>= 0)."""
        return self.nominal_vdd - self.vdd

    @property
    def reduction_fraction(self) -> float:
        return self.reduction_volts / self.nominal_vdd

    @property
    def dynamic_energy_scale(self) -> float:
        """Dynamic energy scales with VDD^2 (paper Section 2.3)."""
        return (self.vdd / self.nominal_vdd) ** 2

    @property
    def static_power_scale(self) -> float:
        """Background/leakage power scales roughly linearly with VDD."""
        return self.vdd / self.nominal_vdd

    def reduced_by(self, delta_volts: float) -> "VoltageDomain":
        if delta_volts < 0:
            raise ValueError("voltage reduction must be non-negative")
        new_vdd = self.vdd - delta_volts
        if new_vdd < MIN_OPERATING_VDD - 1e-9:
            raise ValueError(
                f"voltage reduction of {delta_volts} V drops below the minimum "
                f"operating voltage {MIN_OPERATING_VDD} V"
            )
        return VoltageDomain(vdd=new_vdd, nominal_vdd=self.nominal_vdd)


def voltage_sweep(start: float = NOMINAL_VDD, stop: float = MIN_OPERATING_VDD,
                  step: float = 0.05):
    """Descending list of voltages from ``start`` down to ``stop`` inclusive."""
    if step <= 0:
        raise ValueError("step must be positive")
    voltages = []
    v = start
    while v >= stop - 1e-9:
        voltages.append(round(v, 4))
        v -= step
    return voltages
