"""DRAM timing parameters and their reduction (paper Sections 2.2-2.3).

The paper reduces the activation latency tRCD (and, for the real-device
experiments, tRP) below the DDR4 datasheet values; CL is fixed by the device
and not adjustable from the memory controller (Figure 3 caption).  Nominal
DDR4 values come from the JEDEC DDR4 datasheet numbers quoted in the paper:
tRCD = 12.5 ns, tRAS = 32 ns, tRP = 12.5 ns, CL = 12.5 ns.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class TimingParameters:
    """One set of DRAM timing parameters, in nanoseconds."""

    trcd_ns: float = 12.5
    tras_ns: float = 32.0
    trp_ns: float = 12.5
    cl_ns: float = 12.5

    def __post_init__(self) -> None:
        for name in ("trcd_ns", "tras_ns", "trp_ns", "cl_ns"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def row_cycle_ns(self) -> float:
        """tRC: minimum time between activations of different rows (tRAS + tRP)."""
        return self.tras_ns + self.trp_ns

    @property
    def row_miss_latency_ns(self) -> float:
        """Latency of an access that must activate a new row: tRCD + CL."""
        return self.trcd_ns + self.cl_ns

    @property
    def row_hit_latency_ns(self) -> float:
        """Latency of an access that hits the open row: CL only."""
        return self.cl_ns

    def with_reduced_trcd(self, delta_ns: float) -> "TimingParameters":
        """Return a copy with tRCD reduced by ``delta_ns`` (delta must be >= 0)."""
        if delta_ns < 0:
            raise ValueError("tRCD reduction must be non-negative")
        new_trcd = self.trcd_ns - delta_ns
        if new_trcd <= 0:
            raise ValueError(
                f"tRCD reduction of {delta_ns} ns leaves a non-positive tRCD "
                f"(nominal {self.trcd_ns} ns)"
            )
        return replace(self, trcd_ns=new_trcd)

    def with_reduced_trp(self, delta_ns: float) -> "TimingParameters":
        if delta_ns < 0:
            raise ValueError("tRP reduction must be non-negative")
        new_trp = self.trp_ns - delta_ns
        if new_trp <= 0:
            raise ValueError("tRP reduction leaves a non-positive tRP")
        return replace(self, trp_ns=new_trp)

    def scaled(self, trcd_ns: float = None, trp_ns: float = None,
               tras_ns: float = None) -> "TimingParameters":
        """Return a copy with the given absolute parameter values."""
        kwargs = {}
        if trcd_ns is not None:
            kwargs["trcd_ns"] = trcd_ns
        if trp_ns is not None:
            kwargs["trp_ns"] = trp_ns
        if tras_ns is not None:
            kwargs["tras_ns"] = tras_ns
        return replace(self, **kwargs)

    def trcd_reduction_vs(self, nominal: "TimingParameters") -> float:
        """How many nanoseconds of tRCD were shaved relative to ``nominal``."""
        return nominal.trcd_ns - self.trcd_ns


#: JEDEC DDR4 nominal timings quoted by the paper (Section 2.2).
NOMINAL_DDR4_TIMING = TimingParameters()

#: LPDDR3 nominal timings used for the accelerator evaluation (Section 7.2).
NOMINAL_LPDDR3_TIMING = TimingParameters(trcd_ns=18.0, tras_ns=42.0, trp_ns=18.0, cl_ns=15.0)
