"""Command-level SoftMC host interface (paper Section 6.1).

The paper's real-device experiments run on an FPGA executing SoftMC programs:
explicit sequences of DRAM commands (ACT, WR, RD, PRE) whose inter-command
delays the experimenter controls, which is how tRCD is pushed below the
datasheet value on real chips.  :class:`SoftMCHost` provides the same
programming model against the behavioural :class:`ApproximateDram`:

* a :class:`SoftMCProgram` is an ordered list of instructions with explicit
  ``WAIT`` delays between them;
* the host derives the *effective* tRCD from the delay the program leaves
  between an ACT and the first column command to that row, so shaving WAIT
  cycles is exactly how a program reduces latency;
* row contents are tracked host-side (the device model is content-agnostic),
  and every READ applies the device's bit-flip behaviour at the effective
  operating point.

On top of the raw interface, :func:`characterize_inverted_rows` reproduces the
paper's characterization methodology ("we iteratively test two consecutive
rows at a time [and] populate these rows with inverted data patterns for the
worst-case evaluation", Section 3.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dram.device import ApproximateDram, DramOperatingPoint
from repro.dram.profiler import DEFAULT_PATTERNS, pattern_bits

#: SoftMC's DDR3/DDR4 command bus period in nanoseconds (one command slot).
BUS_CLOCK_NS = 1.25


class Opcode(enum.Enum):
    """Instruction set of the (simplified) SoftMC host."""

    ACT = "act"
    WRITE_ROW = "write_row"
    READ_ROW = "read_row"
    PRE = "pre"
    WAIT = "wait"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Instruction:
    """One SoftMC instruction.

    ``bank``/``row`` address the target row; ``cycles`` is only meaningful for
    WAIT; ``pattern`` (a repeating byte) is only meaningful for WRITE_ROW.
    """

    opcode: Opcode
    bank: int = 0
    row: int = 0
    cycles: int = 0
    pattern: int = 0x00

    def __post_init__(self) -> None:
        if self.bank < 0 or self.row < 0:
            raise ValueError("bank and row must be non-negative")
        if self.opcode is Opcode.WAIT and self.cycles <= 0:
            raise ValueError("WAIT must specify a positive cycle count")
        if not 0 <= self.pattern <= 0xFF:
            raise ValueError("pattern must be a byte value")


def act(bank: int, row: int) -> Instruction:
    return Instruction(Opcode.ACT, bank=bank, row=row)


def write_row(bank: int, row: int, pattern: int) -> Instruction:
    return Instruction(Opcode.WRITE_ROW, bank=bank, row=row, pattern=pattern)


def read_row(bank: int, row: int) -> Instruction:
    return Instruction(Opcode.READ_ROW, bank=bank, row=row)


def pre(bank: int) -> Instruction:
    return Instruction(Opcode.PRE, bank=bank)


def wait(cycles: int) -> Instruction:
    return Instruction(Opcode.WAIT, cycles=cycles)


@dataclass
class SoftMCProgram:
    """An ordered instruction sequence to be executed by the host."""

    instructions: List[Instruction] = field(default_factory=list)

    def append(self, instruction: Instruction) -> "SoftMCProgram":
        self.instructions.append(instruction)
        return self

    def extend(self, instructions: Sequence[Instruction]) -> "SoftMCProgram":
        self.instructions.extend(instructions)
        return self

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def validate(self) -> None:
        """Static checks: column commands must target an activated row."""
        open_rows: Dict[int, int] = {}
        for index, instruction in enumerate(self.instructions):
            if instruction.opcode is Opcode.ACT:
                if instruction.bank in open_rows:
                    raise ValueError(
                        f"instruction {index}: ACT to bank {instruction.bank} "
                        "while another row is open (missing PRE)")
                open_rows[instruction.bank] = instruction.row
            elif instruction.opcode is Opcode.READ_ROW:
                if open_rows.get(instruction.bank) != instruction.row:
                    raise ValueError(
                        f"instruction {index}: READ of bank {instruction.bank} row "
                        f"{instruction.row} without a matching ACT")
            elif instruction.opcode is Opcode.PRE:
                open_rows.pop(instruction.bank, None)


@dataclass
class ReadResult:
    """Data returned by one READ_ROW instruction."""

    bank: int
    row: int
    effective_trcd_ns: float
    stored_bits: np.ndarray
    read_bits: np.ndarray

    @property
    def flips(self) -> np.ndarray:
        return np.logical_xor(self.stored_bits, self.read_bits)

    @property
    def num_flips(self) -> int:
        return int(self.flips.sum())

    @property
    def ber(self) -> float:
        return self.num_flips / self.stored_bits.size


class SoftMCHost:
    """Executes SoftMC programs against a behavioural approximate DRAM device."""

    def __init__(self, device: ApproximateDram, vdd: Optional[float] = None,
                 bus_clock_ns: float = BUS_CLOCK_NS, seed: int = 0):
        if bus_clock_ns <= 0:
            raise ValueError("bus_clock_ns must be positive")
        self.device = device
        self.vdd = device.nominal_vdd if vdd is None else float(vdd)
        self.bus_clock_ns = float(bus_clock_ns)
        self.seed = int(seed)
        # Host-side copy of row contents, keyed by (bank, row).
        self._row_contents: Dict[Tuple[int, int], np.ndarray] = {}
        self._executions = 0

    # -- address helpers ---------------------------------------------------------------
    def _row_start_bit(self, bank: int, row: int) -> int:
        geometry = self.device.geometry
        if not 0 <= bank < geometry.num_banks:
            raise ValueError(f"bank {bank} out of range")
        if not 0 <= row < geometry.rows_per_bank:
            raise ValueError(f"row {row} out of range")
        return (bank * geometry.bank_size_bytes + row * geometry.row_size_bytes) * 8

    def stored_row(self, bank: int, row: int) -> Optional[np.ndarray]:
        return self._row_contents.get((bank, row))

    # -- execution ----------------------------------------------------------------------
    def execute(self, program: SoftMCProgram) -> List[ReadResult]:
        """Run a program; returns one :class:`ReadResult` per READ_ROW."""
        program.validate()
        geometry = self.device.geometry
        nominal_trcd = self.device.nominal_timing.trcd_ns
        results: List[ReadResult] = []
        open_since: Dict[int, float] = {}      # bank -> cycle of last ACT
        open_row: Dict[int, int] = {}
        now = 0.0
        self._executions += 1

        for instruction in program:
            if instruction.opcode is Opcode.WAIT:
                now += instruction.cycles
            elif instruction.opcode is Opcode.ACT:
                open_since[instruction.bank] = now
                open_row[instruction.bank] = instruction.row
                now += 1
            elif instruction.opcode is Opcode.PRE:
                open_since.pop(instruction.bank, None)
                open_row.pop(instruction.bank, None)
                now += 1
            elif instruction.opcode is Opcode.WRITE_ROW:
                bits = pattern_bits(instruction.pattern, geometry.row_size_bits)
                self._row_contents[(instruction.bank, instruction.row)] = bits
                now += geometry.row_size_bits / 512        # burst slots, coarse
            elif instruction.opcode is Opcode.READ_ROW:
                bank, row = instruction.bank, instruction.row
                stored = self._row_contents.get((bank, row))
                if stored is None:
                    raise ValueError(f"READ of bank {bank} row {row} before any WRITE_ROW")
                elapsed_ns = (now - open_since[bank]) * self.bus_clock_ns
                effective_trcd = min(nominal_trcd, max(elapsed_ns, 0.5))
                op_point = DramOperatingPoint.from_reductions(
                    delta_vdd=self.device.nominal_vdd - self.vdd,
                    delta_trcd_ns=nominal_trcd - effective_trcd,
                    nominal_vdd=self.device.nominal_vdd,
                    nominal_timing=self.device.nominal_timing,
                )
                rng = np.random.default_rng(
                    self.seed * 7_919 + self._executions * 104_729 + bank * 131 + row)
                read = self.device.read_bits(stored, self._row_start_bit(bank, row),
                                             op_point, rng=rng)
                results.append(ReadResult(bank=bank, row=row,
                                          effective_trcd_ns=effective_trcd,
                                          stored_bits=stored, read_bits=read))
                now += geometry.row_size_bits / 512
            else:  # pragma: no cover - exhaustive enum
                raise ValueError(f"unknown opcode {instruction.opcode}")
        return results


def build_reduced_trcd_program(bank: int, rows: Sequence[int], pattern: int,
                               trcd_cycles: int) -> SoftMCProgram:
    """A program that writes ``pattern`` into rows and reads them back at a
    reduced activation latency of ``trcd_cycles`` bus cycles."""
    if trcd_cycles <= 0:
        raise ValueError("trcd_cycles must be positive")
    program = SoftMCProgram()
    for row in rows:
        program.append(write_row(bank, row, pattern))
    for row in rows:
        program.append(act(bank, row))
        program.append(wait(trcd_cycles))
        program.append(read_row(bank, row))
        program.append(pre(bank))
    return program


def characterize_inverted_rows(device: ApproximateDram, vdd: float, trcd_ns: float,
                               bank: int = 0, row_pairs: int = 2,
                               patterns: Sequence[int] = DEFAULT_PATTERNS,
                               seed: int = 0) -> Dict[int, float]:
    """Paper-style worst-case characterization: consecutive rows hold inverted
    patterns and are read back with reduced parameters.

    Returns the measured BER per data pattern (keyed by the pattern byte).
    """
    if row_pairs <= 0:
        raise ValueError("row_pairs must be positive")
    host = SoftMCHost(device, vdd=vdd, seed=seed)
    trcd_cycles = max(1, int(round(trcd_ns / host.bus_clock_ns)))
    bers: Dict[int, float] = {}
    for pattern in patterns:
        inverted = (~np.uint8(pattern)) & 0xFF
        program = SoftMCProgram()
        for pair in range(row_pairs):
            base_row = 2 * pair
            program.append(write_row(bank, base_row, pattern))
            program.append(write_row(bank, base_row + 1, int(inverted)))
        for row in range(2 * row_pairs):
            program.append(act(bank, row))
            program.append(wait(trcd_cycles))
            program.append(read_row(bank, row))
            program.append(pre(bank))
        results = host.execute(program)
        total_bits = sum(r.stored_bits.size for r in results)
        total_flips = sum(r.num_flips for r in results)
        bers[pattern] = total_flips / total_bits if total_bits else 0.0
    return bers
