"""DRAMPower-style energy model (paper Section 7: DRAM energy evaluation).

The paper feeds memory traces from ZSim/GPGPU-Sim/SCALE-Sim into DRAMPower to
estimate DRAM energy, then reports the reduction EDEN achieves by lowering the
supply voltage.  This model computes the same quantity analytically from a
:class:`TrafficProfile` (row activations, column reads/writes, refresh and
background time):

* per-operation energies come from DDR4/LPDDR3/GDDR5 datasheet-style IDD
  figures collapsed into energy-per-operation constants;
* dynamic energy scales with ``(VDD / VDD_nominal)^2`` and background energy
  with ``VDD / VDD_nominal`` (paper Section 2.3);
* reduced tRCD shortens the time a bank spends activating, which the CPU/GPU
  models translate into execution-time (and therefore background-energy)
  savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.dram.voltage import NOMINAL_VDD, VoltageDomain


@dataclass(frozen=True)
class DramEnergyParameters:
    """Per-operation energies (nanojoules) and background power (milliwatts)."""

    name: str = "DDR4-2400"
    activate_precharge_nj: float = 18.0     # one ACT+PRE pair for an 8KB row
    read_per_64B_nj: float = 4.2            # column read burst of one cache line
    write_per_64B_nj: float = 4.6
    refresh_per_ms_nj: float = 2200.0       # auto-refresh energy per millisecond
    background_mw: float = 110.0            # standby/background power
    io_per_64B_nj: float = 1.4              # bus/IO termination energy

    def scaled_for_voltage(self, voltage: VoltageDomain) -> "DramEnergyParameters":
        dynamic = voltage.dynamic_energy_scale
        static = voltage.static_power_scale
        return DramEnergyParameters(
            name=self.name,
            activate_precharge_nj=self.activate_precharge_nj * dynamic,
            read_per_64B_nj=self.read_per_64B_nj * dynamic,
            write_per_64B_nj=self.write_per_64B_nj * dynamic,
            refresh_per_ms_nj=self.refresh_per_ms_nj * dynamic,
            background_mw=self.background_mw * static,
            io_per_64B_nj=self.io_per_64B_nj,  # IO termination does not scale with core VDD
        )


#: parameter sets for the memory types used across the paper's platforms.
ENERGY_PARAMETER_SETS: Dict[str, DramEnergyParameters] = {
    "DDR4-2400": DramEnergyParameters(),
    "DDR4-2133": DramEnergyParameters(
        name="DDR4-2133", activate_precharge_nj=18.5, read_per_64B_nj=4.4,
        write_per_64B_nj=4.8, refresh_per_ms_nj=2300.0, background_mw=105.0,
    ),
    "LPDDR3-1600": DramEnergyParameters(
        name="LPDDR3-1600", activate_precharge_nj=9.5, read_per_64B_nj=2.6,
        write_per_64B_nj=2.9, refresh_per_ms_nj=900.0, background_mw=35.0,
        io_per_64B_nj=0.8,
    ),
    "GDDR5": DramEnergyParameters(
        name="GDDR5", activate_precharge_nj=22.0, read_per_64B_nj=6.5,
        write_per_64B_nj=7.0, refresh_per_ms_nj=3100.0, background_mw=320.0,
        io_per_64B_nj=2.4,
    ),
}


@dataclass
class TrafficProfile:
    """DRAM traffic of one workload execution."""

    reads_bytes: float = 0.0
    writes_bytes: float = 0.0
    row_activations: float = 0.0
    execution_time_ms: float = 0.0

    def __post_init__(self) -> None:
        for name in ("reads_bytes", "writes_bytes", "row_activations", "execution_time_ms"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def read_lines(self) -> float:
        return self.reads_bytes / 64.0

    @property
    def write_lines(self) -> float:
        return self.writes_bytes / 64.0

    @property
    def total_bytes(self) -> float:
        return self.reads_bytes + self.writes_bytes

    def scaled_time(self, factor: float) -> "TrafficProfile":
        """Same traffic with execution time scaled (e.g. after a speedup)."""
        return TrafficProfile(
            reads_bytes=self.reads_bytes,
            writes_bytes=self.writes_bytes,
            row_activations=self.row_activations,
            execution_time_ms=self.execution_time_ms * factor,
        )


@dataclass
class EnergyBreakdown:
    """DRAM energy of one execution, split by component (nanojoules)."""

    activate_nj: float
    read_nj: float
    write_nj: float
    io_nj: float
    refresh_nj: float
    background_nj: float

    @property
    def dynamic_nj(self) -> float:
        return self.activate_nj + self.read_nj + self.write_nj + self.io_nj

    @property
    def static_nj(self) -> float:
        return self.refresh_nj + self.background_nj

    @property
    def total_nj(self) -> float:
        return self.dynamic_nj + self.static_nj

    @property
    def total_mj(self) -> float:
        return self.total_nj * 1e-6


class DramEnergyModel:
    """Computes DRAM energy for a traffic profile at a voltage operating point."""

    def __init__(self, memory_type: str = "DDR4-2400", nominal_vdd: float = NOMINAL_VDD):
        if memory_type not in ENERGY_PARAMETER_SETS:
            raise KeyError(
                f"unknown memory type {memory_type!r}; expected one of "
                f"{sorted(ENERGY_PARAMETER_SETS)}"
            )
        self.memory_type = memory_type
        self.base_parameters = ENERGY_PARAMETER_SETS[memory_type]
        self.nominal_vdd = float(nominal_vdd)

    def energy(self, traffic: TrafficProfile,
               voltage: VoltageDomain = None) -> EnergyBreakdown:
        voltage = voltage or VoltageDomain(vdd=self.nominal_vdd, nominal_vdd=self.nominal_vdd)
        params = self.base_parameters.scaled_for_voltage(voltage)
        return EnergyBreakdown(
            activate_nj=traffic.row_activations * params.activate_precharge_nj,
            read_nj=traffic.read_lines * params.read_per_64B_nj,
            write_nj=traffic.write_lines * params.write_per_64B_nj,
            io_nj=(traffic.read_lines + traffic.write_lines) * params.io_per_64B_nj,
            refresh_nj=traffic.execution_time_ms * params.refresh_per_ms_nj,
            background_nj=traffic.execution_time_ms * params.background_mw * 1e3,
        )

    def energy_reduction(self, traffic_baseline: TrafficProfile,
                         traffic_eden: TrafficProfile,
                         eden_voltage: VoltageDomain) -> float:
        """Fractional DRAM energy reduction of EDEN vs the nominal baseline."""
        baseline = self.energy(traffic_baseline).total_nj
        eden = self.energy(traffic_eden, voltage=eden_voltage).total_nj
        if baseline <= 0:
            return 0.0
        return 1.0 - eden / baseline
