"""Vendor behaviour profiles for the approximate-DRAM device model.

The paper characterizes modules from three major vendors (A, B, C) and finds
that the BER-vs-voltage and BER-vs-tRCD curves differ substantially between
vendors while sharing the same qualitative shape (Figure 5): error rates grow
roughly exponentially as VDD or tRCD shrink, 1-to-0 flips dominate under
voltage scaling, 0-to-1 flips dominate under tRCD scaling, and errors cluster
on particular bitlines and wordlines.  Each :class:`VendorProfile` captures
those knobs for one synthetic vendor; the default three profiles are tuned so
the reproduced Figure 5 keeps the published ordering and ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.dram.timing import TimingParameters
from repro.dram.voltage import NOMINAL_VDD

#: floor/ceiling on any modeled bit error rate.
MIN_BER = 1e-12
MAX_BER = 0.5


@dataclass(frozen=True)
class VendorProfile:
    """Parameters of one vendor's reduced-voltage / reduced-latency behaviour.

    The BER contributed by voltage reduction follows
    ``log10(BER) = voltage_intercept + voltage_slope * (V_nominal - V)`` and
    the BER contributed by tRCD reduction follows
    ``log10(BER) = trcd_intercept - trcd_slope * tRCD`` (both clipped to
    [MIN_BER, MAX_BER]).  ``one_to_zero_bias_*`` control how much more likely
    a stored 1 is to flip than a stored 0 under each mechanism, and the
    ``*_variation`` parameters control the log-normal spread of per-bitline /
    per-wordline failure multipliers.
    """

    name: str
    voltage_intercept: float
    voltage_slope: float          # decades of BER per volt of reduction
    trcd_intercept: float
    trcd_slope: float             # decades of BER per ns of tRCD
    one_to_zero_bias_voltage: float = 0.8   # fraction of voltage-induced flips that are 1->0
    one_to_zero_bias_trcd: float = 0.25     # fraction of tRCD-induced flips that are 1->0
    bitline_variation: float = 0.6          # sigma of log-normal per-bitline multiplier
    wordline_variation: float = 0.4         # sigma of log-normal per-wordline multiplier
    weak_cell_failure_probability: float = 0.5  # F: per-access failure prob of a weak cell

    def __post_init__(self) -> None:
        if not 0.0 < self.weak_cell_failure_probability <= 1.0:
            raise ValueError("weak_cell_failure_probability must be in (0, 1]")
        for name in ("one_to_zero_bias_voltage", "one_to_zero_bias_trcd"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")

    # -- aggregate BER curves -------------------------------------------------------
    def voltage_ber(self, vdd: float, nominal_vdd: float = NOMINAL_VDD) -> float:
        """Aggregate BER contribution from operating at supply voltage ``vdd``."""
        reduction = max(0.0, nominal_vdd - vdd)
        if reduction <= 0.0:
            return 0.0
        log_ber = self.voltage_intercept + self.voltage_slope * reduction
        return float(np.clip(10.0 ** log_ber, MIN_BER, MAX_BER))

    def trcd_ber(self, trcd_ns: float, nominal_trcd_ns: float = 12.5) -> float:
        """Aggregate BER contribution from operating at activation latency ``trcd_ns``."""
        if trcd_ns >= nominal_trcd_ns:
            return 0.0
        log_ber = self.trcd_intercept - self.trcd_slope * trcd_ns
        return float(np.clip(10.0 ** log_ber, MIN_BER, MAX_BER))

    def total_ber(self, vdd: float, timing: TimingParameters,
                  nominal_vdd: float = NOMINAL_VDD,
                  nominal_trcd_ns: float = 12.5) -> float:
        """Combined BER from simultaneous voltage and latency reduction."""
        combined = self.voltage_ber(vdd, nominal_vdd) + self.trcd_ber(
            timing.trcd_ns, nominal_trcd_ns
        )
        return float(np.clip(combined, 0.0, MAX_BER))

    # -- data-pattern dependence ------------------------------------------------------
    def flip_weight(self, stored_ones: np.ndarray, mechanism: str) -> np.ndarray:
        """Relative flip likelihood per bit given its stored value.

        ``stored_ones`` is a boolean/0-1 array; the returned weights average to
        1.0 over a balanced data pattern, so aggregate BERs are unaffected
        while 0xFF-style patterns see more voltage-induced flips and 0x00-style
        patterns see more tRCD-induced flips (paper Figure 5, Error Model 3).
        """
        if mechanism == "voltage":
            bias = self.one_to_zero_bias_voltage
        elif mechanism == "trcd":
            bias = self.one_to_zero_bias_trcd
        else:
            raise ValueError(f"unknown error mechanism {mechanism!r}")
        weight_one = 2.0 * bias
        weight_zero = 2.0 * (1.0 - bias)
        stored = np.asarray(stored_ones, dtype=bool)
        return np.where(stored, weight_one, weight_zero)


#: Three synthetic vendors matching the spread seen in the paper's Figure 5.
VENDOR_PROFILES: Dict[str, VendorProfile] = {
    "A": VendorProfile(
        name="A",
        voltage_intercept=-12.0, voltage_slope=36.0,
        trcd_intercept=2.0, trcd_slope=1.1,
        one_to_zero_bias_voltage=0.82, one_to_zero_bias_trcd=0.22,
        bitline_variation=0.6, wordline_variation=0.4,
    ),
    "B": VendorProfile(
        name="B",
        voltage_intercept=-11.0, voltage_slope=30.0,
        trcd_intercept=1.2, trcd_slope=0.95,
        one_to_zero_bias_voltage=0.75, one_to_zero_bias_trcd=0.30,
        bitline_variation=0.9, wordline_variation=0.3,
    ),
    "C": VendorProfile(
        name="C",
        voltage_intercept=-13.5, voltage_slope=42.0,
        trcd_intercept=2.6, trcd_slope=1.25,
        one_to_zero_bias_voltage=0.88, one_to_zero_bias_trcd=0.18,
        bitline_variation=0.4, wordline_variation=0.7,
    ),
}


def get_vendor(name: str) -> VendorProfile:
    key = name.upper()
    if key not in VENDOR_PROFILES:
        raise KeyError(f"unknown vendor {name!r}; expected one of {sorted(VENDOR_PROFILES)}")
    return VENDOR_PROFILES[key]
