"""DRAM partitions and their characterized operating points (paper Section 3.4).

Fine-grained DNN-to-DRAM mapping needs, for every DRAM partition (module,
bank or subarray), the bit error rate the partition exhibits at each candidate
(voltage, tRCD) operating point.  A :class:`PartitionTable` holds exactly that
characterization — built either from the behavioural device or synthetically —
and answers the query Algorithm 1 performs: *"what is the most aggressive
operating point of this partition whose BER stays below a target?"*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.dram.device import ApproximateDram, DramOperatingPoint
from repro.dram.geometry import DramGeometry, PartitionLevel
from repro.dram.timing import NOMINAL_DDR4_TIMING
from repro.dram.voltage import NOMINAL_VDD


def operating_point_cost(op_point: DramOperatingPoint,
                         nominal_vdd: float = NOMINAL_VDD,
                         nominal_trcd_ns: float = NOMINAL_DDR4_TIMING.trcd_ns
                         ) -> float:
    """Scalar "how much are we still paying" score; lower is more aggressive.

    Combines the dynamic-energy scale (VDD^2 term) and the remaining fraction
    of the nominal activation latency, which is what EDEN trades off when it
    picks the partition parameters with "the largest parameter reduction"
    (Algorithm 1, line 8).  The defaults derive from the shared nominal
    models (``NOMINAL_VDD``, ``NOMINAL_DDR4_TIMING``) so Algorithm 1's cost
    ranking cannot drift from the timing model.
    """
    energy_term = (op_point.vdd / nominal_vdd) ** 2
    latency_term = op_point.trcd_ns / nominal_trcd_ns
    return energy_term + latency_term


@dataclass
class DramPartition:
    """One mappable DRAM partition with its per-operating-point BERs."""

    partition_id: int
    level: PartitionLevel
    size_bytes: int
    ber_by_op_point: Dict[DramOperatingPoint, float] = field(default_factory=dict)
    available_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("partition size must be positive")
        if self.available_bytes is None:
            self.available_bytes = self.size_bytes

    def add_operating_point(self, op_point: DramOperatingPoint, ber: float) -> None:
        if ber < 0:
            raise ValueError("BER must be non-negative")
        self.ber_by_op_point[op_point] = float(ber)

    def best_operating_point(self, max_ber: float
                             ) -> Optional[Tuple[DramOperatingPoint, float]]:
        """Most aggressive operating point whose BER does not exceed ``max_ber``."""
        candidates = [
            (op, ber) for op, ber in self.ber_by_op_point.items() if ber <= max_ber
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda item: operating_point_cost(item[0]))

    def reserve(self, size_bytes: int) -> None:
        """Consume capacity when a DNN data type is assigned here.

        ``size_bytes`` is truncated to whole bytes *before* the capacity
        check (so a fractional request can never pass the comparison yet
        subtract less), must be non-negative (a negative request would
        silently grow capacity), and is validated before any mutation.
        """
        size = int(size_bytes)
        if size < 0:
            raise ValueError(f"cannot reserve a negative size ({size_bytes}B)")
        if size > self.available_bytes:
            raise ValueError(
                f"partition {self.partition_id} has {self.available_bytes}B free, "
                f"cannot reserve {size}B"
            )
        self.available_bytes -= size

    def reset_capacity(self) -> None:
        self.available_bytes = self.size_bytes


class PartitionTable:
    """The characterized set of partitions Algorithm 1 maps DNN data onto."""

    def __init__(self, partitions: Sequence[DramPartition], level: PartitionLevel):
        if not partitions:
            raise ValueError("a partition table needs at least one partition")
        self.partitions: List[DramPartition] = list(partitions)
        self.level = level

    def __len__(self) -> int:
        return len(self.partitions)

    def __iter__(self):
        return iter(self.partitions)

    def reset(self) -> None:
        for partition in self.partitions:
            partition.reset_capacity()

    def total_capacity_bytes(self) -> int:
        return sum(p.size_bytes for p in self.partitions)

    def operating_points(self) -> List[DramOperatingPoint]:
        points = set()
        for partition in self.partitions:
            points.update(partition.ber_by_op_point)
        return sorted(points, key=operating_point_cost)

    # -- constructors -----------------------------------------------------------------
    @classmethod
    def from_device(cls, device: ApproximateDram,
                    op_points: Iterable[DramOperatingPoint],
                    level: PartitionLevel = PartitionLevel.BANK,
                    sample_bits: int = 1 << 14) -> "PartitionTable":
        """Characterize every partition of ``device`` at each operating point.

        Bank-level partitions use the device's per-bank Monte-Carlo BER (banks
        differ through bitline/wordline variation); module-level collapses to
        the aggregate; subarray-level reuses the bank estimate of the owning
        bank (the behavioural model has no extra subarray-level variation).
        """
        op_points = list(op_points)
        geometry = device.geometry
        partitions: List[DramPartition] = []
        bank_ber_cache: Dict[Tuple[int, DramOperatingPoint], float] = {}

        def bank_ber(bank: int, op: DramOperatingPoint) -> float:
            key = (bank, op)
            if key not in bank_ber_cache:
                bank_ber_cache[key] = device.partition_ber(op, bank, sample_bits=sample_bits)
            return bank_ber_cache[key]

        for partition_id, size_bytes in geometry.partitions(level):
            partition = DramPartition(partition_id, level, size_bytes)
            for op in op_points:
                if level is PartitionLevel.MODULE:
                    ber = device.expected_ber(op)
                elif level is PartitionLevel.BANK:
                    ber = bank_ber(partition_id, op)
                else:  # SUBARRAY
                    owning_bank = partition_id // geometry.subarrays_per_bank
                    ber = bank_ber(owning_bank, op)
                partition.add_operating_point(op, ber)
            partitions.append(partition)
        return cls(partitions, level)

    @classmethod
    def synthetic(cls, num_partitions: int, partition_size_bytes: int,
                  op_point_bers: Dict[DramOperatingPoint, float],
                  spread: float = 0.3, seed: int = 0,
                  level: PartitionLevel = PartitionLevel.BANK) -> "PartitionTable":
        """Build a synthetic table where partitions vary around given mean BERs.

        Useful for unit tests and for the Figure 12 mapping experiment, where
        four voltage domains with different BERs are assumed.
        """
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        rng = np.random.default_rng(seed)
        partitions = []
        for index in range(num_partitions):
            partition = DramPartition(index, level, partition_size_bytes)
            factor = float(np.exp(rng.normal(0.0, spread)))
            for op, ber in op_point_bers.items():
                partition.add_operating_point(op, ber * factor)
            partitions.append(partition)
        return cls(partitions, level)
