"""Refresh-rate reduction: the third approximate-DRAM knob (paper Section 2.3).

The paper's evaluation scales supply voltage and tRCD, and notes that refresh
rate is a third parameter prior work trades against reliability — EDEN's
framework applies to it unchanged (the conclusion calls this out as a natural
extension).  This module implements that extension so the flow can also pick a
refresh interval:

* retention failures follow the well-known exponential tail: multiplying the
  refresh interval beyond the 64 ms standard exposes the weakest cells first,
  with the failure population growing rapidly as the interval stretches;
* the benefit is twofold — refresh *energy* drops with the refresh frequency,
  and the *performance* overhead of refresh (rank-level lockout while
  refreshing) shrinks.

The :class:`RefreshPolicy` plugs into the same places the voltage/timing knobs
do: it reports an aggregate BER contribution (usable with the error models and
EDEN's characterization) and energy/performance scale factors (usable with the
platform models).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: JEDEC standard refresh interval (ms) at normal temperature.
STANDARD_REFRESH_INTERVAL_MS = 64.0

#: fraction of time a rank is unavailable due to refresh at the standard rate
#: (tRFC per tREFI on a commodity DDR4 device is on the order of 4-5%).
STANDARD_REFRESH_OVERHEAD = 0.045


@dataclass(frozen=True)
class RefreshPolicy:
    """One refresh operating point: how often the module is refreshed."""

    interval_ms: float = STANDARD_REFRESH_INTERVAL_MS
    #: retention-failure curve: log10(BER) = intercept + slope * log2(interval / 64ms)
    retention_intercept: float = -9.5
    retention_slope: float = 2.4

    def __post_init__(self) -> None:
        if self.interval_ms < STANDARD_REFRESH_INTERVAL_MS:
            raise ValueError(
                "refresh intervals below the 64 ms standard gain nothing and are not modeled"
            )

    @property
    def interval_multiplier(self) -> float:
        return self.interval_ms / STANDARD_REFRESH_INTERVAL_MS

    # -- reliability ----------------------------------------------------------------
    def retention_ber(self) -> float:
        """Expected BER contribution from retention failures at this interval.

        At the standard interval the retention BER is negligible (the JEDEC
        guardband); every doubling of the interval multiplies the failing-cell
        population by ~10^slope·log2 — the steep tail reported by retention
        studies (RAIDR, AVATAR and the paper's references).
        """
        if self.interval_multiplier <= 1.0:
            return 0.0
        log_ber = self.retention_intercept + self.retention_slope * np.log2(self.interval_multiplier)
        return float(np.clip(10.0 ** log_ber, 0.0, 0.5))

    # -- benefits -------------------------------------------------------------------
    def refresh_energy_scale(self) -> float:
        """Refresh energy relative to the standard rate (refreshes per unit time)."""
        return 1.0 / self.interval_multiplier

    def refresh_overhead(self) -> float:
        """Fraction of time the rank is blocked by refresh at this interval."""
        return STANDARD_REFRESH_OVERHEAD / self.interval_multiplier

    def throughput_gain(self) -> float:
        """Relative throughput improvement from the reduced refresh lockout."""
        baseline_available = 1.0 - STANDARD_REFRESH_OVERHEAD
        available = 1.0 - self.refresh_overhead()
        return available / baseline_available


def max_interval_for_ber(tolerable_ber: float,
                         policy_template: RefreshPolicy = RefreshPolicy(),
                         max_multiplier: float = 64.0) -> RefreshPolicy:
    """Longest refresh interval whose retention BER stays below ``tolerable_ber``.

    This is the refresh analogue of :func:`repro.core.offload.reductions_for_ber`:
    EDEN's coarse characterization gives a tolerable BER, and this helper turns
    it into a refresh interval (searching over power-of-two multipliers, the
    granularity refresh controllers actually support).
    """
    if tolerable_ber < 0:
        raise ValueError("tolerable BER must be non-negative")
    best = RefreshPolicy(STANDARD_REFRESH_INTERVAL_MS,
                         policy_template.retention_intercept,
                         policy_template.retention_slope)
    multiplier = 2.0
    while multiplier <= max_multiplier:
        candidate = RefreshPolicy(STANDARD_REFRESH_INTERVAL_MS * multiplier,
                                  policy_template.retention_intercept,
                                  policy_template.retention_slope)
        if candidate.retention_ber() > tolerable_ber:
            break
        best = candidate
        multiplier *= 2.0
    return best
