"""Packed-word primitives shared by the error models and the device model.

The original injection path expanded every tensor into a per-bit boolean
array (a 32x memory blowup for FP32), drew one uniform per bit, and folded
the resulting boolean flip mask back into words.  This module provides the
building blocks of the packed replacement, which never materializes per-bit
booleans and — crucially — is *bit-exact* with the boolean path for a fixed
RNG seed:

* the per-cell "weakness" uniforms are deterministic counter-based hashes, so
  the set of bits with a non-zero flip probability (the *candidates*) can be
  found with pure integer compares, chunk by chunk (:func:`hash_keys`,
  :func:`uniform_threshold`);
* the legacy path consumed exactly one ``rng.random()`` draw per stored bit.
  PCG64 consumes one state step per double, and ``BitGenerator.advance``
  skips steps without generating, so :func:`sample_flip_positions` draws
  uniforms *only at candidate positions* while advancing the stream over all
  other bits — the surviving draws (and therefore the flips) are identical to
  what the dense path would have produced;
* flips are applied as sparse XORs straight into the packed words
  (:func:`xor_mask_from_positions`).

Everything here is layout-agnostic: callers hand in flat bit indices and get
back flat flip positions.
"""

from __future__ import annotations

from typing import Callable, Iterator, Tuple

import numpy as np

#: bits processed per chunk while scanning for weak cells.  A multiple of
#: every supported word width (4/8/16/32/64) so chunk edges never split a
#: word.  Kept module-level so tests can shrink it to exercise chunk seams.
CHUNK_BITS = 1 << 20

#: above this candidate count (relative to the total bits) the per-candidate
#: ``advance`` loop loses to drawing the uniforms densely in chunks.
SPARSE_DENSITY_CUTOFF = 256

_MANTISSA_SCALE = float(1 << 53)


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 mix function: uint64 -> well-mixed uint64."""
    z = (values + np.uint64(0x9E3779B97F4A7C15)).astype(np.uint64)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def hash_keys(indices: np.ndarray, seed: int, stream: int) -> np.ndarray:
    """53-bit integer hash keys underlying :func:`_hash_uniform`.

    ``_hash_uniform`` maps these keys to floats via ``k / 2**53 + 1e-16``;
    comparing keys against :func:`uniform_threshold` reproduces the float
    comparison exactly without ever leaving the integer domain.  The mixing
    is value-identical to :func:`_splitmix64` but runs in-place on two
    buffers — this scan dominates the packed hot path.
    """
    indices = np.asarray(indices, dtype=np.uint64)
    z = indices ^ np.uint64(seed * 0x9E3779B1 + stream * 0x85EBCA77)
    z += np.uint64(0x9E3779B97F4A7C15)
    shifted = z >> np.uint64(30)
    z ^= shifted
    z *= np.uint64(0xBF58476D1CE4E5B9)
    np.right_shift(z, np.uint64(27), out=shifted)
    z ^= shifted
    z *= np.uint64(0x94D049BB133111EB)
    np.right_shift(z, np.uint64(31), out=shifted)
    z ^= shifted
    z >>= np.uint64(11)
    return z


def _hash_uniform(indices: np.ndarray, seed: int, stream: int) -> np.ndarray:
    """Deterministic per-index uniforms in (0, 1), independent across streams."""
    # 53-bit mantissa keeps the uniform well away from exactly 0 or 1.
    return hash_keys(indices, seed, stream).astype(np.float64) / _MANTISSA_SCALE + 1e-16


def uniform_threshold(fraction: float) -> int:
    """Smallest key ``k`` whose hashed uniform is >= ``fraction``.

    A hashed cell is "weak" iff ``_hash_uniform < fraction``, i.e. iff its
    :func:`hash_keys` value is strictly below this threshold.  The search
    evaluates the same float expression ``_hash_uniform`` uses, so the
    integer compare is exact — including the additive 1e-16 and any rounding
    at the top of the range.
    """
    lo, hi = 0, 1 << 53
    while lo < hi:
        mid = (lo + hi) // 2
        if float(mid) / _MANTISSA_SCALE + 1e-16 >= fraction:
            hi = mid
        else:
            lo = mid + 1
    return lo


def iter_bit_chunks(num_bits: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` chunk bounds covering ``[0, num_bits)``."""
    for start in range(0, num_bits, CHUNK_BITS):
        yield start, min(start + CHUNK_BITS, num_bits)


def scan_weak_positions(num_bits: int, start_bit: int,
                        weak_in_chunk: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
    """Flat positions in ``[0, num_bits)`` whose cells are weak.

    ``weak_in_chunk`` maps a chunk of *absolute* bit indices (tensor-relative
    index plus ``start_bit``, the hash domain every error model keys on) to a
    boolean weakness mask.  The chunked scan bounds peak memory regardless of
    tensor size.
    """
    chunks = []
    for start, stop in iter_bit_chunks(num_bits):
        absolute = np.arange(start, stop, dtype=np.uint64) + np.uint64(start_bit)
        weak = np.nonzero(weak_in_chunk(absolute))[0]
        if weak.size:
            chunks.append(weak.astype(np.int64) + start)
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(chunks)


def make_bit_gather(words: np.ndarray, bits_per_word: int) -> Callable[[np.ndarray], np.ndarray]:
    """Return ``bit_at(positions) -> bool array`` over packed ``words``.

    Flat bit position ``i`` maps to bit ``i % bits_per_word`` (LSB-first) of
    ``words[i // bits_per_word]`` — the same convention the boolean expansion
    used.
    """
    words = np.asarray(words, dtype=np.uint64)

    def bit_at(positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        shifts = (positions % bits_per_word).astype(np.uint64)
        return ((words[positions // bits_per_word] >> shifts) & np.uint64(1)).astype(bool)

    return bit_at


def xor_mask_from_positions(flip_positions: np.ndarray, num_words: int,
                            bits_per_word: int) -> np.ndarray:
    """Fold flat flip positions into a per-word uint64 XOR mask."""
    xor = np.zeros(num_words, dtype=np.uint64)
    flip_positions = np.asarray(flip_positions, dtype=np.int64)
    if flip_positions.size:
        shifts = (flip_positions % bits_per_word).astype(np.uint64)
        np.bitwise_xor.at(xor, flip_positions // bits_per_word, np.uint64(1) << shifts)
    return xor


def skip_stream(rng: np.random.Generator, num_draws: int) -> None:
    """Consume ``num_draws`` uniform draws without keeping them.

    Uses ``BitGenerator.advance`` when the generator supports it (PCG64 and
    Philox; one state step per double) and falls back to drawing-and-
    discarding in chunks otherwise (e.g. MT19937) — either way the stream
    ends where ``rng.random(num_draws)`` would have left it.
    """
    bit_generator = rng.bit_generator
    if hasattr(bit_generator, "advance"):
        bit_generator.advance(num_draws)
        return
    for start, stop in iter_bit_chunks(num_draws):
        rng.random(stop - start)


def sample_flip_positions(rng: np.random.Generator, total_bits: int,
                          positions: np.ndarray, probabilities: np.ndarray) -> np.ndarray:
    """Which candidate bits flip on this access — stream-exact vs. the dense path.

    ``positions`` are the sorted flat indices with a non-zero flip
    probability and ``probabilities`` their per-access failure probabilities.
    The legacy path computed ``rng.random(total_bits) < probabilities``;
    this draws the identical uniforms at the candidate positions (skipping
    the rest of the stream with ``advance``, or drawing densely in chunks
    when candidates are plentiful) and leaves the generator in exactly the
    state a full ``rng.random(total_bits)`` would have.
    """
    positions = np.asarray(positions, dtype=np.int64)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    keep = probabilities > 0.0
    if not keep.all():
        positions, probabilities = positions[keep], probabilities[keep]
    if positions.size == 0:
        skip_stream(rng, total_bits)
        return positions

    bit_generator = rng.bit_generator
    sparse_ok = (hasattr(bit_generator, "advance")
                 and positions.size <= max(4096, total_bits // SPARSE_DENSITY_CUTOFF))
    if sparse_ok:
        draws = np.empty(positions.size, dtype=np.float64)
        cursor = 0
        for slot, position in enumerate(positions.tolist()):
            gap = position - cursor
            if gap:
                bit_generator.advance(gap)
            draws[slot] = rng.random()
            cursor = position + 1
        if total_bits > cursor:
            bit_generator.advance(total_bits - cursor)
        return positions[draws < probabilities]

    flips = []
    lo = 0
    for start, stop in iter_bit_chunks(total_bits):
        uniforms = rng.random(stop - start)
        hi = int(np.searchsorted(positions, stop))
        if hi > lo:
            chunk_positions = positions[lo:hi]
            chosen = uniforms[chunk_positions - start] < probabilities[lo:hi]
            if chosen.any():
                flips.append(chunk_positions[chosen])
            lo = hi
    if not flips:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(flips)
