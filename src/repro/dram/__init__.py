"""Approximate-DRAM substrate: device model, error models, profiling, energy.

The paper characterizes eight real DDR3/DDR4 modules with SoftMC under reduced
supply voltage and reduced tRCD, fits four probabilistic error models to the
observed bit flips, and uses those models to inject errors into DNN inference
and retraining.  This package provides the same stack in simulation:

* :mod:`repro.dram.device` — a behavioural approximate-DRAM device whose bit
  error rate grows as VDD and tRCD shrink, with vendor-, data-pattern- and
  location-dependent behaviour matching the published characterizations;
* :mod:`repro.dram.profiler` — a SoftMC-style reduced-parameter profiler;
* :mod:`repro.dram.error_models` — EDEN's Error Models 0-3;
* :mod:`repro.dram.fitting` — maximum-likelihood fitting and model selection;
* :mod:`repro.dram.injection` — bit-error injection into DNN tensors
  (the hook installed on a :class:`~repro.nn.network.Network`);
* :mod:`repro.dram.energy` — a DRAMPower-style energy model;
* :mod:`repro.dram.partitions` — per-partition operating points for
  fine-grained mapping.
"""

from repro.dram.geometry import DramGeometry
from repro.dram.timing import TimingParameters, NOMINAL_DDR4_TIMING
from repro.dram.voltage import VoltageDomain, NOMINAL_VDD
from repro.dram.vendors import VendorProfile, VENDOR_PROFILES
from repro.dram.device import ApproximateDram, DramOperatingPoint
from repro.dram.error_models import (
    DramLayout,
    ErrorModel,
    UniformErrorModel,
    BitlineErrorModel,
    WordlineErrorModel,
    DataDependentErrorModel,
)
from repro.dram.fitting import fit_error_models, select_error_model
from repro.dram.profiler import SoftMCProfiler, ProfileResult
from repro.dram.injection import (
    BitErrorInjector,
    DeviceBackedInjector,
    inject_bit_errors,
    inject_bit_errors_reference,
)
from repro.dram.energy import DramEnergyModel, TrafficProfile
from repro.dram.partitions import DramPartition, PartitionTable

__all__ = [
    "DramGeometry",
    "TimingParameters",
    "NOMINAL_DDR4_TIMING",
    "VoltageDomain",
    "NOMINAL_VDD",
    "VendorProfile",
    "VENDOR_PROFILES",
    "ApproximateDram",
    "DramOperatingPoint",
    "DramLayout",
    "ErrorModel",
    "UniformErrorModel",
    "BitlineErrorModel",
    "WordlineErrorModel",
    "DataDependentErrorModel",
    "fit_error_models",
    "select_error_model",
    "SoftMCProfiler",
    "ProfileResult",
    "BitErrorInjector",
    "DeviceBackedInjector",
    "inject_bit_errors",
    "inject_bit_errors_reference",
    "DramEnergyModel",
    "TrafficProfile",
    "DramPartition",
    "PartitionTable",
]
