"""Behavioural model of a real approximate DRAM module.

The paper's ground truth is a set of eight real DDR3/DDR4 modules operated
below nominal voltage and tRCD through SoftMC.  This module provides the
simulated equivalent: an :class:`ApproximateDram` whose bit flips are

* **deterministic in their spatial structure** — every cell has a fixed
  "weakness" value derived from a per-device seed, so the set of weak cells
  (and therefore which bitlines/wordlines are error-prone) is stable across
  reads, days and re-profiling, matching the temporal consistency the paper
  reports; and
* **stochastic per access** — a weak cell fails on any given access with the
  vendor's per-access failure probability, modulated by the stored data
  pattern (1→0 flips dominate under voltage reduction, 0→1 under tRCD
  reduction) and the cell's bitline/wordline failure multipliers.

Everything is generated lazily from counter-based hashing, so a multi-gigabyte
module costs no memory and reads of arbitrary addresses are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.dram.error_models import BurstProfile
from repro.dram.geometry import DramGeometry
from repro.dram.packed import (
    _hash_uniform,
    hash_keys,
    iter_bit_chunks,
    make_bit_gather,
    sample_flip_positions,
    skip_stream,
    uniform_threshold,
    xor_mask_from_positions,
)
from repro.dram.timing import NOMINAL_DDR4_TIMING, TimingParameters
from repro.dram.vendors import MAX_BER, VendorProfile, get_vendor
from repro.dram.voltage import NOMINAL_VDD, VoltageDomain


@dataclass(frozen=True)
class DramOperatingPoint:
    """A (supply voltage, timing parameters) pair the module is operated at."""

    voltage: VoltageDomain = field(default_factory=VoltageDomain)
    timing: TimingParameters = NOMINAL_DDR4_TIMING

    @property
    def vdd(self) -> float:
        return self.voltage.vdd

    @property
    def trcd_ns(self) -> float:
        return self.timing.trcd_ns

    @classmethod
    def nominal(cls) -> "DramOperatingPoint":
        return cls()

    @classmethod
    def from_reductions(cls, delta_vdd: float = 0.0, delta_trcd_ns: float = 0.0,
                        nominal_vdd: float = NOMINAL_VDD,
                        nominal_timing: TimingParameters = NOMINAL_DDR4_TIMING,
                        ) -> "DramOperatingPoint":
        voltage = VoltageDomain(vdd=nominal_vdd, nominal_vdd=nominal_vdd).reduced_by(delta_vdd)
        timing = nominal_timing.with_reduced_trcd(delta_trcd_ns)
        return cls(voltage=voltage, timing=timing)

    def describe(self) -> str:
        return f"VDD={self.vdd:.2f}V, tRCD={self.trcd_ns:.1f}ns"


class ApproximateDram:
    """A DRAM module that can be operated below nominal voltage and latency."""

    def __init__(self, vendor: str = "A", geometry: Optional[DramGeometry] = None,
                 seed: int = 0, nominal_vdd: float = NOMINAL_VDD,
                 nominal_timing: TimingParameters = NOMINAL_DDR4_TIMING,
                 burst_profile: Optional[BurstProfile] = None):
        self.vendor: VendorProfile = get_vendor(vendor) if isinstance(vendor, str) else vendor
        self.geometry = geometry or DramGeometry()
        self.seed = int(seed)
        self.nominal_vdd = float(nominal_vdd)
        self.nominal_timing = nominal_timing
        # Optional correlated-burst overlay: the voltage/tRCD mechanisms keep
        # producing their single-bit flips, and weak aligned spans (stream
        # 17+k per class) fire on top so the single/burst mix approaches
        # burst_profile.single_fraction.  None (the default) adds no draws
        # and leaves every existing read bit-identical.
        self.burst_profile = burst_profile
        # per-bank caches of the bitline spatial factors (seed-determined, so
        # they never invalidate for the lifetime of the device object).
        self._bitline_factor_cache: Dict[int, np.ndarray] = {}

    # -- aggregate behaviour ---------------------------------------------------------
    def expected_ber(self, op_point: DramOperatingPoint, ones_fraction: float = 0.5) -> float:
        """Expected module-wide BER at an operating point for a data pattern.

        ``ones_fraction`` is the fraction of stored bits that are 1 (0.5 for a
        random pattern, 1.0 for 0xFF, 0.0 for 0x00).
        """
        vendor = self.vendor
        v_ber = vendor.voltage_ber(op_point.vdd, self.nominal_vdd)
        t_ber = vendor.trcd_ber(op_point.trcd_ns, self.nominal_timing.trcd_ns)
        bias_v = vendor.one_to_zero_bias_voltage
        bias_t = vendor.one_to_zero_bias_trcd
        v_component = v_ber * 2.0 * (bias_v * ones_fraction + (1.0 - bias_v) * (1.0 - ones_fraction))
        t_component = t_ber * 2.0 * (bias_t * ones_fraction + (1.0 - bias_t) * (1.0 - ones_fraction))
        return float(np.clip(v_component + t_component, 0.0, MAX_BER))

    # -- per-bit flip probabilities ----------------------------------------------------
    def _spatial_multipliers(self, bit_addresses: np.ndarray) -> np.ndarray:
        """Per-bit log-normal multipliers from bitline and wordline variation."""
        geometry = self.geometry
        row_bits = geometry.row_size_bits
        bank_bits = geometry.bank_size_bytes * 8
        bank = bit_addresses // bank_bits
        within_bank = bit_addresses % bank_bits
        row = within_bank // row_bits
        bitline = within_bank % row_bits

        bitline_key = bank * np.uint64(row_bits) + bitline
        wordline_key = bank * np.uint64(geometry.rows_per_bank) + row

        sigma_b = self.vendor.bitline_variation
        sigma_w = self.vendor.wordline_variation
        u_b = _hash_uniform(bitline_key, self.seed, stream=11)
        u_w = _hash_uniform(wordline_key, self.seed, stream=13)
        # Inverse-normal via scipy-free approximation: use the probit from the
        # logistic approximation, adequate for generating log-normal spread.
        z_b = np.log(u_b / (1.0 - u_b)) * 0.5513  # logistic ~ N(0,1) scaling
        z_w = np.log(u_w / (1.0 - u_w)) * 0.5513
        multiplier = np.exp(sigma_b * z_b - 0.5 * sigma_b ** 2) * np.exp(
            sigma_w * z_w - 0.5 * sigma_w ** 2
        )
        return multiplier

    def flip_probabilities(self, bit_addresses: np.ndarray, stored_bits: np.ndarray,
                           op_point: DramOperatingPoint) -> np.ndarray:
        """Probability that each addressed bit reads back flipped."""
        bit_addresses = np.asarray(bit_addresses, dtype=np.uint64)
        stored_bits = np.asarray(stored_bits, dtype=bool)
        if bit_addresses.shape != stored_bits.shape:
            raise ValueError("bit_addresses and stored_bits must have the same shape")

        vendor = self.vendor
        fail_prob = vendor.weak_cell_failure_probability
        v_ber = vendor.voltage_ber(op_point.vdd, self.nominal_vdd)
        t_ber = vendor.trcd_ber(op_point.trcd_ns, self.nominal_timing.trcd_ns)

        spatial = self._spatial_multipliers(bit_addresses)

        probabilities = np.zeros(bit_addresses.shape, dtype=np.float64)
        for mechanism, ber, stream in (("voltage", v_ber, 1), ("trcd", t_ber, 2)):
            if ber <= 0.0:
                continue
            weak_fraction = np.clip(ber / fail_prob * spatial, 0.0, 1.0)
            weakness = _hash_uniform(bit_addresses, self.seed, stream=stream)
            is_weak = weakness < weak_fraction
            weights = vendor.flip_weight(stored_bits, mechanism)
            probabilities += is_weak * np.clip(fail_prob * weights, 0.0, 1.0)
        return np.clip(probabilities, 0.0, 1.0)

    # -- packed read path ---------------------------------------------------------
    def _bitline_factors(self, bank: int) -> np.ndarray:
        """Spatial factor of every bitline in ``bank`` (cached; seed-determined)."""
        cached = self._bitline_factor_cache.get(bank)
        if cached is None:
            row_bits = self.geometry.row_size_bits
            keys = np.uint64(bank) * np.uint64(row_bits) + np.arange(row_bits, dtype=np.uint64)
            u_b = _hash_uniform(keys, self.seed, stream=11)
            z_b = np.log(u_b / (1.0 - u_b)) * 0.5513
            sigma_b = self.vendor.bitline_variation
            cached = np.exp(sigma_b * z_b - 0.5 * sigma_b ** 2)
            self._bitline_factor_cache[bank] = cached
        return cached

    def _wordline_factors(self, wordline_keys: np.ndarray) -> np.ndarray:
        u_w = _hash_uniform(wordline_keys, self.seed, stream=13)
        z_w = np.log(u_w / (1.0 - u_w)) * 0.5513
        sigma_w = self.vendor.wordline_variation
        return np.exp(sigma_w * z_w - 0.5 * sigma_w ** 2)

    def _spatial_from_tables(self, bit_addresses: np.ndarray) -> np.ndarray:
        """Per-bit spatial multipliers via per-bitline / per-wordline tables.

        The elementwise :meth:`_spatial_multipliers` recomputes the same
        ``exp(log(...))`` for every bit on a bitline; here each unique
        bitline/wordline factor is computed once and gathered, producing
        bit-identical float64 products.
        """
        geometry = self.geometry
        row_bits = geometry.row_size_bits
        bank_bits = geometry.bank_size_bytes * 8
        bank = bit_addresses // np.uint64(bank_bits)
        within_bank = bit_addresses % np.uint64(bank_bits)
        row = within_bank // np.uint64(row_bits)
        bitline = within_bank % np.uint64(row_bits)
        out = np.empty(bit_addresses.size, dtype=np.float64)
        for bank_id in np.unique(bank):
            selector = bank == bank_id
            bitline_factors = self._bitline_factors(int(bank_id))
            unique_rows, inverse = np.unique(row[selector], return_inverse=True)
            wordline_keys = np.uint64(int(bank_id) * geometry.rows_per_bank) + unique_rows
            row_factors = self._wordline_factors(wordline_keys)
            out[selector] = bitline_factors[bitline[selector]] * row_factors[inverse]
        return out

    def _flip_positions(self, num_bits: int, start_bit_address: int,
                        op_point: DramOperatingPoint, rng: np.random.Generator,
                        bit_at: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        """Flat positions (relative to the run start) of bits that flip on one read.

        Stream-exact replacement for ``rng.random(n) < flip_probabilities(...)``:
        candidate bits (non-zero flip probability) are found chunk by chunk,
        the stored value is gathered only at candidates via ``bit_at``, and
        uniforms are drawn through :func:`sample_flip_positions` so the RNG
        ends in the same state as a dense draw over all ``num_bits``.
        """
        vendor = self.vendor
        fail_prob = vendor.weak_cell_failure_probability
        v_ber = vendor.voltage_ber(op_point.vdd, self.nominal_vdd)
        t_ber = vendor.trcd_ber(op_point.trcd_ns, self.nominal_timing.trcd_ns)
        mechanisms = [(mechanism, ber, stream)
                      for mechanism, ber, stream in (("voltage", v_ber, 1), ("trcd", t_ber, 2))
                      if ber > 0.0]
        if not mechanisms:
            skip_stream(rng, num_bits)
            return np.empty(0, dtype=np.int64)

        position_chunks, probability_chunks = [], []
        for start, stop in iter_bit_chunks(num_bits):
            addresses = np.arange(start_bit_address + start, start_bit_address + stop,
                                  dtype=np.uint64)
            spatial = self._spatial_from_tables(addresses)
            weak_masks = []
            for _, ber, stream in mechanisms:
                weak_fraction = np.clip(ber / fail_prob * spatial, 0.0, 1.0)
                weakness = _hash_uniform(addresses, self.seed, stream=stream)
                weak_masks.append(weakness < weak_fraction)
            candidate = weak_masks[0]
            for mask in weak_masks[1:]:
                candidate = candidate | mask
            offsets = np.nonzero(candidate)[0]
            if offsets.size == 0:
                continue
            chunk_positions = offsets.astype(np.int64) + start
            stored = bit_at(chunk_positions)
            probabilities = np.zeros(offsets.size, dtype=np.float64)
            for weak, (mechanism, _, _) in zip(weak_masks, mechanisms):
                weights = vendor.flip_weight(stored, mechanism)
                probabilities += weak[offsets] * np.clip(fail_prob * weights, 0.0, 1.0)
            position_chunks.append(chunk_positions)
            probability_chunks.append(probabilities)

        if not position_chunks:
            skip_stream(rng, num_bits)
            return np.empty(0, dtype=np.int64)
        positions = np.concatenate(position_chunks)
        probabilities = np.concatenate(probability_chunks)
        return sample_flip_positions(rng, num_bits, positions, probabilities)

    def _burst_flip_positions(self, num_bits: int, start_bit_address: int,
                              op_point: DramOperatingPoint,
                              rng: np.random.Generator) -> np.ndarray:
        """Flat positions covered by the burst spans that fire on one read.

        Weak spans are deterministic per (seed, geometry): class ``k``'s
        aligned span indices hash (stream ``17 + k``) against a threshold
        derived from the operating point's BER and the profile's burst share.
        Each weak span in range consumes exactly one uniform — classes in
        profile order, spans ascending — and, when it fires, contributes
        every bit it covers (clipped to the run).  Positions may repeat when
        classes overlap; callers must apply them with XOR-toggle semantics.
        Returns an empty array when no profile is configured, drawing
        nothing.
        """
        profile = self.burst_profile
        if profile is None:
            return np.empty(0, dtype=np.int64)
        fail_prob = self.vendor.weak_cell_failure_probability
        base_ber = self.expected_ber(op_point)
        single = max(profile.single_fraction, 1e-12)
        burst_share = base_ber * (1.0 - profile.single_fraction) / single
        parts = []
        for k, ((span_bits, _), weight) in enumerate(
                zip(profile.span_weights, profile.normalized_weights())):
            span_bits = int(span_bits)
            fraction = float(np.clip(burst_share * weight / fail_prob, 0.0, 1.0))
            first = start_bit_address // span_bits
            last = (start_bit_address + num_bits - 1) // span_bits
            spans = np.arange(first, last + 1, dtype=np.uint64)
            weak = spans[hash_keys(spans, self.seed, stream=17 + k)
                         < uniform_threshold(fraction)].astype(np.int64)
            if weak.size == 0:
                continue
            hit = weak[rng.random(weak.size) < fail_prob]
            for span in hit.tolist():
                lo = max(span * span_bits - start_bit_address, 0)
                hi = min((span + 1) * span_bits - start_bit_address, num_bits)
                parts.append(np.arange(lo, hi, dtype=np.int64))
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def read_bits(self, stored_bits: np.ndarray, start_bit_address: int,
                  op_point: DramOperatingPoint,
                  rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Read a contiguous run of bits, applying per-access flips.

        ``stored_bits`` is a flat 0/1 array representing what was written; the
        returned array is what a read at ``op_point`` observes.
        """
        stored_bits = np.asarray(stored_bits).astype(bool).ravel()
        if start_bit_address < 0:
            raise ValueError("start_bit_address must be non-negative")
        end = start_bit_address + stored_bits.size
        if end > self.geometry.capacity_bits:
            raise ValueError(
                f"read of {stored_bits.size} bits at {start_bit_address} exceeds module capacity"
            )
        rng = rng or np.random.default_rng(self.seed)
        flips = self._flip_positions(stored_bits.size, start_bit_address, op_point, rng,
                                     lambda positions: stored_bits[positions])
        observed = stored_bits.copy()
        if flips.size:
            observed[flips] ^= True
        bursts = self._burst_flip_positions(stored_bits.size, start_bit_address,
                                            op_point, rng)
        if bursts.size:
            # XOR-toggle: overlapping span classes cancel, exactly like the
            # packed path's xor_mask_from_positions.
            np.bitwise_xor.at(observed, bursts, True)
        return observed

    def read_words(self, words: np.ndarray, bits_per_word: int, start_bit_address: int,
                   op_point: DramOperatingPoint,
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Read packed words (``bits_per_word`` stored bits each), applying flips.

        The packed equivalent of :meth:`read_bits`: word ``w``'s bit ``j``
        (LSB-first) lives at bit address ``start_bit_address + w*bits_per_word
        + j``.  Bit-exact with expanding the words to booleans and calling
        :meth:`read_bits` under the same RNG state.
        """
        words = np.asarray(words, dtype=np.uint64)
        if start_bit_address < 0:
            raise ValueError("start_bit_address must be non-negative")
        num_bits = words.size * bits_per_word
        if start_bit_address + num_bits > self.geometry.capacity_bits:
            raise ValueError(
                f"read of {num_bits} bits at {start_bit_address} exceeds module capacity"
            )
        rng = rng or np.random.default_rng(self.seed)
        flips = self._flip_positions(num_bits, start_bit_address, op_point, rng,
                                     make_bit_gather(words, bits_per_word))
        observed = words ^ xor_mask_from_positions(flips, words.size, bits_per_word)
        bursts = self._burst_flip_positions(num_bits, start_bit_address, op_point, rng)
        if bursts.size:
            observed = observed ^ xor_mask_from_positions(bursts, words.size,
                                                          bits_per_word)
        return observed

    # -- partition-level aggregate behaviour --------------------------------------------
    def partition_ber(self, op_point: DramOperatingPoint, bank: int,
                      sample_bits: int = 1 << 15, ones_fraction: float = 0.5) -> float:
        """Monte-Carlo estimate of one bank's BER (banks differ via spatial variation)."""
        if not 0 <= bank < self.geometry.num_banks:
            raise ValueError(f"bank {bank} out of range")
        start = bank * self.geometry.bank_size_bytes * 8
        addresses = np.arange(start, start + sample_bits, dtype=np.uint64)
        rng = np.random.default_rng(self.seed + bank + 1)
        stored = rng.random(sample_bits) < ones_fraction
        probabilities = self.flip_probabilities(addresses, stored, op_point)
        return float(probabilities.mean())

    def describe(self) -> str:
        return (
            f"ApproximateDram(vendor={self.vendor.name}, "
            f"capacity={self.geometry.capacity_bytes / (1 << 30):.1f}GiB, seed={self.seed})"
        )
