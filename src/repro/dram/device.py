"""Behavioural model of a real approximate DRAM module.

The paper's ground truth is a set of eight real DDR3/DDR4 modules operated
below nominal voltage and tRCD through SoftMC.  This module provides the
simulated equivalent: an :class:`ApproximateDram` whose bit flips are

* **deterministic in their spatial structure** — every cell has a fixed
  "weakness" value derived from a per-device seed, so the set of weak cells
  (and therefore which bitlines/wordlines are error-prone) is stable across
  reads, days and re-profiling, matching the temporal consistency the paper
  reports; and
* **stochastic per access** — a weak cell fails on any given access with the
  vendor's per-access failure probability, modulated by the stored data
  pattern (1→0 flips dominate under voltage reduction, 0→1 under tRCD
  reduction) and the cell's bitline/wordline failure multipliers.

Everything is generated lazily from counter-based hashing, so a multi-gigabyte
module costs no memory and reads of arbitrary addresses are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.dram.geometry import DramGeometry
from repro.dram.timing import NOMINAL_DDR4_TIMING, TimingParameters
from repro.dram.vendors import MAX_BER, VendorProfile, get_vendor
from repro.dram.voltage import NOMINAL_VDD, VoltageDomain


@dataclass(frozen=True)
class DramOperatingPoint:
    """A (supply voltage, timing parameters) pair the module is operated at."""

    voltage: VoltageDomain = field(default_factory=VoltageDomain)
    timing: TimingParameters = NOMINAL_DDR4_TIMING

    @property
    def vdd(self) -> float:
        return self.voltage.vdd

    @property
    def trcd_ns(self) -> float:
        return self.timing.trcd_ns

    @classmethod
    def nominal(cls) -> "DramOperatingPoint":
        return cls()

    @classmethod
    def from_reductions(cls, delta_vdd: float = 0.0, delta_trcd_ns: float = 0.0,
                        nominal_vdd: float = NOMINAL_VDD,
                        nominal_timing: TimingParameters = NOMINAL_DDR4_TIMING,
                        ) -> "DramOperatingPoint":
        voltage = VoltageDomain(vdd=nominal_vdd, nominal_vdd=nominal_vdd).reduced_by(delta_vdd)
        timing = nominal_timing.with_reduced_trcd(delta_trcd_ns)
        return cls(voltage=voltage, timing=timing)

    def describe(self) -> str:
        return f"VDD={self.vdd:.2f}V, tRCD={self.trcd_ns:.1f}ns"


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 mix function: uint64 -> well-mixed uint64."""
    z = (values + np.uint64(0x9E3779B97F4A7C15)).astype(np.uint64)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def _hash_uniform(indices: np.ndarray, seed: int, stream: int) -> np.ndarray:
    """Deterministic per-index uniforms in (0, 1), independent across streams."""
    indices = np.asarray(indices, dtype=np.uint64)
    mixed = _splitmix64(indices ^ np.uint64(seed * 0x9E3779B1 + stream * 0x85EBCA77))
    # 53-bit mantissa keeps the uniform well away from exactly 0 or 1.
    return (mixed >> np.uint64(11)).astype(np.float64) / float(1 << 53) + 1e-16


class ApproximateDram:
    """A DRAM module that can be operated below nominal voltage and latency."""

    def __init__(self, vendor: str = "A", geometry: Optional[DramGeometry] = None,
                 seed: int = 0, nominal_vdd: float = NOMINAL_VDD,
                 nominal_timing: TimingParameters = NOMINAL_DDR4_TIMING):
        self.vendor: VendorProfile = get_vendor(vendor) if isinstance(vendor, str) else vendor
        self.geometry = geometry or DramGeometry()
        self.seed = int(seed)
        self.nominal_vdd = float(nominal_vdd)
        self.nominal_timing = nominal_timing

    # -- aggregate behaviour ---------------------------------------------------------
    def expected_ber(self, op_point: DramOperatingPoint, ones_fraction: float = 0.5) -> float:
        """Expected module-wide BER at an operating point for a data pattern.

        ``ones_fraction`` is the fraction of stored bits that are 1 (0.5 for a
        random pattern, 1.0 for 0xFF, 0.0 for 0x00).
        """
        vendor = self.vendor
        v_ber = vendor.voltage_ber(op_point.vdd, self.nominal_vdd)
        t_ber = vendor.trcd_ber(op_point.trcd_ns, self.nominal_timing.trcd_ns)
        bias_v = vendor.one_to_zero_bias_voltage
        bias_t = vendor.one_to_zero_bias_trcd
        v_component = v_ber * 2.0 * (bias_v * ones_fraction + (1.0 - bias_v) * (1.0 - ones_fraction))
        t_component = t_ber * 2.0 * (bias_t * ones_fraction + (1.0 - bias_t) * (1.0 - ones_fraction))
        return float(np.clip(v_component + t_component, 0.0, MAX_BER))

    # -- per-bit flip probabilities ----------------------------------------------------
    def _spatial_multipliers(self, bit_addresses: np.ndarray) -> np.ndarray:
        """Per-bit log-normal multipliers from bitline and wordline variation."""
        geometry = self.geometry
        row_bits = geometry.row_size_bits
        bank_bits = geometry.bank_size_bytes * 8
        bank = bit_addresses // bank_bits
        within_bank = bit_addresses % bank_bits
        row = within_bank // row_bits
        bitline = within_bank % row_bits

        bitline_key = bank * np.uint64(row_bits) + bitline
        wordline_key = bank * np.uint64(geometry.rows_per_bank) + row

        sigma_b = self.vendor.bitline_variation
        sigma_w = self.vendor.wordline_variation
        u_b = _hash_uniform(bitline_key, self.seed, stream=11)
        u_w = _hash_uniform(wordline_key, self.seed, stream=13)
        # Inverse-normal via scipy-free approximation: use the probit from the
        # logistic approximation, adequate for generating log-normal spread.
        z_b = np.log(u_b / (1.0 - u_b)) * 0.5513  # logistic ~ N(0,1) scaling
        z_w = np.log(u_w / (1.0 - u_w)) * 0.5513
        multiplier = np.exp(sigma_b * z_b - 0.5 * sigma_b ** 2) * np.exp(
            sigma_w * z_w - 0.5 * sigma_w ** 2
        )
        return multiplier

    def flip_probabilities(self, bit_addresses: np.ndarray, stored_bits: np.ndarray,
                           op_point: DramOperatingPoint) -> np.ndarray:
        """Probability that each addressed bit reads back flipped."""
        bit_addresses = np.asarray(bit_addresses, dtype=np.uint64)
        stored_bits = np.asarray(stored_bits, dtype=bool)
        if bit_addresses.shape != stored_bits.shape:
            raise ValueError("bit_addresses and stored_bits must have the same shape")

        vendor = self.vendor
        fail_prob = vendor.weak_cell_failure_probability
        v_ber = vendor.voltage_ber(op_point.vdd, self.nominal_vdd)
        t_ber = vendor.trcd_ber(op_point.trcd_ns, self.nominal_timing.trcd_ns)

        spatial = self._spatial_multipliers(bit_addresses)

        probabilities = np.zeros(bit_addresses.shape, dtype=np.float64)
        for mechanism, ber, stream in (("voltage", v_ber, 1), ("trcd", t_ber, 2)):
            if ber <= 0.0:
                continue
            weak_fraction = np.clip(ber / fail_prob * spatial, 0.0, 1.0)
            weakness = _hash_uniform(bit_addresses, self.seed, stream=stream)
            is_weak = weakness < weak_fraction
            weights = vendor.flip_weight(stored_bits, mechanism)
            probabilities += is_weak * np.clip(fail_prob * weights, 0.0, 1.0)
        return np.clip(probabilities, 0.0, 1.0)

    def read_bits(self, stored_bits: np.ndarray, start_bit_address: int,
                  op_point: DramOperatingPoint,
                  rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Read a contiguous run of bits, applying per-access flips.

        ``stored_bits`` is a flat 0/1 array representing what was written; the
        returned array is what a read at ``op_point`` observes.
        """
        stored_bits = np.asarray(stored_bits).astype(bool).ravel()
        if start_bit_address < 0:
            raise ValueError("start_bit_address must be non-negative")
        end = start_bit_address + stored_bits.size
        if end > self.geometry.capacity_bits:
            raise ValueError(
                f"read of {stored_bits.size} bits at {start_bit_address} exceeds module capacity"
            )
        rng = rng or np.random.default_rng(self.seed)
        addresses = np.arange(start_bit_address, end, dtype=np.uint64)
        probabilities = self.flip_probabilities(addresses, stored_bits, op_point)
        flips = rng.random(stored_bits.shape) < probabilities
        return np.logical_xor(stored_bits, flips)

    # -- partition-level aggregate behaviour --------------------------------------------
    def partition_ber(self, op_point: DramOperatingPoint, bank: int,
                      sample_bits: int = 1 << 15, ones_fraction: float = 0.5) -> float:
        """Monte-Carlo estimate of one bank's BER (banks differ via spatial variation)."""
        if not 0 <= bank < self.geometry.num_banks:
            raise ValueError(f"bank {bank} out of range")
        start = bank * self.geometry.bank_size_bytes * 8
        addresses = np.arange(start, start + sample_bits, dtype=np.uint64)
        rng = np.random.default_rng(self.seed + bank + 1)
        stored = rng.random(sample_bits) < ones_fraction
        probabilities = self.flip_probabilities(addresses, stored, op_point)
        return float(probabilities.mean())

    def describe(self) -> str:
        return (
            f"ApproximateDram(vendor={self.vendor.name}, "
            f"capacity={self.geometry.capacity_bytes / (1 << 30):.1f}GiB, seed={self.seed})"
        )
