"""DRAM organization: channels, ranks, chips, banks, subarrays, rows, columns.

Mirrors the hierarchy in the paper's Section 2.2 / Figure 2.  The geometry is
used for three things: computing capacities, enumerating the partitions that
fine-grained mapping can target (module, bank or subarray granularity,
Section 3.4), and mapping linear bit addresses onto (bank, subarray, row,
column) coordinates so the spatially-correlated error models know which
bitline/wordline a given bit lives on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Tuple


class PartitionLevel(enum.Enum):
    """Granularities at which EDEN can apply distinct DRAM parameters."""

    MODULE = "module"
    BANK = "bank"
    SUBARRAY = "subarray"


@dataclass(frozen=True)
class DramGeometry:
    """Static shape of one DRAM module.

    Defaults describe a 4GB DDR4 module similar to the ones the paper
    profiles: 16 banks, 512-row subarrays, 8KB rows.
    """

    channels: int = 1
    ranks_per_channel: int = 1
    banks_per_rank: int = 16
    subarrays_per_bank: int = 32
    rows_per_subarray: int = 512
    row_size_bytes: int = 8192

    def __post_init__(self) -> None:
        for field_name in ("channels", "ranks_per_channel", "banks_per_rank",
                           "subarrays_per_bank", "rows_per_subarray", "row_size_bytes"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    # -- capacities ---------------------------------------------------------------
    @property
    def num_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def num_subarrays(self) -> int:
        return self.num_banks * self.subarrays_per_bank

    @property
    def rows_per_bank(self) -> int:
        return self.subarrays_per_bank * self.rows_per_subarray

    @property
    def row_size_bits(self) -> int:
        return self.row_size_bytes * 8

    @property
    def bank_size_bytes(self) -> int:
        return self.rows_per_bank * self.row_size_bytes

    @property
    def subarray_size_bytes(self) -> int:
        return self.rows_per_subarray * self.row_size_bytes

    @property
    def capacity_bytes(self) -> int:
        return self.num_banks * self.bank_size_bytes

    @property
    def capacity_bits(self) -> int:
        return self.capacity_bytes * 8

    # -- addressing ---------------------------------------------------------------
    def decompose_bit_address(self, bit_address: int) -> Tuple[int, int, int, int]:
        """Split a linear bit address into (bank, subarray, row, column-bit).

        Data is laid out row-major within a bank and banks are filled in order,
        matching the sequential placement the paper assumes for DNN tensors
        ("IFMs and weights are aligned in DRAM", Section 6.3).
        """
        if bit_address < 0 or bit_address >= self.capacity_bits:
            raise ValueError(
                f"bit address {bit_address} outside module of {self.capacity_bits} bits"
            )
        bank_bits = self.bank_size_bytes * 8
        bank, within_bank = divmod(bit_address, bank_bits)
        row, column = divmod(within_bank, self.row_size_bits)
        subarray, row_in_subarray = divmod(row, self.rows_per_subarray)
        return int(bank), int(subarray), int(row_in_subarray), int(column)

    def partitions(self, level: PartitionLevel) -> Iterator[Tuple[int, int]]:
        """Yield (partition_index, size_bytes) for every partition at ``level``."""
        if level is PartitionLevel.MODULE:
            yield 0, self.capacity_bytes
        elif level is PartitionLevel.BANK:
            for bank in range(self.num_banks):
                yield bank, self.bank_size_bytes
        elif level is PartitionLevel.SUBARRAY:
            for subarray in range(self.num_subarrays):
                yield subarray, self.subarray_size_bytes
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown partition level {level!r}")

    def num_partitions(self, level: PartitionLevel) -> int:
        return sum(1 for _ in self.partitions(level))

    def metadata_bytes(self, level: PartitionLevel, bits_per_partition: int = 12) -> int:
        """Memory-controller metadata needed to track per-partition parameters.

        The paper estimates ~32B for per-bank voltage steps, ~1KB for 2^10
        partitions and ~2KB for subarray granularity on an 8GB module
        (Section 5); we expose the same accounting, defaulting to 8 voltage
        bits + 4 tRCD bits per partition.
        """
        total_bits = self.num_partitions(level) * bits_per_partition
        return (total_bits + 7) // 8
