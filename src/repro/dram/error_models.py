"""EDEN's four DRAM error models (paper Section 4).

Each model is a parameterizable probabilistic description of where bit flips
land when DRAM is operated with reduced voltage/latency:

* **Error Model 0** — uniform-random flips across a bank; parameters ``P``
  (fraction of weak cells) and ``F`` (probability a weak cell fails on a
  given access).
* **Error Model 1** — flips concentrate on particular *bitlines* (sense-amp
  and column-distance variation).
* **Error Model 2** — flips concentrate on particular *wordlines* (row
  distance variation).
* **Error Model 3** — uniform-random but *data-dependent*: stored 1s and 0s
  fail with different probabilities (``FV1`` / ``FV0``).

Beyond the paper's four, **Error Model 4** (:class:`BurstErrorModel`) mixes
single-bit flips with aligned multi-bit *burst* spans (byte / 2-byte / 4-byte
symbol runs, per :class:`BurstProfile`) — the ~90%/10% single/burst split
real DRAM fleets report, and the fault class ECC codecs are designed around
(see :mod:`repro.core.ecc`).

A model exposes per-bit flip probabilities for a tensor laid out in DRAM
(:class:`DramLayout` maps flat bit indices to wordline/bitline coordinates),
can generate flip masks, report its expected BER for a data pattern, and can
be rescaled to a target BER — which is how EDEN's characterization sweeps
error rates without re-profiling the device.

Weak-cell *positions* are deterministic per model seed (they represent
manufacturing variation frozen at fabrication time); only the per-access
failure outcome is stochastic.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.dram.packed import (
    _hash_uniform,
    hash_keys,
    make_bit_gather,
    sample_flip_positions,
    scan_weak_positions,
    uniform_threshold,
    xor_mask_from_positions,
)

#: gathers stored bits: flat bit positions -> bool array of the bits' values.
#: Models whose failure probability is data-dependent call this only at their
#: (sparse) weak-cell positions.
BitGather = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class DramLayout:
    """How a linear run of bits maps onto DRAM rows.

    ``row_size_bits`` is the wordline length; ``start_bit`` offsets the tensor
    within the bank.  The paper notes tensors are stored contiguously, so MSBs
    of consecutive same-width values land on the same bitlines — the effect
    that makes Error Model 1 so damaging for FP32 data (Section 6.3).
    """

    row_size_bits: int = 65536
    start_bit: int = 0

    def __post_init__(self) -> None:
        if self.row_size_bits <= 0:
            raise ValueError("row_size_bits must be positive")
        if self.start_bit < 0:
            raise ValueError("start_bit must be non-negative")

    def coordinates(self, bit_indices: np.ndarray):
        """Return (wordline, bitline) arrays for flat tensor bit indices."""
        absolute = np.asarray(bit_indices, dtype=np.uint64) + np.uint64(self.start_bit)
        wordline = absolute // np.uint64(self.row_size_bits)
        bitline = absolute % np.uint64(self.row_size_bits)
        return wordline, bitline


#: per-entry and per-model bounds on the weak-position cache (positions are
#: int64; 1M entries is 8 MB — plenty for every tensor in the model zoo).
_MAX_CACHED_POSITIONS = 1 << 20
_MAX_CACHE_ENTRIES = 32


class ErrorModel:
    """Base class: per-bit flip probabilities + sampling + rescaling.

    Models are treated as immutable after construction (rescaling goes
    through :meth:`with_ber`, which returns a new instance) — the packed
    engine relies on this to cache weak-cell positions per tensor geometry.
    """

    #: integer id matching the paper's numbering (0..3)
    model_id: int = -1

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._position_cache: Dict[Tuple[int, int, int], np.ndarray] = {}

    # -- interface ---------------------------------------------------------------
    def flip_probabilities(self, stored_bits: np.ndarray, layout: DramLayout) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover - abstract

    def expected_ber(self, ones_fraction: float = 0.5) -> float:
        raise NotImplementedError  # pragma: no cover - abstract

    def with_ber(self, target_ber: float) -> "ErrorModel":
        """Return a copy rescaled so ``expected_ber(0.5) == target_ber``."""
        raise NotImplementedError  # pragma: no cover - abstract

    def parameters(self) -> Dict[str, float]:
        raise NotImplementedError  # pragma: no cover - abstract

    def _weak_positions(self, num_bits: int, layout: DramLayout) -> np.ndarray:
        """Flat positions of the model's deterministic weak cells.

        Subclasses locate them with pure integer hash-key compares (see
        :func:`repro.dram.packed.uniform_threshold`).  Data-independent, so
        the base class caches the result per tensor geometry.
        """
        raise NotImplementedError  # pragma: no cover - abstract

    def _failure_probabilities(self, positions: np.ndarray,
                               bit_at: BitGather) -> np.ndarray:
        """Per-access failure probability at each weak position.

        Data-dependent models gather the stored bits via ``bit_at`` (only at
        the sparse weak positions); the default is undefined.
        """
        raise NotImplementedError  # pragma: no cover - abstract

    def _packed_candidates(self, num_bits: int, layout: DramLayout,
                           bit_at: BitGather) -> Tuple[np.ndarray, np.ndarray]:
        """(positions, probabilities) of every bit with a non-zero flip chance.

        Weak positions are deterministic per (model, tensor size, layout), so
        repeated loads of same-geometry tensors — every batch of every sweep
        point — reuse the cached scan and only the (cheap, possibly
        data-dependent) probability gather runs per load.
        """
        key = (num_bits, layout.row_size_bits, layout.start_bit)
        positions = self._position_cache.get(key)
        if positions is None:
            positions = self._weak_positions(num_bits, layout)
            if positions.size <= _MAX_CACHED_POSITIONS:
                if len(self._position_cache) >= _MAX_CACHE_ENTRIES:
                    # FIFO-evict one entry; clearing wholesale would thrash
                    # once a network's load geometries exceed the capacity.
                    self._position_cache.pop(next(iter(self._position_cache)))
                self._position_cache[key] = positions
        return positions, self._failure_probabilities(positions, bit_at)

    # -- shared helpers ------------------------------------------------------------
    def flip_mask(self, stored_bits: np.ndarray, layout: DramLayout,
                  rng: np.random.Generator) -> np.ndarray:
        """Sample a boolean flip mask for one access of ``stored_bits``."""
        probabilities = self.flip_probabilities(stored_bits, layout)
        return rng.random(stored_bits.shape) < probabilities

    def flip_word_mask(self, words: np.ndarray, bits_per_word: int, layout: DramLayout,
                       rng: np.random.Generator) -> np.ndarray:
        """Sample a packed uint64 XOR mask for one access of ``words``.

        Word ``w``'s bit ``j`` (LSB-first) is flat bit ``w*bits_per_word + j``
        — the same convention :func:`repro.dram.injection.flip_bits_in_words`
        uses.  For a fixed RNG state the mask is bit-exact with
        :meth:`flip_mask` on the boolean expansion of ``words``, and the RNG
        is left in the same state, but no per-bit boolean or probability
        arrays are ever materialized and uniforms are only drawn at weak
        cells.
        """
        words = np.asarray(words, dtype=np.uint64)
        num_bits = words.size * bits_per_word
        bit_at = make_bit_gather(words, bits_per_word)
        try:
            positions, probabilities = self._packed_candidates(num_bits, layout, bit_at)
        except NotImplementedError:
            # Subclasses written against the original contract (only
            # flip_probabilities) still work, at boolean-expansion speed.
            stored_bits = bit_at(np.arange(num_bits, dtype=np.int64))
            flips = np.nonzero(self.flip_mask(stored_bits, layout, rng))[0]
            return xor_mask_from_positions(flips, words.size, bits_per_word)
        flips = sample_flip_positions(rng, num_bits, positions, probabilities)
        return xor_mask_from_positions(flips, words.size, bits_per_word)

    def name(self) -> str:
        return f"ErrorModel{self.model_id}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{k}={v:.3g}" for k, v in self.parameters().items())
        return f"{self.name()}({params})"


def _clip_probability(value: float) -> float:
    return float(np.clip(value, 0.0, 1.0))


def _grouped_weak_positions(num_bits: int, layout: DramLayout, seed: int, *,
                            by_wordline: bool, group_stream: int, cell_stream: int,
                            group_fraction: float, fraction_on_weak: float,
                            fraction_on_normal: float) -> np.ndarray:
    """Weak-cell scan shared by the bitline- and wordline-clustered models.

    A cell's weakness threshold depends on whether its group (bitline or
    wordline, i.e. absolute index modulo / divided by the row length) hashed
    below the group fraction.
    """
    group_threshold = uniform_threshold(group_fraction)
    on_weak = np.uint64(uniform_threshold(fraction_on_weak))
    on_normal = np.uint64(uniform_threshold(fraction_on_normal))
    row_bits = np.uint64(layout.row_size_bits)

    def weak_in_chunk(absolute: np.ndarray) -> np.ndarray:
        group_key = absolute // row_bits if by_wordline else absolute % row_bits
        weak_group = hash_keys(group_key, seed, stream=group_stream) < group_threshold
        cell_threshold = np.where(weak_group, on_weak, on_normal)
        return hash_keys(absolute, seed, stream=cell_stream) < cell_threshold

    return scan_weak_positions(num_bits, layout.start_bit, weak_in_chunk)


def _rescale_grouped(group_fraction: float, p_weak: float, p_normal: float,
                     failure: float, scale: float, target_ber: float):
    """Rescale a two-group (weak/normal) model to a target aggregate BER.

    Scales the per-group weak-cell fractions first; if the weak group's
    fraction saturates at 1.0 the residual is absorbed into the per-access
    failure probability, and finally into the normal group — so even large
    targets (the top of the paper's Figure 8 sweep) are met while preserving
    as much of the weak/normal contrast as possible.
    """
    p_weak = min(1.0, p_weak * scale)
    p_normal = min(1.0, p_normal * scale)

    def aggregate(pw, pn, f):
        return (group_fraction * pw + (1.0 - group_fraction) * pn) * f

    achieved = aggregate(p_weak, p_normal, failure)
    if achieved < target_ber * 0.999 and achieved > 0:
        failure = min(1.0, failure * target_ber / achieved)
        achieved = aggregate(p_weak, p_normal, failure)
    if achieved < target_ber * 0.999:
        # Last resort: raise the normal group until the aggregate is met.
        remaining = target_ber / max(failure, 1e-12) - group_fraction * p_weak
        p_normal = min(1.0, max(p_normal, remaining / max(1.0 - group_fraction, 1e-12)))
    return p_weak, p_normal, failure


class UniformErrorModel(ErrorModel):
    """Error Model 0: uniformly distributed weak cells."""

    model_id = 0

    def __init__(self, weak_cell_fraction: float, failure_probability: float, seed: int = 0):
        super().__init__(seed)
        self.weak_cell_fraction = _clip_probability(weak_cell_fraction)
        self.failure_probability = _clip_probability(failure_probability)

    def flip_probabilities(self, stored_bits: np.ndarray, layout: DramLayout) -> np.ndarray:
        stored_bits = np.asarray(stored_bits)
        indices = np.arange(stored_bits.size, dtype=np.uint64) + np.uint64(layout.start_bit)
        weakness = _hash_uniform(indices, self.seed, stream=101)
        weak = weakness < self.weak_cell_fraction
        return (weak * self.failure_probability).reshape(stored_bits.shape)

    def _weak_positions(self, num_bits: int, layout: DramLayout) -> np.ndarray:
        threshold = uniform_threshold(self.weak_cell_fraction)
        return scan_weak_positions(
            num_bits, layout.start_bit,
            lambda absolute: hash_keys(absolute, self.seed, stream=101) < threshold,
        )

    def _failure_probabilities(self, positions: np.ndarray,
                               bit_at: BitGather) -> np.ndarray:
        return np.full(positions.size, self.failure_probability)

    def expected_ber(self, ones_fraction: float = 0.5) -> float:
        return self.weak_cell_fraction * self.failure_probability

    def with_ber(self, target_ber: float) -> "UniformErrorModel":
        if target_ber < 0:
            raise ValueError("target BER must be non-negative")
        if target_ber == 0:
            return UniformErrorModel(0.0, 0.0, seed=self.seed)
        # Keep F fixed and scale P, saturating F upward if P would exceed 1.
        failure = self.failure_probability or 0.5
        weak = target_ber / failure
        if weak > 1.0:
            weak, failure = 1.0, min(1.0, target_ber)
        return UniformErrorModel(weak, failure, seed=self.seed)

    def parameters(self) -> Dict[str, float]:
        return {"P": self.weak_cell_fraction, "F": self.failure_probability}


class BitlineErrorModel(ErrorModel):
    """Error Model 1: weak cells cluster on a subset of bitlines."""

    model_id = 1

    def __init__(self, weak_bitline_fraction: float, weak_cell_fraction_on_weak: float,
                 weak_cell_fraction_on_normal: float, failure_probability: float,
                 seed: int = 0):
        super().__init__(seed)
        self.weak_bitline_fraction = _clip_probability(weak_bitline_fraction)
        self.weak_cell_fraction_on_weak = _clip_probability(weak_cell_fraction_on_weak)
        self.weak_cell_fraction_on_normal = _clip_probability(weak_cell_fraction_on_normal)
        self.failure_probability = _clip_probability(failure_probability)

    def _per_bit_weak_fraction(self, stored_bits: np.ndarray, layout: DramLayout) -> np.ndarray:
        indices = np.arange(np.asarray(stored_bits).size, dtype=np.uint64)
        _, bitline = layout.coordinates(indices)
        bitline_weakness = _hash_uniform(bitline, self.seed, stream=201)
        weak_bitline = bitline_weakness < self.weak_bitline_fraction
        return np.where(weak_bitline, self.weak_cell_fraction_on_weak,
                        self.weak_cell_fraction_on_normal)

    def flip_probabilities(self, stored_bits: np.ndarray, layout: DramLayout) -> np.ndarray:
        stored_bits = np.asarray(stored_bits)
        weak_fraction = self._per_bit_weak_fraction(stored_bits, layout)
        indices = np.arange(stored_bits.size, dtype=np.uint64) + np.uint64(layout.start_bit)
        weakness = _hash_uniform(indices, self.seed, stream=202)
        weak = weakness < weak_fraction
        return (weak * self.failure_probability).reshape(stored_bits.shape)

    def _weak_positions(self, num_bits: int, layout: DramLayout) -> np.ndarray:
        return _grouped_weak_positions(
            num_bits, layout, self.seed, by_wordline=False,
            group_stream=201, cell_stream=202,
            group_fraction=self.weak_bitline_fraction,
            fraction_on_weak=self.weak_cell_fraction_on_weak,
            fraction_on_normal=self.weak_cell_fraction_on_normal,
        )

    def _failure_probabilities(self, positions: np.ndarray,
                               bit_at: BitGather) -> np.ndarray:
        return np.full(positions.size, self.failure_probability)

    def expected_ber(self, ones_fraction: float = 0.5) -> float:
        mean_weak = (
            self.weak_bitline_fraction * self.weak_cell_fraction_on_weak
            + (1.0 - self.weak_bitline_fraction) * self.weak_cell_fraction_on_normal
        )
        return mean_weak * self.failure_probability

    def with_ber(self, target_ber: float) -> "BitlineErrorModel":
        current = self.expected_ber()
        if target_ber <= 0:
            return BitlineErrorModel(self.weak_bitline_fraction, 0.0, 0.0, 0.0, seed=self.seed)
        if current <= 0:
            return BitlineErrorModel(self.weak_bitline_fraction, target_ber, target_ber,
                                     1.0, seed=self.seed)
        scale = target_ber / current
        p_weak, p_normal, failure = _rescale_grouped(
            self.weak_bitline_fraction, self.weak_cell_fraction_on_weak,
            self.weak_cell_fraction_on_normal, self.failure_probability, scale, target_ber,
        )
        return BitlineErrorModel(self.weak_bitline_fraction, p_weak, p_normal, failure,
                                 seed=self.seed)

    def parameters(self) -> Dict[str, float]:
        return {
            "weak_bitline_fraction": self.weak_bitline_fraction,
            "PB_weak": self.weak_cell_fraction_on_weak,
            "PB_normal": self.weak_cell_fraction_on_normal,
            "FB": self.failure_probability,
        }


class WordlineErrorModel(ErrorModel):
    """Error Model 2: weak cells cluster on a subset of wordlines (rows)."""

    model_id = 2

    def __init__(self, weak_wordline_fraction: float, weak_cell_fraction_on_weak: float,
                 weak_cell_fraction_on_normal: float, failure_probability: float,
                 seed: int = 0):
        super().__init__(seed)
        self.weak_wordline_fraction = _clip_probability(weak_wordline_fraction)
        self.weak_cell_fraction_on_weak = _clip_probability(weak_cell_fraction_on_weak)
        self.weak_cell_fraction_on_normal = _clip_probability(weak_cell_fraction_on_normal)
        self.failure_probability = _clip_probability(failure_probability)

    def flip_probabilities(self, stored_bits: np.ndarray, layout: DramLayout) -> np.ndarray:
        stored_bits = np.asarray(stored_bits)
        indices = np.arange(stored_bits.size, dtype=np.uint64)
        wordline, _ = layout.coordinates(indices)
        wordline_weakness = _hash_uniform(wordline, self.seed, stream=301)
        weak_wordline = wordline_weakness < self.weak_wordline_fraction
        weak_fraction = np.where(weak_wordline, self.weak_cell_fraction_on_weak,
                                 self.weak_cell_fraction_on_normal)
        cell_weakness = _hash_uniform(indices + np.uint64(layout.start_bit), self.seed, stream=302)
        weak = cell_weakness < weak_fraction
        return (weak * self.failure_probability).reshape(stored_bits.shape)

    def _weak_positions(self, num_bits: int, layout: DramLayout) -> np.ndarray:
        return _grouped_weak_positions(
            num_bits, layout, self.seed, by_wordline=True,
            group_stream=301, cell_stream=302,
            group_fraction=self.weak_wordline_fraction,
            fraction_on_weak=self.weak_cell_fraction_on_weak,
            fraction_on_normal=self.weak_cell_fraction_on_normal,
        )

    def _failure_probabilities(self, positions: np.ndarray,
                               bit_at: BitGather) -> np.ndarray:
        return np.full(positions.size, self.failure_probability)

    def expected_ber(self, ones_fraction: float = 0.5) -> float:
        mean_weak = (
            self.weak_wordline_fraction * self.weak_cell_fraction_on_weak
            + (1.0 - self.weak_wordline_fraction) * self.weak_cell_fraction_on_normal
        )
        return mean_weak * self.failure_probability

    def with_ber(self, target_ber: float) -> "WordlineErrorModel":
        current = self.expected_ber()
        if target_ber <= 0:
            return WordlineErrorModel(self.weak_wordline_fraction, 0.0, 0.0, 0.0, seed=self.seed)
        if current <= 0:
            return WordlineErrorModel(self.weak_wordline_fraction, target_ber, target_ber,
                                      1.0, seed=self.seed)
        scale = target_ber / current
        p_weak, p_normal, failure = _rescale_grouped(
            self.weak_wordline_fraction, self.weak_cell_fraction_on_weak,
            self.weak_cell_fraction_on_normal, self.failure_probability, scale, target_ber,
        )
        return WordlineErrorModel(self.weak_wordline_fraction, p_weak, p_normal, failure,
                                  seed=self.seed)

    def parameters(self) -> Dict[str, float]:
        return {
            "weak_wordline_fraction": self.weak_wordline_fraction,
            "PW_weak": self.weak_cell_fraction_on_weak,
            "PW_normal": self.weak_cell_fraction_on_normal,
            "FW": self.failure_probability,
        }


class DataDependentErrorModel(ErrorModel):
    """Error Model 3: uniform weak cells whose failure depends on the stored value."""

    model_id = 3

    def __init__(self, weak_cell_fraction: float, failure_probability_one: float,
                 failure_probability_zero: float, seed: int = 0):
        super().__init__(seed)
        self.weak_cell_fraction = _clip_probability(weak_cell_fraction)
        self.failure_probability_one = _clip_probability(failure_probability_one)
        self.failure_probability_zero = _clip_probability(failure_probability_zero)

    def flip_probabilities(self, stored_bits: np.ndarray, layout: DramLayout) -> np.ndarray:
        stored_bits = np.asarray(stored_bits).astype(bool)
        indices = np.arange(stored_bits.size, dtype=np.uint64) + np.uint64(layout.start_bit)
        weakness = _hash_uniform(indices, self.seed, stream=401).reshape(stored_bits.shape)
        weak = weakness < self.weak_cell_fraction
        failure = np.where(stored_bits, self.failure_probability_one,
                           self.failure_probability_zero)
        return weak * failure

    def _weak_positions(self, num_bits: int, layout: DramLayout) -> np.ndarray:
        threshold = uniform_threshold(self.weak_cell_fraction)
        return scan_weak_positions(
            num_bits, layout.start_bit,
            lambda absolute: hash_keys(absolute, self.seed, stream=401) < threshold,
        )

    def _failure_probabilities(self, positions: np.ndarray,
                               bit_at: BitGather) -> np.ndarray:
        # Data-dependent: gather the stored bit at each weak cell per load.
        stored = bit_at(positions)
        return np.where(stored, self.failure_probability_one,
                        self.failure_probability_zero)

    def expected_ber(self, ones_fraction: float = 0.5) -> float:
        mean_failure = (
            ones_fraction * self.failure_probability_one
            + (1.0 - ones_fraction) * self.failure_probability_zero
        )
        return self.weak_cell_fraction * mean_failure

    def with_ber(self, target_ber: float) -> "DataDependentErrorModel":
        current = self.expected_ber()
        if target_ber <= 0:
            return DataDependentErrorModel(0.0, 0.0, 0.0, seed=self.seed)
        if current <= 0:
            return DataDependentErrorModel(target_ber, 1.0, 1.0, seed=self.seed)
        scale = target_ber / current
        weak = min(1.0, self.weak_cell_fraction * scale)
        # If P saturates, absorb the remaining scale into the failure probs.
        residual = (target_ber / weak) / max(current / self.weak_cell_fraction, 1e-30)
        return DataDependentErrorModel(
            weak,
            min(1.0, self.failure_probability_one * residual),
            min(1.0, self.failure_probability_zero * residual),
            seed=self.seed,
        )

    def parameters(self) -> Dict[str, float]:
        return {
            "P": self.weak_cell_fraction,
            "FV1": self.failure_probability_one,
            "FV0": self.failure_probability_zero,
        }


@dataclass(frozen=True)
class BurstProfile:
    """Mixture weights converting a scalar BER into singles + burst spans.

    ``single_fraction`` of the raw BER lands as independent single-bit flips;
    the remainder is split across aligned burst classes per ``span_weights``,
    a tuple of ``(span_bits, weight)`` pairs.  A burst flips *every* bit of
    one aligned span (absolute bit index // span_bits), modelling the
    multi-symbol upsets that ECC symbol codes are sized against.  Weights are
    normalized internally, so only their ratios matter.
    """

    single_fraction: float = 0.9
    span_weights: Tuple[Tuple[int, float], ...] = ((8, 0.5), (16, 0.3), (32, 0.2))

    def __post_init__(self) -> None:
        if not 0.0 <= self.single_fraction <= 1.0:
            raise ValueError("single_fraction must be within [0, 1]")
        for span_bits, weight in self.span_weights:
            if int(span_bits) <= 0:
                raise ValueError("span sizes must be positive bit counts")
            if weight < 0:
                raise ValueError("span weights must be non-negative")
        total = sum(weight for _, weight in self.span_weights)
        if self.single_fraction < 1.0 and total <= 0:
            raise ValueError("burst share is non-zero but no span class has "
                             "positive weight")

    def normalized_weights(self) -> Tuple[float, ...]:
        """Return the span-class weights normalized to sum to 1 (or empty)."""
        total = sum(weight for _, weight in self.span_weights)
        if total <= 0:
            return tuple(0.0 for _ in self.span_weights)
        return tuple(weight / total for _, weight in self.span_weights)


class BurstErrorModel(ErrorModel):
    """Error Model 4 (extension): single-bit flips plus aligned burst spans.

    A scalar ``ber`` is split by a :class:`BurstProfile` into a single-bit
    component (drawn exactly like :class:`UniformErrorModel`, hash stream
    501) and per-class burst components (streams ``502 + k``).  Burst *span
    positions* are deterministic per (seed, layout) — a span is "weak" when
    its aligned index hashes below the class threshold — and each weak span
    fires per access with probability ``failure_probability``, flipping every
    bit it covers via XOR so bursts compose with (and can cancel against)
    single-bit flips, exactly the same in the boolean reference and packed
    paths.

    Constructor parameters: ``ber`` is the target aggregate bit error rate,
    ``profile`` the mixture (defaults to 90% singles, 8/16/32-bit spans at
    0.5/0.3/0.2), ``failure_probability`` the per-access firing probability
    shared by weak cells and weak spans, and ``seed`` freezes the weak
    cell/span positions.
    """

    model_id = 4

    def __init__(self, ber: float, profile: Optional[BurstProfile] = None,
                 failure_probability: float = 0.5, seed: int = 0):
        super().__init__(seed)
        if ber < 0:
            raise ValueError("ber must be non-negative")
        self.ber = float(ber)
        self.profile = profile if profile is not None else BurstProfile()
        self.failure_probability = _clip_probability(failure_probability)
        if self.failure_probability <= 0.0:
            raise ValueError("failure_probability must be positive")
        failure = self.failure_probability
        self.single_weak_fraction = _clip_probability(
            self.ber * self.profile.single_fraction / failure)
        burst_share = self.ber * (1.0 - self.profile.single_fraction)
        self.span_weak_fractions = tuple(
            _clip_probability(burst_share * weight / failure)
            for weight in self.profile.normalized_weights())
        self._span_cache: Dict[Tuple[int, int], list] = {}

    # -- weak cells (single-bit phase, identical structure to model 0) -------------
    def _weak_positions(self, num_bits: int, layout: DramLayout) -> np.ndarray:
        threshold = uniform_threshold(self.single_weak_fraction)
        return scan_weak_positions(
            num_bits, layout.start_bit,
            lambda absolute: hash_keys(absolute, self.seed, stream=501) < threshold,
        )

    def _failure_probabilities(self, positions: np.ndarray,
                               bit_at: BitGather) -> np.ndarray:
        return np.full(positions.size, self.failure_probability)

    # -- weak spans (burst phase) --------------------------------------------------
    def _weak_spans(self, num_bits: int, layout: DramLayout) -> list:
        """Per span class: (lo, hi) bit ranges of deterministic weak spans.

        Spans are aligned on absolute bit addresses (``absolute //
        span_bits``), clipped to the tensor's bit range, and returned in
        ascending order.  Cached per tensor geometry, like weak cells.
        """
        key = (num_bits, layout.start_bit)
        cached = self._span_cache.get(key)
        if cached is not None:
            return cached
        start = layout.start_bit
        cached = []
        for k, ((span_bits, _), fraction) in enumerate(
                zip(self.profile.span_weights, self.span_weak_fractions)):
            span_bits = int(span_bits)
            first = start // span_bits
            last = (start + num_bits - 1) // span_bits
            spans = np.arange(first, last + 1, dtype=np.uint64)
            weak = spans[hash_keys(spans, self.seed, stream=502 + k)
                         < uniform_threshold(fraction)].astype(np.int64)
            lo = np.maximum(weak * span_bits - start, 0)
            hi = np.minimum((weak + 1) * span_bits - start, num_bits)
            cached.append((lo, hi))
        if len(self._span_cache) >= _MAX_CACHE_ENTRIES:
            self._span_cache.pop(next(iter(self._span_cache)))
        self._span_cache[key] = cached
        return cached

    def _fired_spans(self, num_bits: int, layout: DramLayout,
                     rng: np.random.Generator) -> list:
        """(lo, hi) ranges of the weak spans that fire on this access.

        Consumes exactly one uniform per weak span — classes in profile
        order, spans ascending — so the boolean and packed paths stay on the
        same stream by construction.
        """
        fired = []
        for los, his in self._weak_spans(num_bits, layout):
            if los.size == 0:
                continue
            hit = rng.random(los.size) < self.failure_probability
            fired.extend(zip(los[hit].tolist(), his[hit].tolist()))
        return fired

    # -- sampling ------------------------------------------------------------------
    def flip_probabilities(self, stored_bits: np.ndarray, layout: DramLayout) -> np.ndarray:
        """Approximate per-bit flip marginals (singles + covering spans).

        Span/single overlaps cancel under XOR, a second-order effect this
        summary ignores; sampling goes through :meth:`flip_mask` /
        :meth:`flip_word_mask`, which are exact.
        """
        stored_bits = np.asarray(stored_bits)
        indices = np.arange(stored_bits.size, dtype=np.uint64) + np.uint64(layout.start_bit)
        weak = _hash_uniform(indices, self.seed, stream=501) < self.single_weak_fraction
        probabilities = weak * self.failure_probability
        for k, ((span_bits, _), fraction) in enumerate(
                zip(self.profile.span_weights, self.span_weak_fractions)):
            span_keys = indices // np.uint64(int(span_bits))
            weak_span = _hash_uniform(span_keys, self.seed, stream=502 + k) < fraction
            probabilities = probabilities + weak_span * self.failure_probability
        return np.minimum(probabilities, 1.0).reshape(stored_bits.shape)

    def flip_mask(self, stored_bits: np.ndarray, layout: DramLayout,
                  rng: np.random.Generator) -> np.ndarray:
        """Boolean reference path: per-bit draws, then XOR whole fired spans."""
        stored_bits = np.asarray(stored_bits)
        num_bits = stored_bits.size
        indices = np.arange(num_bits, dtype=np.uint64) + np.uint64(layout.start_bit)
        weak = _hash_uniform(indices, self.seed, stream=501) < self.single_weak_fraction
        mask = rng.random(num_bits) < weak * self.failure_probability
        for lo, hi in self._fired_spans(num_bits, layout, rng):
            mask[lo:hi] ^= True
        return mask.reshape(stored_bits.shape)

    def flip_word_mask(self, words: np.ndarray, bits_per_word: int, layout: DramLayout,
                       rng: np.random.Generator) -> np.ndarray:
        """Packed path: sparse single-bit sampling, then sparse span XORs."""
        words = np.asarray(words, dtype=np.uint64)
        num_bits = words.size * bits_per_word
        bit_at = make_bit_gather(words, bits_per_word)
        positions, probabilities = self._packed_candidates(num_bits, layout, bit_at)
        flips = sample_flip_positions(rng, num_bits, positions, probabilities)
        xor = xor_mask_from_positions(flips, words.size, bits_per_word)
        spans = self._fired_spans(num_bits, layout, rng)
        if spans:
            span_positions = np.concatenate(
                [np.arange(lo, hi, dtype=np.int64) for lo, hi in spans])
            xor ^= xor_mask_from_positions(span_positions, words.size, bits_per_word)
        return xor

    # -- rescaling / reporting -----------------------------------------------------
    def expected_ber(self, ones_fraction: float = 0.5) -> float:
        per_bit = self.single_weak_fraction + sum(self.span_weak_fractions)
        return min(1.0, per_bit * self.failure_probability)

    def with_ber(self, target_ber: float) -> "BurstErrorModel":
        if target_ber < 0:
            raise ValueError("target BER must be non-negative")
        return BurstErrorModel(target_ber, profile=self.profile,
                               failure_probability=self.failure_probability,
                               seed=self.seed)

    def parameters(self) -> Dict[str, float]:
        return {
            "ber": self.ber,
            "F": self.failure_probability,
            "single_fraction": self.profile.single_fraction,
        }


#: model id -> class; 0..3 match the paper's numbering, 4 is the burst
#: extension used by the ECC characterization axis.
ERROR_MODEL_CLASSES = {
    0: UniformErrorModel,
    1: BitlineErrorModel,
    2: WordlineErrorModel,
    3: DataDependentErrorModel,
    4: BurstErrorModel,
}


def make_error_model(model_id: int, target_ber: float, seed: int = 0) -> ErrorModel:
    """Construct an error model of the requested type with a given aggregate BER.

    Uses representative shape parameters (moderate locality, balanced data
    dependence) so sweeps over BER exercise each model's characteristic
    spatial/data structure.
    """
    if target_ber < 0:
        raise ValueError("target BER must be non-negative")
    if model_id == 0:
        return UniformErrorModel(min(1.0, 2.0 * target_ber), 0.5, seed=seed).with_ber(target_ber)
    if model_id == 1:
        base = BitlineErrorModel(0.05, 0.4, 0.002, 0.5, seed=seed)
        return base.with_ber(target_ber)
    if model_id == 2:
        base = WordlineErrorModel(0.05, 0.4, 0.002, 0.5, seed=seed)
        return base.with_ber(target_ber)
    if model_id == 3:
        base = DataDependentErrorModel(min(1.0, 2.0 * target_ber), 0.8, 0.2, seed=seed)
        return base.with_ber(target_ber)
    if model_id == 4:
        return BurstErrorModel(target_ber, seed=seed)
    raise ValueError(f"unknown error model id {model_id}; expected 0..4")
