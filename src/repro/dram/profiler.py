"""SoftMC-style profiling of an approximate DRAM device (paper Sections 3.4, 6.1).

The paper characterizes each module by writing known data patterns into rows,
reading them back with reduced voltage / tRCD many times, and recording which
bits flip.  :class:`SoftMCProfiler` does the same against the behavioural
:class:`~repro.dram.device.ApproximateDram`: it produces a
:class:`ProfileResult` holding per-bit flip counts for each data pattern,
which :mod:`repro.dram.fitting` turns into fitted error models and
:mod:`repro.dram.partitions` turns into per-partition operating points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dram.device import ApproximateDram, DramOperatingPoint

#: the data patterns the paper sweeps in Figure 5.
DEFAULT_PATTERNS = (0xFF, 0xCC, 0xAA, 0x00)


def pattern_bits(pattern_byte: int, num_bits: int) -> np.ndarray:
    """Expand a repeating byte pattern into a flat bit array (MSB first)."""
    if not 0 <= pattern_byte <= 0xFF:
        raise ValueError(f"pattern byte must be in [0, 255], got {pattern_byte}")
    byte_bits = np.array([(pattern_byte >> (7 - i)) & 1 for i in range(8)], dtype=bool)
    repeats = (num_bits + 7) // 8
    return np.tile(byte_bits, repeats)[:num_bits]


@dataclass
class PatternObservation:
    """Flip observations for one written data pattern."""

    pattern_byte: int
    stored_bits: np.ndarray          # what was written (bool, flat)
    flip_counts: np.ndarray          # how many of the reads flipped each bit
    trials: int

    @property
    def num_bits(self) -> int:
        return int(self.stored_bits.size)

    @property
    def ber(self) -> float:
        return float(self.flip_counts.sum() / (self.num_bits * self.trials))

    def ber_by_stored_value(self) -> Tuple[float, float]:
        """(BER of stored 1s, BER of stored 0s) — the Error Model 3 signal."""
        ones = self.stored_bits
        zeros = ~ones
        ber_one = (
            float(self.flip_counts[ones].sum() / (ones.sum() * self.trials))
            if ones.any() else 0.0
        )
        ber_zero = (
            float(self.flip_counts[zeros].sum() / (zeros.sum() * self.trials))
            if zeros.any() else 0.0
        )
        return ber_one, ber_zero


@dataclass
class ProfileResult:
    """Everything observed while profiling one operating point of one device."""

    op_point: DramOperatingPoint
    row_size_bits: int
    start_bit: int
    trials: int
    observations: List[PatternObservation] = field(default_factory=list)

    # -- aggregate statistics -------------------------------------------------------
    @property
    def num_bits(self) -> int:
        return self.observations[0].num_bits if self.observations else 0

    @property
    def total_accesses_per_bit(self) -> int:
        return self.trials * len(self.observations)

    def overall_ber(self) -> float:
        if not self.observations:
            return 0.0
        return float(np.mean([obs.ber for obs in self.observations]))

    def ber_for_pattern(self, pattern_byte: int) -> float:
        for obs in self.observations:
            if obs.pattern_byte == pattern_byte:
                return obs.ber
        raise KeyError(f"pattern 0x{pattern_byte:02X} was not profiled")

    def combined_flip_counts(self) -> np.ndarray:
        """Per-bit flip counts summed over all patterns."""
        counts = np.zeros(self.num_bits, dtype=np.int64)
        for obs in self.observations:
            counts += obs.flip_counts
        return counts

    def per_bitline_flip_rate(self) -> np.ndarray:
        """Mean flip rate per bitline (column within a row)."""
        counts = self.combined_flip_counts()
        num_rows = max(1, self.num_bits // self.row_size_bits)
        usable = num_rows * self.row_size_bits
        grid = counts[:usable].reshape(num_rows, self.row_size_bits)
        return grid.mean(axis=0) / self.total_accesses_per_bit

    def per_wordline_flip_rate(self) -> np.ndarray:
        """Mean flip rate per wordline (row)."""
        counts = self.combined_flip_counts()
        num_rows = max(1, self.num_bits // self.row_size_bits)
        usable = num_rows * self.row_size_bits
        grid = counts[:usable].reshape(num_rows, self.row_size_bits)
        return grid.mean(axis=1) / self.total_accesses_per_bit

    def per_bitline_row_support(self) -> np.ndarray:
        """Number of distinct rows in which each bitline saw at least one flip.

        Used by the Error-Model-1 fit: a genuinely weak bitline fails in
        multiple rows, whereas an isolated weak cell only contributes to one
        row, so requiring multi-row support prevents the bitline model from
        overfitting sparse profiles.
        """
        counts = self.combined_flip_counts()
        num_rows = max(1, self.num_bits // self.row_size_bits)
        usable = num_rows * self.row_size_bits
        grid = counts[:usable].reshape(num_rows, self.row_size_bits)
        return (grid > 0).sum(axis=0)

    def ber_by_stored_value(self) -> Tuple[float, float]:
        """(BER of stored 1s, BER of stored 0s), averaged over patterns with both."""
        ones_rates, zero_rates = [], []
        for obs in self.observations:
            ber_one, ber_zero = obs.ber_by_stored_value()
            if obs.stored_bits.any():
                ones_rates.append(ber_one)
            if (~obs.stored_bits).any():
                zero_rates.append(ber_zero)
        ber_one = float(np.mean(ones_rates)) if ones_rates else 0.0
        ber_zero = float(np.mean(zero_rates)) if zero_rates else 0.0
        return ber_one, ber_zero

    def weak_cell_mask(self) -> np.ndarray:
        """Bits that flipped at least once across all reads."""
        return self.combined_flip_counts() > 0


class SoftMCProfiler:
    """Profiles an :class:`ApproximateDram` the way SoftMC profiles real chips."""

    def __init__(self, device: ApproximateDram, rows_to_profile: int = 4,
                 bank: int = 0, trials: int = 8, seed: int = 0):
        if rows_to_profile <= 0:
            raise ValueError("rows_to_profile must be positive")
        if trials <= 0:
            raise ValueError("trials must be positive")
        if not 0 <= bank < device.geometry.num_banks:
            raise ValueError(f"bank {bank} out of range for device")
        self.device = device
        self.rows_to_profile = int(rows_to_profile)
        self.bank = int(bank)
        self.trials = int(trials)
        self.seed = int(seed)

    @property
    def bits_per_profile(self) -> int:
        return self.rows_to_profile * self.device.geometry.row_size_bits

    def profile(self, op_point: DramOperatingPoint,
                patterns: Sequence[int] = DEFAULT_PATTERNS) -> ProfileResult:
        """Write each pattern, read it back ``trials`` times, record flips."""
        geometry = self.device.geometry
        start_bit = self.bank * geometry.bank_size_bytes * 8
        num_bits = self.bits_per_profile
        result = ProfileResult(
            op_point=op_point,
            row_size_bits=geometry.row_size_bits,
            start_bit=start_bit,
            trials=self.trials,
        )
        for pattern_index, pattern in enumerate(patterns):
            stored = pattern_bits(pattern, num_bits)
            flip_counts = np.zeros(num_bits, dtype=np.int64)
            for trial in range(self.trials):
                rng = np.random.default_rng(
                    self.seed * 1_000_003 + pattern_index * 1_009 + trial
                )
                read = self.device.read_bits(stored, start_bit, op_point, rng=rng)
                flip_counts += (read != stored)
            result.observations.append(
                PatternObservation(pattern, stored, flip_counts, self.trials)
            )
        return result

    def sweep_voltage(self, voltages: Sequence[float], trcd_ns: Optional[float] = None,
                      patterns: Sequence[int] = DEFAULT_PATTERNS
                      ) -> Dict[float, ProfileResult]:
        """Profile a list of supply voltages (at nominal or given tRCD)."""
        results: Dict[float, ProfileResult] = {}
        nominal_trcd = self.device.nominal_timing.trcd_ns
        for vdd in voltages:
            op_point = DramOperatingPoint.from_reductions(
                delta_vdd=self.device.nominal_vdd - vdd,
                delta_trcd_ns=0.0 if trcd_ns is None else nominal_trcd - trcd_ns,
                nominal_vdd=self.device.nominal_vdd,
                nominal_timing=self.device.nominal_timing,
            )
            results[vdd] = self.profile(op_point, patterns)
        return results

    def sweep_trcd(self, trcd_values_ns: Sequence[float],
                   vdd: Optional[float] = None,
                   patterns: Sequence[int] = DEFAULT_PATTERNS
                   ) -> Dict[float, ProfileResult]:
        """Profile a list of tRCD values (at nominal or given voltage)."""
        results: Dict[float, ProfileResult] = {}
        for trcd in trcd_values_ns:
            op_point = DramOperatingPoint.from_reductions(
                delta_vdd=0.0 if vdd is None else self.device.nominal_vdd - vdd,
                delta_trcd_ns=self.device.nominal_timing.trcd_ns - trcd,
                nominal_vdd=self.device.nominal_vdd,
                nominal_timing=self.device.nominal_timing,
            )
            results[trcd] = self.profile(op_point, patterns)
        return results
