"""Systolic-array accelerator simulator (SCALE-Sim stand-in, part 2).

Given an array configuration (PE grid, SRAM buffer, dataflow, DRAM interface)
and a sequence of layer shapes, the simulator produces per-layer and
whole-network results: compute cycles, SRAM traffic, DRAM traffic, whether
the layer is compute- or bandwidth-bound, execution time and DRAM energy.
These are the quantities the paper extracts from SCALE-Sim + DRAMPower for
its Eyeriss/TPU evaluation (Section 7.2):

* reducing DRAM supply voltage cuts DRAM energy roughly with VDD² while
  leaving execution time untouched;
* reducing tRCD gives the accelerators *no* speedup because their streaming,
  double-buffered access patterns are bandwidth- (not latency-) bound — the
  simulator reproduces this by charging DRAM time from bandwidth, with the
  activation latency only appearing once per tile prefetch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dram.energy import DramEnergyModel, TrafficProfile
from repro.dram.timing import NOMINAL_DDR4_TIMING, TimingParameters
from repro.dram.voltage import NOMINAL_VDD, VoltageDomain
from repro.systolic.dataflow import Dataflow, FoldCounts, LayerShape, fold_layer


@dataclass(frozen=True)
class SystolicArrayConfig:
    """Static description of one systolic-array accelerator."""

    name: str
    array_rows: int
    array_cols: int
    sram_bytes: int
    dataflow: Dataflow
    frequency_mhz: float = 700.0
    memory_type: str = "DDR4-2400"
    dram_bandwidth_gbps: float = 19.2       # one DDR4-2400 x64 channel
    weight_bits: int = 8                    # the paper uses the int8 built-in models

    def __post_init__(self) -> None:
        if self.array_rows <= 0 or self.array_cols <= 0:
            raise ValueError("array dimensions must be positive")
        if self.sram_bytes <= 0:
            raise ValueError("sram_bytes must be positive")
        if self.frequency_mhz <= 0 or self.dram_bandwidth_gbps <= 0:
            raise ValueError("frequency and bandwidth must be positive")

    @property
    def num_pes(self) -> int:
        return self.array_rows * self.array_cols

    @property
    def cycle_ns(self) -> float:
        return 1e3 / self.frequency_mhz

    @property
    def bytes_per_cycle(self) -> float:
        """DRAM bytes deliverable per accelerator cycle at the peak bandwidth."""
        return self.dram_bandwidth_gbps * self.cycle_ns


#: The paper's Table 6 accelerator configurations.
EYERISS_SYSTOLIC = SystolicArrayConfig(
    name="eyeriss", array_rows=12, array_cols=14, sram_bytes=324 * 1024,
    dataflow=Dataflow.OUTPUT_STATIONARY, frequency_mhz=200.0,
    memory_type="DDR4-2400", dram_bandwidth_gbps=12.8,
)
TPU_SYSTOLIC = SystolicArrayConfig(
    name="tpu", array_rows=256, array_cols=256, sram_bytes=24 * 1024 * 1024,
    dataflow=Dataflow.WEIGHT_STATIONARY, frequency_mhz=700.0,
    memory_type="DDR4-2400", dram_bandwidth_gbps=19.2,
)
SYSTOLIC_PRESETS: Dict[str, SystolicArrayConfig] = {
    "eyeriss": EYERISS_SYSTOLIC,
    "tpu": TPU_SYSTOLIC,
}


@dataclass
class LayerResult:
    """Simulation outcome for one layer."""

    shape: LayerShape
    folds: FoldCounts
    compute_cycles: int
    dram_read_bytes: float
    dram_write_bytes: float
    sram_read_bytes: float
    sram_write_bytes: float
    dram_cycles: int
    utilization: float

    @property
    def total_cycles(self) -> int:
        """Double buffering overlaps compute and DRAM; the slower one dominates."""
        return max(self.compute_cycles, self.dram_cycles)

    @property
    def memory_bound(self) -> bool:
        return self.dram_cycles > self.compute_cycles

    @property
    def dram_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes


@dataclass
class NetworkResult:
    """Simulation outcome for a whole network on one accelerator."""

    config: SystolicArrayConfig
    layers: List[LayerResult]
    voltage: VoltageDomain
    timing: TimingParameters

    @property
    def total_cycles(self) -> int:
        return sum(layer.total_cycles for layer in self.layers)

    @property
    def compute_cycles(self) -> int:
        return sum(layer.compute_cycles for layer in self.layers)

    @property
    def execution_time_ms(self) -> float:
        return self.total_cycles * self.config.cycle_ns * 1e-6

    @property
    def dram_read_bytes(self) -> float:
        return sum(layer.dram_read_bytes for layer in self.layers)

    @property
    def dram_write_bytes(self) -> float:
        return sum(layer.dram_write_bytes for layer in self.layers)

    @property
    def dram_traffic(self) -> TrafficProfile:
        row_bytes = 8192.0
        activations = (self.dram_read_bytes + self.dram_write_bytes) / row_bytes
        return TrafficProfile(
            reads_bytes=self.dram_read_bytes,
            writes_bytes=self.dram_write_bytes,
            row_activations=activations,
            execution_time_ms=self.execution_time_ms,
        )

    def dram_energy_nj(self, memory_type: Optional[str] = None) -> float:
        model = DramEnergyModel(memory_type or self.config.memory_type)
        return model.energy(self.dram_traffic, voltage=self.voltage).total_nj

    @property
    def average_utilization(self) -> float:
        if not self.layers:
            return 0.0
        macs = sum(layer.shape.macs for layer in self.layers)
        weighted = sum(layer.utilization * layer.shape.macs for layer in self.layers)
        return weighted / macs if macs else 0.0


class SystolicSimulator:
    """Analytical per-layer simulation of a systolic-array accelerator."""

    def __init__(self, config: SystolicArrayConfig):
        self.config = config

    # -- per-layer modelling -------------------------------------------------------------
    def simulate_layer(self, shape: LayerShape,
                       timing: TimingParameters = NOMINAL_DDR4_TIMING) -> LayerResult:
        cfg = self.config
        folds = fold_layer(shape, cfg.array_rows, cfg.array_cols, cfg.dataflow)
        bits = cfg.weight_bits

        ifm_bytes = shape.bytes(shape.ifm_elements, bits)
        weight_bytes = shape.bytes(shape.weight_elements, bits)
        ofm_bytes = shape.bytes(shape.ofm_elements, bits)

        # SRAM traffic: every operand enters the array once per fold in which
        # it participates; partial sums are written back once per fold.
        sram_reads = (ifm_bytes * folds.col_folds + weight_bytes * folds.row_folds)
        sram_writes = ofm_bytes * folds.total_folds

        # DRAM traffic: the stationary operand is fetched exactly once (each
        # of its tiles is used in exactly one fold); a moving operand that
        # fits in the double-buffered SRAM is also fetched once, while one
        # that does not fit is re-fetched for every fold of the orthogonal
        # dimension that reuses it — the way SCALE-Sim charges spills.
        half_sram = cfg.sram_bytes / 2
        if cfg.dataflow is Dataflow.WEIGHT_STATIONARY:
            weight_refetch = 1
            ifm_refetch = 1 if ifm_bytes <= half_sram else folds.col_folds
        elif cfg.dataflow is Dataflow.INPUT_STATIONARY:
            ifm_refetch = 1
            weight_refetch = 1 if weight_bytes <= half_sram else folds.col_folds
        else:  # OUTPUT_STATIONARY: both operands stream through the array
            ifm_refetch = 1 if ifm_bytes <= half_sram else folds.col_folds
            weight_refetch = 1 if weight_bytes <= half_sram else folds.row_folds
        dram_reads = ifm_bytes * ifm_refetch + weight_bytes * weight_refetch
        dram_writes = float(ofm_bytes)

        # DRAM time: streaming transfers run at the peak bandwidth; each tile
        # prefetch additionally pays one row activation (tRCD), which is why
        # reduced tRCD barely moves the needle for these accelerators.
        transfer_cycles = (dram_reads + dram_writes) / cfg.bytes_per_cycle
        activation_cycles = folds.total_folds * timing.trcd_ns / cfg.cycle_ns
        dram_cycles = int(math.ceil(transfer_cycles + activation_cycles))

        active_pes = min(shape.rows * shape.cols, cfg.num_pes)
        utilization = min(1.0, shape.macs / max(folds.compute_cycles * cfg.num_pes, 1))

        return LayerResult(
            shape=shape, folds=folds, compute_cycles=folds.compute_cycles,
            dram_read_bytes=float(dram_reads), dram_write_bytes=dram_writes,
            sram_read_bytes=float(sram_reads), sram_write_bytes=float(sram_writes),
            dram_cycles=dram_cycles, utilization=utilization,
        )

    # -- whole-network modelling ------------------------------------------------------------
    def simulate(self, shapes: Sequence[LayerShape],
                 voltage: Optional[VoltageDomain] = None,
                 timing: TimingParameters = NOMINAL_DDR4_TIMING) -> NetworkResult:
        voltage = voltage or VoltageDomain(vdd=NOMINAL_VDD)
        layers = [self.simulate_layer(shape, timing=timing) for shape in shapes]
        return NetworkResult(config=self.config, layers=layers, voltage=voltage,
                             timing=timing)

    def energy_reduction(self, shapes: Sequence[LayerShape],
                         reduced_voltage: VoltageDomain,
                         timing: TimingParameters = NOMINAL_DDR4_TIMING) -> float:
        """Fractional DRAM energy reduction of a reduced-VDD run vs nominal."""
        nominal = self.simulate(shapes, timing=timing)
        reduced = self.simulate(shapes, voltage=reduced_voltage, timing=timing)
        base = nominal.dram_energy_nj()
        if base <= 0:
            return 0.0
        return 1.0 - reduced.dram_energy_nj() / base

    def speedup_from_trcd(self, shapes: Sequence[LayerShape],
                          reduced_timing: TimingParameters) -> float:
        """Speedup of a reduced-tRCD run vs nominal (≈1.0 for these accelerators)."""
        nominal = self.simulate(shapes)
        reduced = self.simulate(shapes, timing=reduced_timing)
        if reduced.total_cycles <= 0:
            return 1.0
        return nominal.total_cycles / reduced.total_cycles
