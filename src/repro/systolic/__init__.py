"""Systolic-array DNN accelerator simulator (SCALE-Sim stand-in).

The paper's accelerator evaluation (Section 7.2, Table 6) runs AlexNet and
YOLO-Tiny through SCALE-Sim configured as Eyeriss (12x14 PEs, 324KB SRAM,
output-stationary) and as a TPU (256x256 PEs, 24MB SRAM, weight-stationary),
then feeds the memory traces into DRAMPower.  This package provides the same
pipeline analytically:

* :mod:`repro.systolic.dataflow`  — layer GEMM shapes, dataflow fold math and
  the paper's AlexNet / YOLO-Tiny layer dimensions;
* :mod:`repro.systolic.simulator` — per-layer compute/DRAM cycle and traffic
  model, Eyeriss/TPU presets, energy-reduction and tRCD-speedup helpers.
"""

from repro.systolic.dataflow import (
    ALEXNET_LAYER_SHAPES,
    Dataflow,
    FoldCounts,
    LayerShape,
    PAPER_ACCELERATOR_WORKLOADS,
    YOLO_TINY_LAYER_SHAPES,
    fold_layer,
    shapes_from_network,
)
from repro.systolic.simulator import (
    EYERISS_SYSTOLIC,
    LayerResult,
    NetworkResult,
    SYSTOLIC_PRESETS,
    SystolicArrayConfig,
    SystolicSimulator,
    TPU_SYSTOLIC,
)

__all__ = [
    "ALEXNET_LAYER_SHAPES",
    "Dataflow",
    "FoldCounts",
    "LayerShape",
    "PAPER_ACCELERATOR_WORKLOADS",
    "YOLO_TINY_LAYER_SHAPES",
    "fold_layer",
    "shapes_from_network",
    "EYERISS_SYSTOLIC",
    "LayerResult",
    "NetworkResult",
    "SYSTOLIC_PRESETS",
    "SystolicArrayConfig",
    "SystolicSimulator",
    "TPU_SYSTOLIC",
]
