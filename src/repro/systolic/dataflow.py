"""Systolic-array dataflows and layer shapes (SCALE-Sim stand-in, part 1).

The paper evaluates EDEN on two DNN accelerators through SCALE-Sim: Eyeriss
(a 12x14 PE array with a 324KB SRAM buffer) and a TPU-like design (256x256
PEs, 24MB SRAM), each running its accelerator-specific dataflow (Table 6).
This module provides the workload-side abstractions: the layer shapes the
array executes (convolutions and fully-connected layers lowered to GEMMs) and
the dataflow folding arithmetic that determines how many passes over the
array a layer requires.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.nn.layers import Conv2D, DepthwiseSeparableConv, Linear
from repro.nn.network import Network


class Dataflow(enum.Enum):
    """Mapping strategies for a systolic array (SCALE-Sim's os/ws/is)."""

    OUTPUT_STATIONARY = "os"
    WEIGHT_STATIONARY = "ws"
    INPUT_STATIONARY = "is"

    @classmethod
    def from_name(cls, name: str) -> "Dataflow":
        lowered = name.lower()
        for flow in cls:
            if lowered in (flow.value, flow.name.lower()):
                return flow
        raise ValueError(f"unknown dataflow {name!r}; expected one of "
                         f"{[flow.value for flow in cls]}")


@dataclass(frozen=True)
class LayerShape:
    """One layer lowered to the GEMM the systolic array executes.

    ``rows`` (M) is the number of output pixels, ``cols`` (N) the number of
    output channels/filters and ``inner`` (K) the reduction dimension
    (input channels x kernel height x kernel width).
    """

    name: str
    rows: int          # M: output feature-map pixels
    cols: int          # N: output channels
    inner: int         # K: reduction length per output element

    def __post_init__(self) -> None:
        if min(self.rows, self.cols, self.inner) <= 0:
            raise ValueError("layer GEMM dimensions must be positive")

    # -- tensor footprints (elements) ------------------------------------------------
    @property
    def macs(self) -> int:
        return self.rows * self.cols * self.inner

    @property
    def ifm_elements(self) -> int:
        return self.rows * self.inner

    @property
    def weight_elements(self) -> int:
        return self.cols * self.inner

    @property
    def ofm_elements(self) -> int:
        return self.rows * self.cols

    def bytes(self, elements: int, bits: int = 8) -> int:
        return int(math.ceil(elements * bits / 8))

    @classmethod
    def from_conv(cls, name: str, in_channels: int, out_channels: int,
                  kernel: Tuple[int, int], output_hw: Tuple[int, int]) -> "LayerShape":
        oh, ow = output_hw
        kh, kw = kernel
        return cls(name=name, rows=max(1, oh * ow), cols=max(1, out_channels),
                   inner=max(1, in_channels * kh * kw))

    @classmethod
    def from_linear(cls, name: str, in_features: int, out_features: int) -> "LayerShape":
        return cls(name=name, rows=1, cols=max(1, out_features), inner=max(1, in_features))


@dataclass(frozen=True)
class FoldCounts:
    """How many array passes a layer needs under a given dataflow."""

    row_folds: int           # folds along the array's row dimension
    col_folds: int           # folds along the array's column dimension
    cycles_per_fold: int     # pipeline fill + stream cycles of one pass

    @property
    def total_folds(self) -> int:
        return self.row_folds * self.col_folds

    @property
    def compute_cycles(self) -> int:
        return self.total_folds * self.cycles_per_fold


def fold_layer(shape: LayerShape, array_rows: int, array_cols: int,
               dataflow: Dataflow) -> FoldCounts:
    """SCALE-Sim style analytical fold/cycle count for one layer.

    * output stationary: the array holds an ``array_rows x array_cols`` tile
      of output elements; each pass streams the full reduction (``inner``)
      through the array, plus the skew of filling and draining the pipeline;
    * weight stationary: the array holds an ``array_rows x array_cols`` tile
      of the weight matrix (reduction x filters); each pass streams all
      ``rows`` output pixels through it;
    * input stationary: symmetric to weight stationary with IFM and weights
      swapped.
    """
    if array_rows <= 0 or array_cols <= 0:
        raise ValueError("array dimensions must be positive")
    skew = array_rows + array_cols - 2

    if dataflow is Dataflow.OUTPUT_STATIONARY:
        row_folds = math.ceil(shape.rows / array_rows)
        col_folds = math.ceil(shape.cols / array_cols)
        cycles_per_fold = shape.inner + skew + 1
    elif dataflow is Dataflow.WEIGHT_STATIONARY:
        row_folds = math.ceil(shape.inner / array_rows)
        col_folds = math.ceil(shape.cols / array_cols)
        cycles_per_fold = shape.rows + skew + 1
    else:  # INPUT_STATIONARY
        row_folds = math.ceil(shape.inner / array_rows)
        col_folds = math.ceil(shape.rows / array_cols)
        cycles_per_fold = shape.cols + skew + 1
    return FoldCounts(row_folds=row_folds, col_folds=col_folds,
                      cycles_per_fold=cycles_per_fold)


def shapes_from_network(network: Network, batch_size: int = 1) -> List[LayerShape]:
    """Lower every conv / linear layer of an in-repo network to a GEMM shape."""
    shapes: List[LayerShape] = []
    specs = {spec.name: spec for spec in network.data_type_specs(dtype_bits=32)}
    for layer in network.leaf_layers():
        if isinstance(layer, Conv2D):
            ifm_spec = specs.get(f"{layer.name}.ifm")
            if ifm_spec is not None:
                input_shape = (batch_size,) + tuple(ifm_spec.shape[1:])
            else:  # pragma: no cover - conv layers always register an IFM spec
                input_shape = (batch_size,) + network.input_shape
            _, _, oh, ow = layer.output_shape(input_shape)
            shapes.append(LayerShape.from_conv(
                layer.name, layer.in_channels, layer.out_channels,
                layer.kernel_size, (oh, ow)))
        elif isinstance(layer, Linear):
            shapes.append(LayerShape.from_linear(
                layer.name, layer.in_features, layer.out_features))
    return shapes


#: GEMM shapes of the paper's two accelerator workloads (Section 7.2), taken
#: from the published AlexNet and YOLO(-Tiny) layer dimensions at 224x224 /
#: 416x416 inputs.  They feed the Eyeriss/TPU benchmarks, where the absolute
#: footprints matter; the in-repo analogues are used by the unit tests.
ALEXNET_LAYER_SHAPES: List[LayerShape] = [
    LayerShape("conv1", rows=55 * 55, cols=96, inner=3 * 11 * 11),
    LayerShape("conv2", rows=27 * 27, cols=256, inner=96 * 5 * 5),
    LayerShape("conv3", rows=13 * 13, cols=384, inner=256 * 3 * 3),
    LayerShape("conv4", rows=13 * 13, cols=384, inner=384 * 3 * 3),
    LayerShape("conv5", rows=13 * 13, cols=256, inner=384 * 3 * 3),
    LayerShape("fc6", rows=1, cols=4096, inner=9216),
    LayerShape("fc7", rows=1, cols=4096, inner=4096),
    LayerShape("fc8", rows=1, cols=1000, inner=4096),
]

YOLO_TINY_LAYER_SHAPES: List[LayerShape] = [
    LayerShape("conv1", rows=416 * 416, cols=16, inner=3 * 3 * 3),
    LayerShape("conv2", rows=208 * 208, cols=32, inner=16 * 3 * 3),
    LayerShape("conv3", rows=104 * 104, cols=64, inner=32 * 3 * 3),
    LayerShape("conv4", rows=52 * 52, cols=128, inner=64 * 3 * 3),
    LayerShape("conv5", rows=26 * 26, cols=256, inner=128 * 3 * 3),
    LayerShape("conv6", rows=13 * 13, cols=512, inner=256 * 3 * 3),
    LayerShape("conv7", rows=13 * 13, cols=1024, inner=512 * 3 * 3),
    LayerShape("conv8", rows=13 * 13, cols=256, inner=1024 * 1 * 1),
    LayerShape("conv9", rows=13 * 13, cols=512, inner=256 * 3 * 3),
    LayerShape("conv10", rows=13 * 13, cols=255, inner=512 * 1 * 1),
]

PAPER_ACCELERATOR_WORKLOADS = {
    "alexnet": ALEXNET_LAYER_SHAPES,
    "yolo-tiny": YOLO_TINY_LAYER_SHAPES,
}
