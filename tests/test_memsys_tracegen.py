"""Unit and property tests for DNN address-trace generation (repro.memsys.tracegen)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.traffic import WorkloadDescriptor, workload_for
from repro.memsys.cache import CacheHierarchy
from repro.memsys.controller import ControllerConfig, run_trace
from repro.memsys.request import AddressMapperConfig
from repro.memsys.tracegen import (
    AddressSpaceLayout,
    TensorRegion,
    flatten,
    trace_from_network,
    trace_from_workload,
)
from repro.nn.models import build_model_with_dataset
from repro.nn.tensor import DataKind


@pytest.fixture(scope="module")
def lenet():
    network, _, _ = build_model_with_dataset("lenet", seed=0)
    return network


class TestTensorRegionAndLayout:
    def test_region_validation(self):
        with pytest.raises(ValueError):
            TensorRegion(name="w", kind=DataKind.WEIGHT, base_address=-1, size_bytes=10)
        with pytest.raises(ValueError):
            TensorRegion(name="w", kind=DataKind.WEIGHT, base_address=0, size_bytes=0)

    def test_line_addresses_cover_region(self):
        region = TensorRegion(name="w", kind=DataKind.WEIGHT, base_address=128, size_bytes=300)
        lines = list(region.line_addresses(64))
        assert lines[0] == 128
        assert lines[-1] < region.end_address
        assert all(b - a == 64 for a, b in zip(lines, lines[1:]))

    def test_layout_allocations_do_not_overlap(self):
        layout = AddressSpaceLayout()
        regions = [layout.allocate(f"t{i}", DataKind.WEIGHT, 1000 + 37 * i) for i in range(20)]
        for earlier, later in zip(regions, regions[1:]):
            assert earlier.end_address <= later.base_address

    def test_layout_is_idempotent_per_name(self):
        layout = AddressSpaceLayout()
        first = layout.allocate("w", DataKind.WEIGHT, 100)
        second = layout.allocate("w", DataKind.WEIGHT, 100)
        assert first is second

    def test_layout_alignment(self):
        layout = AddressSpaceLayout(alignment=4096)
        layout.allocate("a", DataKind.WEIGHT, 10)
        region = layout.allocate("b", DataKind.IFM, 10)
        assert region.base_address % 4096 == 0

    def test_footprint_grows_with_allocations(self):
        layout = AddressSpaceLayout()
        assert layout.footprint_bytes == 0
        layout.allocate("a", DataKind.WEIGHT, 10_000)
        assert layout.footprint_bytes >= 10_000

    def test_invalid_alignment_rejected(self):
        with pytest.raises(ValueError):
            AddressSpaceLayout(alignment=0)


class TestNetworkTraces:
    def test_one_trace_per_parameterized_layer(self, lenet):
        traces = trace_from_network(lenet)
        assert len(traces) >= 3
        assert all(trace.accesses for trace in traces)

    def test_traces_contain_reads_and_writes(self, lenet):
        traces = trace_from_network(lenet)
        assert all(trace.reads > 0 for trace in traces)
        assert any(trace.writes > 0 for trace in traces)

    def test_random_fraction_adds_reads(self, lenet):
        base = flatten(trace_from_network(lenet, random_access_fraction=0.0))
        noisy = flatten(trace_from_network(lenet, random_access_fraction=0.3))
        assert len(noisy) > len(base)

    def test_random_fraction_validation(self, lenet):
        with pytest.raises(ValueError):
            trace_from_network(lenet, random_access_fraction=1.5)

    def test_int8_trace_is_smaller_than_fp32(self, lenet):
        fp32 = flatten(trace_from_network(lenet, dtype_bits=32))
        int8 = flatten(trace_from_network(lenet, dtype_bits=8))
        assert len(int8) < len(fp32)

    def test_traces_are_deterministic_for_fixed_seed(self, lenet):
        first = flatten(trace_from_network(lenet, random_access_fraction=0.1, seed=3))
        second = flatten(trace_from_network(lenet, random_access_fraction=0.1, seed=3))
        assert first == second

    def test_trace_feeds_cache_hierarchy_and_controller(self, lenet):
        accesses = flatten(trace_from_network(lenet, dtype_bits=8))[:3000]
        hierarchy = CacheHierarchy(cycles_per_access=4.0)
        filtered = hierarchy.filter_trace(accesses)
        result = run_trace(filtered.dram_requests,
                           ControllerConfig(mapper=AddressMapperConfig(channels=1)))
        assert len(result.completed) == len(filtered.dram_requests)


class TestWorkloadTraces:
    def test_trace_is_bounded(self):
        workload = workload_for("vgg16")
        trace = trace_from_workload(workload, max_accesses=5000)
        assert 0 < len(trace) <= 5000

    def test_read_write_mix_tracks_descriptor(self):
        workload = workload_for("resnet101")
        trace = trace_from_workload(workload, max_accesses=8000)
        writes = sum(1 for _, is_write in trace if is_write)
        expected_write_fraction = workload.write_bytes / workload.total_bytes
        assert writes / len(trace) == pytest.approx(expected_write_fraction, abs=0.05)

    def test_latency_bound_workload_has_more_scattered_reads(self):
        yolo = trace_from_workload(workload_for("yolo-tiny"), max_accesses=4000, seed=0)
        squeeze = trace_from_workload(workload_for("squeezenet1.1"), max_accesses=4000, seed=0)

        def sequential_fraction(trace):
            reads = [addr for addr, is_write in trace if not is_write]
            sequential = sum(1 for a, b in zip(reads, reads[1:]) if b - a == 64)
            return sequential / max(len(reads) - 1, 1)

        assert sequential_fraction(yolo) < sequential_fraction(squeeze)

    def test_invalid_max_accesses(self):
        with pytest.raises(ValueError):
            trace_from_workload(workload_for("alexnet"), max_accesses=0)

    def test_empty_workload_yields_empty_trace(self):
        empty = WorkloadDescriptor(name="empty", weight_bytes=0, ifm_bytes=0,
                                   ofm_bytes=0, macs=0, random_access_fraction=0.0)
        assert trace_from_workload(empty) == []

    def test_deterministic_for_seed(self):
        workload = workload_for("alexnet")
        assert (trace_from_workload(workload, max_accesses=2000, seed=7)
                == trace_from_workload(workload, max_accesses=2000, seed=7))

    def test_addresses_are_line_aligned_and_non_negative(self):
        trace = trace_from_workload(workload_for("yolo"), max_accesses=3000)
        assert all(address >= 0 and address % 64 == 0 for address, _ in trace)


class TestTraceProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        weight_mb=st.floats(min_value=0.5, max_value=64.0),
        ifm_mb=st.floats(min_value=0.5, max_value=64.0),
        random_fraction=st.floats(min_value=0.0, max_value=0.8),
        max_accesses=st.integers(min_value=10, max_value=3000),
    )
    def test_workload_trace_invariants(self, weight_mb, ifm_mb, random_fraction, max_accesses):
        workload = WorkloadDescriptor(
            name="hypothesis", weight_bytes=weight_mb * (1 << 20),
            ifm_bytes=ifm_mb * (1 << 20), ofm_bytes=ifm_mb * (1 << 20),
            macs=1e6, random_access_fraction=random_fraction,
        )
        trace = trace_from_workload(workload, max_accesses=max_accesses)
        assert len(trace) <= max_accesses
        assert all(address >= 0 for address, _ in trace)
        assert all(isinstance(is_write, bool) for _, is_write in trace)

    @settings(max_examples=20, deadline=None)
    @given(sizes=st.lists(st.integers(min_value=1, max_value=1 << 20), min_size=1, max_size=30))
    def test_layout_regions_are_disjoint(self, sizes):
        layout = AddressSpaceLayout()
        regions = [layout.allocate(f"r{i}", DataKind.IFM, size) for i, size in enumerate(sizes)]
        intervals = sorted((r.base_address, r.end_address) for r in regions)
        for (_, end), (start, _) in zip(intervals, intervals[1:]):
            assert end <= start
