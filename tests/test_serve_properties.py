"""Property-based registry invariants + serving-stack concurrency stress.

Two satellite suites of the HTTP-serving PR:

* **SessionRegistry invariants under random programs** — seeded random
  sequences of ``get_or_compile`` / ``get`` / ``add`` operations (plain
  pytest, hypothesis-style: the program is a pure function of its seed)
  must never exceed ``memory_budget_bytes`` while more than one entry is
  cached, never evict the entry an operation just inserted, and keep the
  hit/miss/compilation/eviction/stored-byte counters reconciled at every
  step.
* **Concurrency stress** — N producer threads driving a gateway through
  the loadgen harness must produce results tobytes-identical to serial
  dispatch (in-process MicroBatcher and multi-process PlanDispatcher
  alike), and ``close()`` racing in-flight flushes must never deadlock
  (regression for the PR-4 shutdown-sentinel fix).
"""

import threading
import time

import numpy as np
import pytest

from repro.dram.error_models import make_error_model
from repro.dram.injection import BitErrorInjector
from repro.engine import InferenceSession
from repro.nn.layers import Linear
from repro.nn.network import Network
from repro.nn.tensor import DataKind
from repro.serve import ServeConfig, ServingGateway, SessionRegistry, \
    session_store_bytes
from repro.serve import loadgen


def _weight_injector(ber, seed=0):
    return BitErrorInjector(make_error_model(0, ber, seed=seed), bits=32,
                            data_kinds={DataKind.WEIGHT}, seed=seed)


def _tiny_network(name, width, classes=3):
    return Network(name, [Linear("fc", width, classes)], (width,), classes)


class TestRegistryInvariants:
    """Seeded random register/get/evict programs against a live registry."""

    OPS_PER_PROGRAM = 60

    def _check_invariants(self, registry, budget, lookups, inserted_key):
        stats = registry.stats
        entries = registry.sessions()
        # Counters reconcile: every lookup is exactly one hit or miss, and
        # entries only enter via a compilation and leave via an eviction.
        assert stats["hits"] + stats["misses"] == lookups
        assert stats["compilations"] - stats["evictions"] == len(registry)
        # Byte accounting matches the cached sessions' actual stores.
        assert stats["stored_bytes"] == sum(session_store_bytes(s)
                                            for s in entries)
        # Budgets hold (single oversized-newest entry is the documented
        # exception: the plan just compiled must be allowed to serve).
        assert len(registry) <= registry.max_sessions
        if budget is not None and len(registry) > 1:
            assert stats["stored_bytes"] <= budget
        # The entry this operation inserted is never the one evicted.
        if inserted_key is not None:
            assert inserted_key in registry

    @pytest.mark.parametrize("program_seed", range(6))
    def test_random_program_invariants(self, program_seed):
        rng = np.random.default_rng(program_seed)
        networks = [_tiny_network(f"tiny{w}", w) for w in (4, 8, 16)]
        injectors = [_weight_injector(ber) for ber in (1e-4, 1e-3, 1e-2)]
        one_store = session_store_bytes(
            SessionRegistry().get_or_compile(networks[1], None,
                                             injector=injectors[0]))
        max_sessions = int(rng.integers(1, 5))
        budget = [None, int(one_store * 1.5), int(one_store * 3)][
            int(rng.integers(0, 3))]
        registry = SessionRegistry(max_sessions=max_sessions,
                                   memory_budget_bytes=budget)
        lookups = 0
        for _ in range(self.OPS_PER_PROGRAM):
            op = rng.choice(["compile", "get", "add"], p=[0.5, 0.25, 0.25])
            network = networks[int(rng.integers(len(networks)))]
            injector = injectors[int(rng.integers(len(injectors)))]
            seed = int(rng.integers(0, 2))
            inserted_key = None
            if op == "compile":
                key = registry.key_of(network, injector, seed)
                existed = key in registry
                registry.get_or_compile(network, None, injector=injector,
                                        seed=seed)
                lookups += 1
                if not existed:
                    inserted_key = key
            elif op == "get":
                known = registry.keys()
                if known and rng.random() < 0.8:
                    key = known[int(rng.integers(len(known)))]
                else:
                    key = registry.key_of(network, injector, seed)
                registry.get(key)
                lookups += 1
            else:
                session = InferenceSession(network, None, injector=injector,
                                           seed=seed)
                key = registry.key_of(network, injector, seed)
                if key in registry:
                    lookups += 1     # add() on a cached key counts a hit
                else:
                    inserted_key = key
                registry.add(session)
            self._check_invariants(registry, budget, lookups, inserted_key)

    def test_budget_holds_across_eviction_storm(self):
        """A directed program: a tight budget forced through many inserts
        keeps exactly the documented guarantees at every step."""
        network = _tiny_network("storm", 8)
        injectors = [_weight_injector(10.0 ** -k) for k in range(2, 8)]
        one_store = session_store_bytes(
            SessionRegistry().get_or_compile(network, None,
                                             injector=injectors[0]))
        budget = int(one_store * 2.5)
        registry = SessionRegistry(max_sessions=10,
                                   memory_budget_bytes=budget)
        for round_index in range(3):
            for injector in injectors:
                key = registry.key_of(network, injector)
                registry.get_or_compile(network, None, injector=injector)
                assert key in registry
                assert registry.stats["stored_bytes"] <= budget
        assert registry.stats["evictions"] > 0
        # Evicted sessions re-materialize on reuse: no correctness loss.
        session = registry.get_or_compile(network, None,
                                          injector=injectors[0])
        x = np.zeros((2, 8), dtype=np.float32)
        assert session.predict(x).shape == (2, 3)


class TestConcurrencyStress:
    """Producer threads through the loadgen harness vs serial dispatch."""

    def _stress_samples(self, n, width, seed=0):
        return np.random.default_rng(seed).standard_normal(
            (n, width)).astype(np.float32)

    def test_threaded_producers_bit_identical_to_serial(self):
        """N producers through the auto-flush MicroBatcher must coalesce to
        results tobytes-identical to serial in-process dispatch."""
        network = _tiny_network("stress", 8)
        gateway = ServingGateway(ServeConfig(max_batch=4, max_wait_ms=1.0))
        session = gateway.register("m", network, None,
                                   injector=_weight_injector(1e-3))
        samples = self._stress_samples(64, 8)
        reference = session.predict(samples, pad_to=4)
        target = loadgen.GatewayTarget(gateway)
        result = loadgen.run_steady(target, "m", samples, concurrency=8)
        gateway.close()
        assert result.ok == result.sent == 64
        assert result.stacked_rows().tobytes() == reference.tobytes()

    def test_plan_dispatcher_producers_bit_identical_to_serial(self):
        """The same guarantee through multi-process PlanDispatcher workers
        (each holding a zero-copy view of the exported plan)."""
        network = _tiny_network("stress-mp", 8)
        gateway = ServingGateway(ServeConfig(max_batch=4, max_wait_ms=1.0,
                                             dispatch_processes=2))
        session = gateway.register("m", network, None,
                                   injector=_weight_injector(1e-3))
        samples = self._stress_samples(32, 8)
        reference = session.predict(samples, pad_to=4)
        target = loadgen.GatewayTarget(gateway)
        result = loadgen.run_steady(target, "m", samples, concurrency=6)
        gateway.close()
        assert result.ok == result.sent == 32
        assert result.stacked_rows().tobytes() == reference.tobytes()

    def test_close_during_inflight_flushes_never_deadlocks(self):
        """close() racing producers and concurrent flushes must return
        promptly (the PR-4 sentinel regression) and leave every submitted
        request resolved — served or cleanly failed, never hung."""
        network = _tiny_network("close-race", 8)
        gateway = ServingGateway(ServeConfig(max_batch=2, max_wait_ms=25.0))
        gateway.register("m", network, None, injector=_weight_injector(1e-3))
        target = loadgen.GatewayTarget(gateway)
        samples = self._stress_samples(200, 8)
        records = []
        records_lock = threading.Lock()
        stop_flushing = threading.Event()

        def producer(shard):
            for sample in shard:
                record = target.predict("m", sample)
                with records_lock:
                    records.append(record)

        def flusher():
            while not stop_flushing.is_set():
                try:
                    gateway.flush()
                except Exception:
                    return           # gateway closed underneath us: fine

        producers = [threading.Thread(target=producer, args=(shard,))
                     for shard in np.array_split(samples, 4)]
        flushers = [threading.Thread(target=flusher) for _ in range(2)]
        for thread in producers + flushers:
            thread.start()
        time.sleep(0.05)             # let traffic get in flight
        started = time.perf_counter()
        gateway.close()
        close_elapsed = time.perf_counter() - started
        stop_flushing.set()
        for thread in producers + flushers:
            thread.join(timeout=10)
        assert all(not t.is_alive() for t in producers + flushers)
        # Well under the 5 s worker-join timeout a swallowed shutdown
        # sentinel would cost.
        assert close_elapsed < 4.0
        # Every request that made it in resolved one way or the other.
        assert all(r.status in (200, 500) for r in records)
        assert any(r.status == 200 for r in records)
