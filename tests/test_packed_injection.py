"""The packed injection engine must be bit-exact with the boolean path.

The refactored hot path (:func:`repro.dram.injection.inject_bit_errors`,
:meth:`repro.dram.error_models.ErrorModel.flip_word_mask`,
:meth:`repro.dram.device.ApproximateDram.read_words`) never materializes
per-bit booleans; these tests pin down that, for identical RNG seeds, it
produces *identical* corrupted tensors to the original boolean expansion
(kept as :func:`inject_bit_errors_reference`) — across all four error
models, all four storage precisions, sparse and dense sampling regimes, and
chunk seams — and that it leaves the RNG in the identical stream state.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dram import packed
from repro.dram.device import ApproximateDram, DramOperatingPoint
from repro.dram.error_models import DramLayout, make_error_model
from repro.dram.geometry import DramGeometry
from repro.dram.injection import inject_bit_errors, inject_bit_errors_reference
from repro.dram.packed import (
    hash_keys,
    make_bit_gather,
    sample_flip_positions,
    uniform_threshold,
    xor_mask_from_positions,
)

LAYOUTS = [DramLayout(), DramLayout(row_size_bits=1024, start_bit=4096 + 17)]


def _both_paths(values, bits, model, layout, seed):
    rng_ref = np.random.default_rng(seed)
    rng_packed = np.random.default_rng(seed)
    reference = inject_bit_errors_reference(values, bits, model, layout, rng_ref)
    fast = inject_bit_errors(values, bits, model, layout, rng_packed)
    return reference, fast, rng_ref, rng_packed


class TestPackedParity:
    @pytest.mark.parametrize("model_id", [0, 1, 2, 3])
    @pytest.mark.parametrize("bits", [4, 8, 16, 32])
    def test_bit_exact_with_reference(self, model_id, bits):
        values = np.random.default_rng(model_id * 4 + bits).standard_normal(3001)
        values = values.astype(np.float32)
        for layout in LAYOUTS:
            for ber in (1e-4, 1e-2):
                model = make_error_model(model_id, ber, seed=5)
                reference, fast, rng_ref, rng_packed = _both_paths(
                    values, bits, model, layout, seed=99
                )
                np.testing.assert_array_equal(reference, fast)
                # The packed path must consume exactly as much RNG stream.
                assert rng_ref.random() == rng_packed.random()

    @pytest.mark.parametrize("model_id", [0, 3])
    def test_generators_without_advance_fall_back_to_dense(self, model_id):
        # MT19937 has no BitGenerator.advance; the sampler must draw-and-
        # discard instead, staying bit-exact with the boolean path.
        values = np.random.default_rng(8).standard_normal(513).astype(np.float32)
        model = make_error_model(model_id, 1e-3, seed=1)
        rng_ref = np.random.Generator(np.random.MT19937(42))
        rng_packed = np.random.Generator(np.random.MT19937(42))
        reference = inject_bit_errors_reference(values, 32, model, DramLayout(), rng_ref)
        fast = inject_bit_errors(values, 32, model, DramLayout(), rng_packed)
        np.testing.assert_array_equal(reference, fast)
        assert rng_ref.random() == rng_packed.random()

    @pytest.mark.parametrize("model_id", [0, 1, 2, 3])
    def test_dense_sampling_regime(self, model_id):
        # High BER forces the dense (chunked-draw) branch of the sampler.
        values = np.random.default_rng(1).standard_normal(2000).astype(np.float32)
        model = make_error_model(model_id, 0.2, seed=2)
        reference, fast, rng_ref, rng_packed = _both_paths(
            values, 32, model, DramLayout(), seed=3
        )
        np.testing.assert_array_equal(reference, fast)
        assert rng_ref.random() == rng_packed.random()

    @pytest.mark.parametrize("model_id", [0, 1, 2, 3])
    def test_chunk_seams(self, model_id, monkeypatch):
        # Shrink the scan chunk so a small tensor spans many chunks.
        monkeypatch.setattr(packed, "CHUNK_BITS", 256)
        values = np.random.default_rng(4).standard_normal(100).astype(np.float32)
        model = make_error_model(model_id, 5e-2, seed=7)
        layout = DramLayout(row_size_bits=128, start_bit=31)
        reference, fast, rng_ref, rng_packed = _both_paths(values, 8, model, layout, seed=11)
        np.testing.assert_array_equal(reference, fast)
        assert rng_ref.random() == rng_packed.random()

    @given(
        model_id=st.sampled_from([0, 1, 2, 3]),
        bits=st.sampled_from([4, 8, 16, 32]),
        ber=st.floats(min_value=1e-5, max_value=0.3),
        size=st.integers(min_value=1, max_value=700),
        seed=st.integers(min_value=0, max_value=2**20),
        start_bit=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_packed_equals_reference(self, model_id, bits, ber, size,
                                              seed, start_bit):
        values = np.random.default_rng(seed ^ 0xABCD).standard_normal(size)
        values = values.astype(np.float32)
        model = make_error_model(model_id, ber, seed=seed % 17)
        layout = DramLayout(row_size_bits=512, start_bit=start_bit)
        reference, fast, rng_ref, rng_packed = _both_paths(
            values, bits, model, layout, seed
        )
        np.testing.assert_array_equal(reference, fast)
        assert rng_ref.random() == rng_packed.random()


class TestPositionCache:
    @pytest.mark.parametrize("model_id", [0, 1, 2, 3])
    def test_repeated_loads_reuse_cache_without_changing_results(self, model_id):
        # Same model instance injecting many tensors (the sweep access
        # pattern: cache hits after the first load of each geometry) must
        # match fresh model instances (no cache) on a continuing stream.
        values_a = np.random.default_rng(1).standard_normal(901).astype(np.float32)
        values_b = np.random.default_rng(2).standard_normal(901).astype(np.float32)
        values_c = np.random.default_rng(3).standard_normal(400).astype(np.float32)

        reused = make_error_model(model_id, 5e-3, seed=4)
        rng_reused = np.random.default_rng(9)
        out_reused = [inject_bit_errors(v, 32, reused, DramLayout(), rng_reused)
                      for v in (values_a, values_b, values_c, values_a)]
        assert reused._position_cache  # the cache actually engaged

        rng_fresh = np.random.default_rng(9)
        out_fresh = [
            inject_bit_errors(v, 32, make_error_model(model_id, 5e-3, seed=4),
                              DramLayout(), rng_fresh)
            for v in (values_a, values_b, values_c, values_a)
        ]
        for got, expected in zip(out_reused, out_fresh):
            np.testing.assert_array_equal(got, expected)

    def test_data_dependent_probabilities_not_cached(self):
        # Model 3's flip probabilities follow the stored data even when the
        # weak positions come from the cache: all-ones vs all-zeros tensors
        # of the same geometry must see different flip rates (FV1 >> FV0).
        from repro.dram.error_models import DataDependentErrorModel

        model = DataDependentErrorModel(0.05, 0.9, 0.0, seed=0)
        ones = np.full(4096, -1.0, dtype=np.float32)   # many 1-bits (sign+mantissa)
        rng = np.random.default_rng(0)
        corrupted_ones = inject_bit_errors(ones, 32, model, DramLayout(), rng)
        assert model._position_cache
        zeros = np.zeros(4096, dtype=np.float32)       # all 0-bits: FV0=0 -> no flips
        corrupted_zeros = inject_bit_errors(zeros, 32, model, DramLayout(), rng)
        assert not np.array_equal(corrupted_ones, ones)
        np.testing.assert_array_equal(corrupted_zeros, zeros)


class TestLegacySubclassFallback:
    def test_subclass_without_packed_candidates_still_injects(self):
        from repro.dram.error_models import UniformErrorModel

        class LegacyModel(UniformErrorModel):
            """Implements only the original contract (flip_probabilities)."""

            def _packed_candidates(self, num_bits, layout, bit_at):
                raise NotImplementedError

        values = np.random.default_rng(0).standard_normal(801).astype(np.float32)
        legacy = LegacyModel(0.02, 0.5, seed=3)
        modern = UniformErrorModel(0.02, 0.5, seed=3)
        out_legacy = inject_bit_errors(values, 32, legacy, DramLayout(),
                                       np.random.default_rng(7))
        out_modern = inject_bit_errors(values, 32, modern, DramLayout(),
                                       np.random.default_rng(7))
        np.testing.assert_array_equal(out_legacy, out_modern)


class TestUniformThreshold:
    @given(
        fraction=st.floats(min_value=0.0, max_value=1.0),
        key=st.integers(min_value=0, max_value=(1 << 53) - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_integer_compare_matches_float_compare(self, fraction, key):
        threshold = uniform_threshold(fraction)
        as_uniform = float(key) / float(1 << 53) + 1e-16
        assert (key < threshold) == (as_uniform < fraction)

    def test_extremes(self):
        assert uniform_threshold(0.0) == 0
        assert uniform_threshold(1e-17) == 0        # the +1e-16 floor
        assert uniform_threshold(2.0) == 1 << 53    # everything is weak

    def test_hash_keys_match_hash_uniform(self):
        indices = np.arange(10_000, dtype=np.uint64)
        keys = hash_keys(indices, seed=9, stream=101)
        uniforms = packed._hash_uniform(indices, seed=9, stream=101)
        np.testing.assert_array_equal(
            uniforms, keys.astype(np.float64) / float(1 << 53) + 1e-16
        )


class TestSampler:
    def test_sparse_and_dense_branches_agree(self):
        total = 40_000
        rng_positions = np.random.default_rng(0)
        positions = np.sort(rng_positions.choice(total, size=120, replace=False))
        probabilities = np.full(positions.size, 0.5)
        rng_a = np.random.default_rng(1)
        sparse = sample_flip_positions(rng_a, total, positions, probabilities)
        # Ground truth: the one-uniform-per-bit dense draw the legacy path did.
        rng_b = np.random.default_rng(1)
        expected = positions[rng_b.random(total)[positions] < probabilities]
        np.testing.assert_array_equal(np.sort(sparse), expected)
        assert rng_a.random() == rng_b.random()

    def test_no_candidates_still_advances_stream(self):
        rng_a = np.random.default_rng(2)
        rng_b = np.random.default_rng(2)
        out = sample_flip_positions(rng_a, 1000, np.empty(0, dtype=np.int64),
                                    np.empty(0))
        rng_b.random(1000)
        assert out.size == 0
        assert rng_a.random() == rng_b.random()

    def test_zero_probability_candidates_are_pruned(self):
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        positions = np.array([5, 10, 20], dtype=np.int64)
        out = sample_flip_positions(rng_a, 100, positions, np.zeros(3))
        rng_b.random(100)
        assert out.size == 0
        assert rng_a.random() == rng_b.random()

    def test_xor_mask_folds_positions(self):
        mask = xor_mask_from_positions(np.array([0, 9, 9, 17]), num_words=3,
                                       bits_per_word=8)
        # Bit 9 appears twice: the XORs cancel.
        np.testing.assert_array_equal(mask, [1, 0, 2])

    def test_bit_gather_matches_boolean_expansion(self):
        words = np.array([0b1011, 0b0110], dtype=np.uint64)
        bit_at = make_bit_gather(words, 4)
        expected = [1, 1, 0, 1, 0, 1, 1, 0]
        got = bit_at(np.arange(8))
        np.testing.assert_array_equal(got, np.array(expected, dtype=bool))


class TestDeviceParity:
    GEOMETRY = DramGeometry(row_size_bytes=512, subarrays_per_bank=4,
                            rows_per_subarray=64)

    def _device(self, vendor="A", seed=1):
        return ApproximateDram(vendor, geometry=self.GEOMETRY, seed=seed)

    def _reference_read(self, device, stored, start, op_point, rng):
        addresses = np.arange(start, start + stored.size, dtype=np.uint64)
        probabilities = device.flip_probabilities(addresses, stored, op_point)
        flips = rng.random(stored.shape) < probabilities
        return np.logical_xor(stored, flips)

    @pytest.mark.parametrize("vendor", ["A", "B", "C"])
    def test_read_bits_matches_dense_formula(self, vendor):
        device = self._device(vendor)
        op_point = DramOperatingPoint.from_reductions(delta_vdd=0.30, delta_trcd_ns=6.0)
        stored = np.random.default_rng(3).random(20_000) < 0.5
        rng_ref = np.random.default_rng(11)
        rng_fast = np.random.default_rng(11)
        expected = self._reference_read(device, stored, 1234, op_point, rng_ref)
        got = device.read_bits(stored, 1234, op_point, rng=rng_fast)
        np.testing.assert_array_equal(expected, got)
        assert rng_ref.random() == rng_fast.random()

    def test_read_words_matches_read_bits(self):
        device = self._device()
        op_point = DramOperatingPoint.from_reductions(delta_vdd=0.25)
        words = np.random.default_rng(4).integers(0, 1 << 32, 4096, dtype=np.uint64)
        stored = ((words[:, None] >> np.arange(32, dtype=np.uint64)) & np.uint64(1))
        stored = stored.astype(bool).ravel()
        rng_a = np.random.default_rng(12)
        rng_b = np.random.default_rng(12)
        from_bits = device.read_bits(stored, 4096, op_point, rng=rng_a)
        from_words = device.read_words(words, 32, 4096, op_point, rng=rng_b)
        expanded = ((from_words[:, None] >> np.arange(32, dtype=np.uint64)) & np.uint64(1))
        np.testing.assert_array_equal(from_bits, expanded.astype(bool).ravel())

    def test_nominal_read_is_clean_and_stream_exact(self):
        device = self._device()
        stored = np.random.default_rng(5).random(5000) < 0.5
        rng_a = np.random.default_rng(6)
        rng_b = np.random.default_rng(6)
        out = device.read_bits(stored, 0, DramOperatingPoint.nominal(), rng=rng_a)
        np.testing.assert_array_equal(out, stored)
        rng_b.random(5000)
        assert rng_a.random() == rng_b.random()

    def test_spatial_tables_match_elementwise_multipliers(self):
        device = self._device("B", seed=9)
        addresses = np.arange(777, 777 + 30_000, dtype=np.uint64)
        np.testing.assert_array_equal(
            device._spatial_from_tables(addresses),
            device._spatial_multipliers(addresses),
        )
